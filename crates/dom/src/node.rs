//! Arena-based document tree.
//!
//! Nodes live in a flat `Vec` inside [`Document`]; [`NodeId`] is an index
//! into that vector.  Sibling and parent/child relationships are stored as
//! explicit links so that every axis of the XPath data model can be walked
//! without allocation.

use std::fmt;
use std::sync::Arc;

/// Spacing between consecutive ordering keys on a fresh build.
///
/// `pre`/`post` are *ordering keys*, not dense ranks: a freshly finalized
/// document assigns keys in multiples of this stride, leaving gaps that
/// in-place edits (the `xpeval-live` crate) use to key freshly inserted
/// nodes without renumbering the rest of the document.  Code must compare
/// keys, never index by them.
pub const KEY_STRIDE: u32 = 8;

/// Identifier of a node within a [`Document`].
///
/// `NodeId`s are only meaningful relative to the document that created them.
/// The root node of every document is id `0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Numeric index of this node inside the document arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a `NodeId` from a raw index.
    ///
    /// Intended for code that stores node sets as index-based bitsets (the
    /// linear-time Core XPath evaluator does this); passing an index that is
    /// out of bounds for the document will cause panics on use.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        NodeId(ix as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node in the XPath data model.
///
/// The paper (and Core XPath) only needs element nodes and the conceptual
/// root; text and attribute nodes are included so that the full-XPath string
/// functions and the `attribute` axis have something to operate on.
/// Strings are held as `Arc<str>` so that cloning a [`Document`] — the
/// copy-on-write step behind every in-place mutation — bumps reference
/// counts instead of reallocating every name, text and attribute value in
/// the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// The conceptual root node of the document (parent of the document
    /// element).  Exactly one per document, always [`Document::root`].
    Root,
    /// An element node with a tag name.
    Element { name: Arc<str> },
    /// A text node.
    Text { text: Arc<str> },
    /// An attribute node.  Attribute nodes have their owner element as
    /// parent but are not children of it (they are reached only through the
    /// `attribute` axis), exactly as in the XPath 1.0 data model.
    Attribute { name: Arc<str>, value: Arc<str> },
}

impl NodeKind {
    /// Returns the element tag name, if this is an element.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            NodeKind::Element { name } => Some(name),
            _ => None,
        }
    }

    /// True if this node is an element.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// True if this node is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text { .. })
    }

    /// True if this node is an attribute node.
    pub fn is_attribute(&self) -> bool {
        matches!(self, NodeKind::Attribute { .. })
    }

    /// True if this node is the conceptual root.
    pub fn is_root(&self) -> bool {
        matches!(self, NodeKind::Root)
    }
}

/// Per-node record stored in the arena.
#[derive(Clone, Debug)]
pub(crate) struct NodeData {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
    /// Attribute nodes owned by this element (`None` for non-elements and
    /// attribute-less elements).  Shared behind an `Arc` so that the
    /// copy-on-write `Document` clone taken before every in-place mutation
    /// bumps one reference count per element instead of reallocating each
    /// per-element vector; only an edit that changes *this* element's
    /// attribute list pays for the copy.
    pub(crate) attributes: Option<Arc<Vec<NodeId>>>,
}

/// A node's ordering keys, stored in a flat side table
/// ([`Document::keys`]) rather than in the arena record: they are read in
/// the hottest loops of document-order comparison and interval scans,
/// where the flat table is one dependent load instead of the chunked
/// arena's two — and being plain `u32`s they clone by `memcpy`, so the
/// copy-on-write `Document` clone stays cheap.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct NodeKeys {
    /// Preorder ordering key (document order), assigned by the builder's
    /// finalization pass.  Gapped — see [`KEY_STRIDE`].
    pub(crate) pre: u32,
    /// Postorder ordering key: every node's subtree spans the key interval
    /// `[pre, post]`, intervals nest like the tree does, and children sort
    /// before parents.  Gapped like `pre`.
    pub(crate) post: u32,
    /// Depth (root = 0).
    pub(crate) depth: u32,
}

impl NodeData {
    /// The element's attribute nodes (empty slice when it has none).
    #[inline]
    pub(crate) fn attrs(&self) -> &[NodeId] {
        self.attributes.as_deref().map_or(&[], Vec::as_slice)
    }

    /// Appends an attribute node, copying the list only if it is shared.
    pub(crate) fn push_attr(&mut self, id: NodeId) {
        Arc::make_mut(self.attributes.get_or_insert_with(Default::default)).push(id);
    }

    /// Replaces the attribute list wholesale.
    pub(crate) fn set_attrs(&mut self, attrs: Vec<NodeId>) {
        self.attributes = if attrs.is_empty() {
            None
        } else {
            Some(Arc::new(attrs))
        };
    }

    pub(crate) fn new(kind: NodeKind) -> Self {
        NodeData {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
            attributes: None,
        }
    }
}

/// An XML document: an arena of nodes rooted at the conceptual root node.
///
/// Documents are built via [`crate::DocumentBuilder`] or [`crate::parse_xml`]
/// and are immutable through this type's API; all evaluators in the workspace
/// share `&Document` references freely, including across threads.  In-place
/// edits happen only through [`crate::PreparedDocument`]'s mutation methods
/// (exposed by the `xpeval-live` crate), which may leave *detached* arena
/// slots behind after a removal: [`Document::len`] counts slots, while
/// [`Document::all_nodes`] yields only attached nodes.  Detached slots are
/// recycled by later inserts on the same document (so a long edit stream
/// keeps the arena bounded by the peak live size); snapshots taken before
/// the removal are copy-on-write and keep seeing the original node.
#[derive(Clone, Debug)]
pub struct Document {
    pub(crate) nodes: Arena,
    /// Ordering keys, parallel to the arena — see [`NodeKeys`] for why
    /// they live outside it.
    keys: Vec<NodeKeys>,
    /// Slots detached by removals, available for reuse by the next graft.
    free: Vec<NodeId>,
}

/// Chunk granularity of the node arena: 512 nodes per chunk.
const CHUNK_BITS: usize = 9;
pub(crate) const CHUNK_SIZE: usize = 1 << CHUNK_BITS;

/// The node store behind [`Document`]: fixed-size *sealed* chunks shared
/// behind `Arc`s, plus one plain, exclusively-owned *tail* chunk that
/// absorbs appends.
///
/// This is the storage layer of copy-on-write mutation.  Cloning a
/// `Document` — the step every in-place edit pays so that concurrent
/// readers keep an immutable pre-edit snapshot — bumps one reference
/// count per sealed chunk (a few dozen for even large documents) and
/// copies only the short tail, instead of deep-copying every node record.
/// A mutable access then un-shares only the chunk it lands in, so an edit
/// copies the local neighborhood it actually touches, in proportion to
/// the edit, not to the document.
///
/// Sealed chunks are `Arc<[NodeData]>` — the records live inline next to
/// the refcount, so a read is two dependent loads (chunk table, then
/// node), not three as with an `Arc<Vec<_>>`.  That matters: every link
/// in an unprepared tree walk is one of these loads.  Each sealed chunk
/// holds exactly [`CHUNK_SIZE`] nodes and the tail holds the rest, which
/// makes slot lookup a shift, a mask and one predictable branch.
#[derive(Clone, Debug, Default)]
pub(crate) struct Arena {
    sealed: Vec<Arc<[NodeData]>>,
    tail: Vec<NodeData>,
}

impl Arena {
    #[inline]
    pub(crate) fn len(&self) -> usize {
        (self.sealed.len() << CHUNK_BITS) + self.tail.len()
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> &NodeData {
        let c = i >> CHUNK_BITS;
        match self.sealed.get(c) {
            Some(chunk) => &chunk[i & (CHUNK_SIZE - 1)],
            None => &self.tail[i & (CHUNK_SIZE - 1)],
        }
    }

    pub(crate) fn get_mut(&mut self, i: usize) -> &mut NodeData {
        let c = i >> CHUNK_BITS;
        match self.sealed.get_mut(c) {
            Some(chunk) => {
                // Copy-on-write by hand: `Arc::make_mut` does not exist
                // for slices, so un-share the chunk once and then hand out
                // the unique borrow.
                if Arc::get_mut(chunk).is_none() {
                    *chunk = chunk.iter().cloned().collect();
                }
                &mut Arc::get_mut(chunk).expect("uniquely owned after un-sharing")
                    [i & (CHUNK_SIZE - 1)]
            }
            None => &mut self.tail[i & (CHUNK_SIZE - 1)],
        }
    }

    pub(crate) fn push(&mut self, data: NodeData) {
        self.tail.push(data);
        if self.tail.len() == CHUNK_SIZE {
            self.sealed.push(self.tail.drain(..).collect());
        }
    }
}

impl Document {
    /// Creates an empty document containing only the conceptual root node.
    pub(crate) fn empty() -> Self {
        let mut nodes = Arena::default();
        nodes.push(NodeData::new(NodeKind::Root));
        Document {
            nodes,
            keys: vec![NodeKeys::default()],
            free: Vec::new(),
        }
    }

    /// Appends one node record (and its zeroed key slot) to the arena —
    /// the builder's append path; edits allocate via [`Document::alloc`].
    pub(crate) fn append(&mut self, data: NodeData) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(data);
        self.keys.push(NodeKeys::default());
        id
    }

    /// Allocates one arena slot, preferring a slot detached by an earlier
    /// removal over growing the arena.
    pub(crate) fn alloc(&mut self, data: NodeData) -> NodeId {
        match self.free.pop() {
            Some(id) => {
                *self.nodes.get_mut(id.index()) = data;
                self.keys[id.index()] = NodeKeys::default();
                id
            }
            None => self.append(data),
        }
    }

    /// Marks detached slots as reusable.  Callers must have unlinked them
    /// from the tree first; the slots' contents are overwritten on reuse.
    pub(crate) fn release(&mut self, ids: &[NodeId]) {
        self.free.extend_from_slice(ids);
    }

    /// The conceptual root node of the document.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Total number of arena slots (root + elements + text + attributes,
    /// including slots detached by in-place removals).  Bitset-based
    /// evaluators size their sets from this.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document contains only the conceptual root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// True if `id` is attached to the tree (the root, or any node with a
    /// parent link).  Nodes detached by an in-place removal stay in the
    /// arena as dead slots — ids never dangle against the snapshot they
    /// came from — until a later insert on the same document recycles them.
    #[inline]
    pub fn is_attached(&self, id: NodeId) -> bool {
        id.0 == 0 || self.data(id).parent.is_some()
    }

    /// Iterator over every attached node id in arena order (which equals
    /// document order for freshly built documents since the builder appends
    /// in preorder; after in-place edits, sort by [`Document::pre`] when
    /// order matters).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(move |&n| self.is_attached(n))
    }

    /// Iterator over every element node id in document order.
    pub fn all_elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all_nodes().filter(move |&n| self.kind(n).is_element())
    }

    #[inline]
    pub(crate) fn data(&self, id: NodeId) -> &NodeData {
        self.nodes.get(id.index())
    }

    #[inline]
    pub(crate) fn data_mut(&mut self, id: NodeId) -> &mut NodeData {
        self.nodes.get_mut(id.index())
    }

    /// The kind of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.data(id).kind
    }

    /// Element name of a node, if it is an element.
    #[inline]
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match self.kind(id) {
            NodeKind::Element { name } => Some(&**name),
            NodeKind::Attribute { name, .. } => Some(&**name),
            _ => None,
        }
    }

    /// Parent of a node (`None` only for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).parent
    }

    /// First child (in document order) of a node.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).first_child
    }

    /// Last child (in document order) of a node.
    #[inline]
    pub fn last_child(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).last_child
    }

    /// Next sibling in document order.
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).next_sibling
    }

    /// Previous sibling in document order.
    #[inline]
    pub fn prev_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.data(id).prev_sibling
    }

    /// Attribute nodes of an element (empty slice for non-elements).
    #[inline]
    pub fn attributes(&self, id: NodeId) -> &[NodeId] {
        self.data(id).attrs()
    }

    /// Looks up the value of the attribute named `name` on element `id`.
    pub fn attribute_value(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find_map(|&a| match self.kind(a) {
                NodeKind::Attribute { name: n, value } if &**n == name => Some(&**value),
                _ => None,
            })
    }

    /// Depth of the node (the root has depth 0, the document element 1).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.keys[id.index()].depth
    }

    /// Preorder ordering key of the node: comparing two nodes' keys compares
    /// their document order.  Keys are gapped (see [`KEY_STRIDE`]) — compare
    /// them, never index by them.
    #[inline]
    pub fn pre(&self, id: NodeId) -> u32 {
        self.keys[id.index()].pre
    }

    /// Postorder ordering key of the node: a node's subtree spans the key
    /// interval `[pre, post]`, intervals nest like the tree, and children's
    /// exit keys sort before their parent's.  Attributes have `post == pre`.
    #[inline]
    pub fn post(&self, id: NodeId) -> u32 {
        self.keys[id.index()].post
    }

    /// Mutable access to a node's ordering keys (builder finalization and
    /// in-place edits only).
    #[inline]
    pub(crate) fn keys_mut(&mut self, id: NodeId) -> &mut NodeKeys {
        &mut self.keys[id.index()]
    }

    /// The *string value* of a node per the XPath 1.0 data model:
    /// concatenation of all descendant text for root/element nodes, the text
    /// itself for text nodes and the attribute value for attribute nodes.
    pub fn string_value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Text { text } => text.to_string(),
            NodeKind::Attribute { value, .. } => value.to_string(),
            NodeKind::Root | NodeKind::Element { .. } => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        let mut child = self.first_child(id);
        while let Some(c) = child {
            match self.kind(c) {
                NodeKind::Text { text } => out.push_str(text),
                _ => self.collect_text(c, out),
            }
            child = self.next_sibling(c);
        }
    }

    /// Number of element children of `id` with tag `name` (used in tests
    /// and by the reductions crate to sanity check constructions).
    pub fn count_children_named(&self, id: NodeId, name: &str) -> usize {
        let mut n = 0;
        let mut child = self.first_child(id);
        while let Some(c) = child {
            if self.name(c) == Some(name) {
                n += 1;
            }
            child = self.next_sibling(c);
        }
        n
    }

    /// The number of element nodes in the document (|D| in the paper's
    /// complexity statements; attribute and text nodes are counted too when
    /// reporting document sizes in EXPERIMENTS.md, but the element count is
    /// the measure the reductions reason about).
    pub fn element_count(&self) -> usize {
        self.all_elements().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DocumentBuilder;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new();
        b.open_element("a");
        b.open_element("b");
        b.text("hello ");
        b.close_element();
        b.open_element("c");
        b.attribute("k", "v");
        b.text("world");
        b.close_element();
        b.close_element();
        b.finish()
    }

    #[test]
    fn root_is_zero_and_rootkind() {
        let doc = sample();
        assert_eq!(doc.root(), NodeId(0));
        assert!(doc.kind(doc.root()).is_root());
        assert!(doc.parent(doc.root()).is_none());
    }

    #[test]
    fn structure_links() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.name(a), Some("a"));
        let b = doc.first_child(a).unwrap();
        assert_eq!(doc.name(b), Some("b"));
        let c = doc.next_sibling(b).unwrap();
        assert_eq!(doc.name(c), Some("c"));
        assert_eq!(doc.prev_sibling(c), Some(b));
        assert_eq!(doc.last_child(a), Some(c));
        assert_eq!(doc.parent(b), Some(a));
        assert_eq!(doc.parent(c), Some(a));
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        assert_eq!(doc.string_value(a), "hello world");
        assert_eq!(doc.string_value(doc.root()), "hello world");
    }

    #[test]
    fn attribute_lookup() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        let c = doc.last_child(a).unwrap();
        assert_eq!(doc.attribute_value(c, "k"), Some("v"));
        assert_eq!(doc.attribute_value(c, "missing"), None);
        assert_eq!(doc.attributes(c).len(), 1);
        let attr = doc.attributes(c)[0];
        assert!(doc.kind(attr).is_attribute());
        assert_eq!(doc.parent(attr), Some(c));
        // Attribute nodes are not children.
        let mut kids = vec![];
        let mut ch = doc.first_child(c);
        while let Some(k) = ch {
            kids.push(k);
            ch = doc.next_sibling(k);
        }
        assert!(!kids.contains(&attr));
    }

    #[test]
    fn depth_and_counts() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        let b = doc.first_child(a).unwrap();
        assert_eq!(doc.depth(doc.root()), 0);
        assert_eq!(doc.depth(a), 1);
        assert_eq!(doc.depth(b), 2);
        assert_eq!(doc.element_count(), 3);
        assert_eq!(doc.count_children_named(a, "b"), 1);
        assert_eq!(doc.count_children_named(a, "c"), 1);
        assert_eq!(doc.count_children_named(a, "zzz"), 0);
    }

    #[test]
    fn string_value_of_text_and_attribute_nodes() {
        let doc = sample();
        let a = doc.first_child(doc.root()).unwrap();
        let b = doc.first_child(a).unwrap();
        let t = doc.first_child(b).unwrap();
        assert!(doc.kind(t).is_text());
        assert_eq!(doc.string_value(t), "hello ");
        let c = doc.last_child(a).unwrap();
        let attr = doc.attributes(c)[0];
        assert_eq!(doc.string_value(attr), "v");
    }

    #[test]
    fn empty_document() {
        let doc = DocumentBuilder::new().finish();
        assert!(doc.is_empty());
        assert_eq!(doc.len(), 1);
        assert_eq!(doc.element_count(), 0);
        assert_eq!(doc.string_value(doc.root()), "");
    }

    #[test]
    fn node_id_display_and_index_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }
}
