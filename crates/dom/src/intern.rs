//! Workspace-global tag-name interning.
//!
//! Every element tag name in the process is interned exactly once into a
//! lock-sharded symbol table, and [`TagId`]s are handed out from a single
//! global counter — so the id of `"book"` is the same in every document,
//! every [`crate::PreparedDocument`] and every compiled query plan.  This is
//! what lets a plan artifact carry pre-resolved name tests that stay valid
//! across documents (and therefore lets equal documents share one artifact):
//! ids compare globally instead of being private to the document that
//! minted them.
//!
//! Concurrency: lookups and inserts take one shard mutex (the shard is
//! picked by the name's hash, so one name always lands on the same shard and
//! can never be assigned two ids); id allocation additionally takes the
//! global name-table write lock, in that order.  [`tag_name`] only takes the
//! name-table read lock.  Interned strings are leaked, which is what makes
//! `&'static str` resolution lock-free after the table read — tag names are
//! schema vocabulary, a small bounded set in practice, so the leak is the
//! usual symbol-table trade.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher, RandomState};
use std::sync::{Mutex, OnceLock, RwLock};

/// A workspace-globally interned element tag name.
///
/// Ids are dense indexes into the global symbol table in first-interning
/// order across the whole process: the same tag name resolves to the same id
/// in every document.  Resolving a name to its id ([`intern`],
/// [`crate::PreparedDocument::tag_id`]) pays the string hash once; every
/// id-keyed lookup afterwards ([`crate::PreparedDocument::elements_by_tag`],
/// [`crate::PreparedDocument::children_by_tag`]) is an array index.  This is
/// the hook document-specialized plan artifacts build on: resolve a query's
/// name tests once at lowering time, evaluate against any document forever.
///
/// A document that never saw a tag simply has no index entry for its id:
/// id-keyed lookups against it return empty sets, never wrong ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub(crate) u32);

impl TagId {
    /// The dense index of this id in the global symbol table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Number of mutex-protected map shards.  Sixteen keeps contention
/// negligible for the 8-thread catalog storms the test suite runs while
/// staying cache-friendly.
const SHARD_COUNT: usize = 16;

struct Interner {
    /// name → id, sharded by the name's hash so a given name always lands
    /// on the same shard (the uniqueness argument for ids).
    shards: [Mutex<HashMap<&'static str, TagId>>; SHARD_COUNT],
    /// id → name, append-only; the allocation point for new ids.
    names: RwLock<Vec<&'static str>>,
    hasher: RandomState,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        names: RwLock::new(Vec::new()),
        hasher: RandomState::new(),
    })
}

fn shard_of(table: &Interner, name: &str) -> usize {
    let mut h = table.hasher.build_hasher();
    h.write(name.as_bytes());
    (h.finish() as usize) % SHARD_COUNT
}

/// Interns `name`, returning its global [`TagId`].  Idempotent and
/// thread-safe: every caller in the process gets the same id for the same
/// name.
pub fn intern(name: &str) -> TagId {
    let table = interner();
    let mut shard = table.shards[shard_of(table, name)].lock().unwrap();
    if let Some(&id) = shard.get(name) {
        return id;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    let mut names = table.names.write().unwrap();
    let id = TagId(u32::try_from(names.len()).expect("global tag table overflowed u32"));
    names.push(leaked);
    drop(names);
    shard.insert(leaked, id);
    id
}

/// The id `name` was interned under, without interning it; `None` when the
/// name has never been seen by this process.
pub fn lookup(name: &str) -> Option<TagId> {
    let table = interner();
    let shard = table.shards[shard_of(table, name)].lock().unwrap();
    shard.get(name).copied()
}

/// The name behind a global [`TagId`].
///
/// # Panics
/// Panics if `id` did not come from [`intern`] (ids cannot be forged outside
/// this crate, so this only fires on internal corruption).
pub fn tag_name(id: TagId) -> &'static str {
    interner()
        .names
        .read()
        .unwrap()
        .get(id.index())
        .copied()
        .expect("TagId does not name an interned tag")
}

/// Number of distinct tag names interned so far, process-wide.  Valid ids
/// are exactly `0..interned_tag_count()`.
pub fn interned_tag_count() -> usize {
    interner().names.read().unwrap().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolves_back() {
        let a = intern("intern-test-alpha");
        let b = intern("intern-test-beta");
        assert_ne!(a, b);
        assert_eq!(intern("intern-test-alpha"), a);
        assert_eq!(tag_name(a), "intern-test-alpha");
        assert_eq!(tag_name(b), "intern-test-beta");
        assert_eq!(lookup("intern-test-alpha"), Some(a));
        assert!(interned_tag_count() > a.index());
    }

    #[test]
    fn lookup_does_not_intern() {
        let before = interned_tag_count();
        assert_eq!(lookup("intern-test-never-interned-probe"), None);
        assert_eq!(interned_tag_count(), before);
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let names: Vec<String> = (0..64).map(|i| format!("intern-race-{i}")).collect();
        let ids: Vec<Vec<TagId>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let names = &names;
                    s.spawn(move || {
                        // Each thread interns in a different order.
                        let mut out: Vec<(usize, TagId)> = names
                            .iter()
                            .enumerate()
                            .cycle()
                            .skip(t * 8)
                            .take(names.len())
                            .map(|(i, n)| (i, intern(n)))
                            .collect();
                        out.sort_by_key(|&(i, _)| i);
                        out.into_iter().map(|(_, id)| id).collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for later in &ids[1..] {
            assert_eq!(later, &ids[0]);
        }
        for (i, &id) in ids[0].iter().enumerate() {
            assert_eq!(tag_name(id), names[i]);
        }
    }
}
