//! XPath axes and node tests.
//!
//! All eleven axes used by Core XPath (Definition 2.5 of the paper) are
//! implemented, plus the `attribute` axis needed for full XPath queries.
//! Every iterator yields nodes in *document order*; for reverse axes
//! (`ancestor`, `ancestor-or-self`, `preceding`, `preceding-sibling`,
//! `parent`) the evaluators reverse the sequence when computing `position()`
//! — see [`Axis::is_reverse`].

use crate::node::{Document, NodeId, NodeKind};
use crate::prepared::TagId;

/// An XPath axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Axis {
    SelfAxis,
    Child,
    Parent,
    Descendant,
    DescendantOrSelf,
    Ancestor,
    AncestorOrSelf,
    Following,
    FollowingSibling,
    Preceding,
    PrecedingSibling,
    Attribute,
}

impl Axis {
    /// All axes allowed in Core XPath (Definition 2.5), in a stable order.
    pub const CORE: [Axis; 11] = [
        Axis::SelfAxis,
        Axis::Child,
        Axis::Parent,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Ancestor,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::FollowingSibling,
        Axis::Preceding,
        Axis::PrecedingSibling,
    ];

    /// XPath name of the axis (`descendant-or-self`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Axis::SelfAxis => "self",
            Axis::Child => "child",
            Axis::Parent => "parent",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Following => "following",
            Axis::FollowingSibling => "following-sibling",
            Axis::Preceding => "preceding",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Attribute => "attribute",
        }
    }

    /// Parses an axis name.
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "self" => Axis::SelfAxis,
            "child" => Axis::Child,
            "parent" => Axis::Parent,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following" => Axis::Following,
            "following-sibling" => Axis::FollowingSibling,
            "preceding" => Axis::Preceding,
            "preceding-sibling" => Axis::PrecedingSibling,
            "attribute" => Axis::Attribute,
            _ => return None,
        })
    }

    /// True for the reverse axes of the XPath 1.0 specification: for these,
    /// `position()` counts backwards in document order.
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::Preceding
                | Axis::PrecedingSibling
                | Axis::Parent
        )
    }

    /// The inverse axis (`child` ↔ `parent`, `descendant` ↔ `ancestor`, ...).
    ///
    /// The linear-time Core XPath evaluator uses inverses to turn predicate
    /// filters ("nodes from which a path matches") into forward image
    /// computations, which is what keeps it O(|D|·|Q|).
    pub fn inverse(self) -> Axis {
        match self {
            Axis::SelfAxis => Axis::SelfAxis,
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::Descendant => Axis::Ancestor,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::Ancestor => Axis::Descendant,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::Following => Axis::Preceding,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::Preceding => Axis::Following,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::Attribute => Axis::Parent,
        }
    }

    /// The *principal node type* of the axis: elements for every axis except
    /// `attribute` (XPath 1.0 §2.3).  A name or `*` node test only matches
    /// nodes of the principal type.
    pub fn principal_is_attribute(self) -> bool {
        matches!(self, Axis::Attribute)
    }
}

impl std::fmt::Display for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An XPath node test ("ntst" in the paper's grammar).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// A tag name test, e.g. `child::a`.
    Name(String),
    /// A tag name test pre-resolved against one document's interned tag
    /// table ([`crate::AxisSource::resolve_tag`]).  Plan specialization
    /// rewrites element-principal `Name` tests to this form so that
    /// evaluation against the specializing document never hashes the tag
    /// string; `id == None` records that the tag was absent at
    /// specialization time.  The name is kept so the test still matches
    /// correctly (by string) when the plan is run against an unindexed or
    /// different source.
    Resolved {
        /// The original tag name.
        name: String,
        /// The tag's interned id in the specializing document, or `None`
        /// when no element carried the tag.
        id: Option<TagId>,
    },
    /// The star test `*`: matches every node of the axis' principal type.
    Star,
    /// `node()`: matches every node.
    AnyNode,
    /// `text()`: matches text nodes.
    Text,
}

impl NodeTest {
    /// Convenience constructor for a name test.
    pub fn name(n: impl Into<String>) -> Self {
        NodeTest::Name(n.into())
    }
}

impl std::fmt::Display for NodeTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeTest::Name(n) => f.write_str(n),
            NodeTest::Resolved { name, .. } => f.write_str(name),
            NodeTest::Star => f.write_str("*"),
            NodeTest::AnyNode => f.write_str("node()"),
            NodeTest::Text => f.write_str("text()"),
        }
    }
}

impl Document {
    /// Does node `n` match node test `test` when reached through an axis
    /// whose principal node type is elements?
    pub fn matches(&self, n: NodeId, test: &NodeTest) -> bool {
        self.matches_on_axis(n, test, Axis::Child)
    }

    /// Node test matching, taking the axis' principal node type into account
    /// (a `*` on the attribute axis matches attribute nodes, not elements).
    pub fn matches_on_axis(&self, n: NodeId, test: &NodeTest, axis: Axis) -> bool {
        let kind = self.kind(n);
        match test {
            NodeTest::AnyNode => true,
            NodeTest::Text => kind.is_text(),
            NodeTest::Star => {
                if axis.principal_is_attribute() {
                    kind.is_attribute()
                } else {
                    kind.is_element()
                }
            }
            // A resolved test matches by string here: the string form is
            // what stays correct when the test is evaluated against a
            // source other than the one it was resolved for.
            NodeTest::Name(name) | NodeTest::Resolved { name, .. } => {
                if axis.principal_is_attribute() {
                    matches!(kind, NodeKind::Attribute { name: n2, .. } if &**n2 == name)
                } else {
                    matches!(kind, NodeKind::Element { name: n2 } if &**n2 == name)
                }
            }
        }
    }

    /// Returns the nodes reachable from `n` via `axis`, in document order,
    /// as a freshly allocated vector.  This is the convenience form of
    /// [`Document::axis_iter`].
    pub fn axis_nodes(&self, n: NodeId, axis: Axis) -> Vec<NodeId> {
        self.axis_iter(n, axis).collect()
    }

    /// Iterator over the nodes reachable from `n` via `axis` in document
    /// order.
    pub fn axis_iter(&self, n: NodeId, axis: Axis) -> AxisIter<'_> {
        AxisIter::new(self, n, axis)
    }

    /// Nodes reachable from `n` via `axis` that match `test`, in document
    /// order.
    pub fn axis_step(&self, n: NodeId, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
        self.axis_iter(n, axis)
            .filter(|&m| self.matches_on_axis(m, test, axis))
            .collect()
    }

    /// True if `anc` is an ancestor of `desc` (strict).
    pub fn is_ancestor_of(&self, anc: NodeId, desc: NodeId) -> bool {
        // Constant-time via the pre/post ordering keys: anc contains desc
        // iff pre(anc) < pre(desc) and post(desc) < post(anc).  Attribute
        // nodes carry the degenerate interval post == pre, so they can
        // never contain anything; the explicit guard keeps that invariant
        // obvious (and robust) rather than load-bearing.
        anc != desc
            && !self.kind(anc).is_attribute()
            && self.pre(anc) < self.pre(desc)
            && self.post(desc) < self.post(anc)
    }

    /// True if `a` equals `b` or is an ancestor of `b`.
    pub fn is_ancestor_or_self_of(&self, a: NodeId, b: NodeId) -> bool {
        a == b || self.is_ancestor_of(a, b)
    }
}

/// State machine iterator over a single axis.
pub struct AxisIter<'d> {
    doc: &'d Document,
    state: IterState,
}

enum IterState {
    Done,
    /// Yield this single node, then stop.
    Single(NodeId),
    /// Walk the ancestor chain upwards from the given node (inclusive).
    /// Collected eagerly because ancestors must be produced in document
    /// order (root first).
    Seq(std::vec::IntoIter<NodeId>),
    /// Children: current candidate.
    Sibling(Option<NodeId>),
    /// Descendant traversal bounded by `stop` (exclusive subtree walk).
    Descend {
        next: Option<NodeId>,
        stop: NodeId,
    },
    /// Following: walk in document order from a start node to the end.
    Following {
        next: Option<NodeId>,
    },
}

impl<'d> AxisIter<'d> {
    fn new(doc: &'d Document, n: NodeId, axis: Axis) -> Self {
        let state = match axis {
            Axis::SelfAxis => IterState::Single(n),
            Axis::Parent => match doc.parent(n) {
                Some(p) => IterState::Single(p),
                None => IterState::Done,
            },
            Axis::Child => IterState::Sibling(doc.first_child(n)),
            Axis::FollowingSibling => IterState::Sibling(doc.next_sibling(n)),
            Axis::Attribute => IterState::Seq(doc.attributes(n).to_vec().into_iter()),
            Axis::Descendant => IterState::Descend {
                next: first_in_subtree_excluding_root(doc, n),
                stop: n,
            },
            Axis::DescendantOrSelf => IterState::Descend {
                next: Some(n),
                stop: n,
            },
            Axis::Ancestor => {
                let mut v = ancestors(doc, n, false);
                v.reverse();
                IterState::Seq(v.into_iter())
            }
            Axis::AncestorOrSelf => {
                let mut v = ancestors(doc, n, true);
                v.reverse();
                IterState::Seq(v.into_iter())
            }
            Axis::PrecedingSibling => {
                let mut v = Vec::new();
                let mut s = doc.prev_sibling(n);
                while let Some(x) = s {
                    v.push(x);
                    s = doc.prev_sibling(x);
                }
                v.reverse();
                IterState::Seq(v.into_iter())
            }
            Axis::Preceding => {
                // Nodes strictly before n in document order that are not
                // ancestors of n (and not attribute nodes).
                let mut v: Vec<NodeId> = Vec::new();
                for m in doc.all_nodes() {
                    if doc.pre(m) < doc.pre(n)
                        && m != doc.root()
                        && !doc.kind(m).is_attribute()
                        && !doc.is_ancestor_or_self_of(m, n)
                    {
                        v.push(m);
                    }
                }
                v.sort_by_key(|&m| doc.pre(m));
                IterState::Seq(v.into_iter())
            }
            Axis::Following => {
                // First node after the subtree of n in document order.
                IterState::Following {
                    next: next_after_subtree(doc, n),
                }
            }
        };
        AxisIter { doc, state }
    }
}

/// First node of the subtree of `n` excluding `n` itself (i.e. its first
/// child), if any.
fn first_in_subtree_excluding_root(doc: &Document, n: NodeId) -> Option<NodeId> {
    doc.first_child(n)
}

/// The node that follows the whole subtree rooted at `n` in document order
/// (skipping attribute nodes).
fn next_after_subtree(doc: &Document, n: NodeId) -> Option<NodeId> {
    let mut cur = n;
    loop {
        if let Some(s) = doc.next_sibling(cur) {
            return Some(s);
        }
        cur = doc.parent(cur)?;
    }
}

/// Next node in document order within the subtree below `stop`, or `None`
/// when the subtree is exhausted.  Attribute nodes are not part of the
/// child/descendant axes and are skipped implicitly because they are not in
/// the sibling chains.
fn next_in_subtree(doc: &Document, cur: NodeId, stop: NodeId) -> Option<NodeId> {
    if let Some(c) = doc.first_child(cur) {
        return Some(c);
    }
    let mut node = cur;
    loop {
        if node == stop {
            return None;
        }
        if let Some(s) = doc.next_sibling(node) {
            return Some(s);
        }
        node = doc.parent(node)?;
    }
}

fn ancestors(doc: &Document, n: NodeId, include_self: bool) -> Vec<NodeId> {
    let mut v = Vec::new();
    if include_self {
        v.push(n);
    }
    let mut cur = doc.parent(n);
    while let Some(p) = cur {
        v.push(p);
        cur = doc.parent(p);
    }
    v
}

impl<'d> Iterator for AxisIter<'d> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match &mut self.state {
            IterState::Done => None,
            IterState::Single(n) => {
                let n = *n;
                self.state = IterState::Done;
                Some(n)
            }
            IterState::Seq(it) => it.next(),
            IterState::Sibling(cur) => {
                let n = (*cur)?;
                *cur = self.doc.next_sibling(n);
                Some(n)
            }
            IterState::Descend { next, stop } => {
                let n = (*next)?;
                *next = next_in_subtree(self.doc, n, *stop);
                Some(n)
            }
            IterState::Following { next } => {
                let n = (*next)?;
                // Document-order successor, never leaving the document.
                *next = if let Some(c) = self.doc.first_child(n) {
                    Some(c)
                } else {
                    let mut cur = n;
                    loop {
                        if let Some(s) = self.doc.next_sibling(cur) {
                            break Some(s);
                        }
                        match self.doc.parent(cur) {
                            Some(p) => cur = p,
                            None => break None,
                        }
                    }
                };
                Some(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DocumentBuilder;

    /// Builds the tree
    /// ```text
    ///            root
    ///             a
    ///        b         c
    ///      d   e     f
    /// ```
    fn sample() -> (Document, Vec<NodeId>) {
        let mut bld = DocumentBuilder::new();
        let a = bld.open_element("a");
        let b = bld.open_element("b");
        let d = bld.leaf_element("d");
        let e = bld.leaf_element("e");
        bld.close_element();
        let c = bld.open_element("c");
        let f = bld.leaf_element("f");
        bld.close_element();
        bld.close_element();
        let doc = bld.finish();
        (doc, vec![a, b, c, d, e, f])
    }

    fn names(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| doc.name(n).unwrap_or("#root").to_string())
            .collect()
    }

    #[test]
    fn child_axis() {
        let (doc, ids) = sample();
        let a = ids[0];
        assert_eq!(names(&doc, &doc.axis_nodes(a, Axis::Child)), ["b", "c"]);
        assert_eq!(names(&doc, &doc.axis_nodes(doc.root(), Axis::Child)), ["a"]);
    }

    #[test]
    fn descendant_axes_are_document_ordered() {
        let (doc, ids) = sample();
        let a = ids[0];
        assert_eq!(
            names(&doc, &doc.axis_nodes(a, Axis::Descendant)),
            ["b", "d", "e", "c", "f"]
        );
        assert_eq!(
            names(&doc, &doc.axis_nodes(a, Axis::DescendantOrSelf)),
            ["a", "b", "d", "e", "c", "f"]
        );
        assert_eq!(
            names(&doc, &doc.axis_nodes(doc.root(), Axis::DescendantOrSelf)),
            ["#root", "a", "b", "d", "e", "c", "f"]
        );
    }

    #[test]
    fn ancestor_axes() {
        let (doc, ids) = sample();
        let d = ids[3];
        assert_eq!(
            names(&doc, &doc.axis_nodes(d, Axis::Ancestor)),
            ["#root", "a", "b"]
        );
        assert_eq!(
            names(&doc, &doc.axis_nodes(d, Axis::AncestorOrSelf)),
            ["#root", "a", "b", "d"]
        );
        assert!(doc.axis_nodes(doc.root(), Axis::Ancestor).is_empty());
        assert_eq!(
            doc.axis_nodes(doc.root(), Axis::AncestorOrSelf),
            vec![doc.root()]
        );
    }

    #[test]
    fn parent_and_self() {
        let (doc, ids) = sample();
        let (a, b) = (ids[0], ids[1]);
        assert_eq!(doc.axis_nodes(b, Axis::Parent), vec![a]);
        assert_eq!(doc.axis_nodes(b, Axis::SelfAxis), vec![b]);
        assert!(doc.axis_nodes(doc.root(), Axis::Parent).is_empty());
    }

    #[test]
    fn sibling_axes() {
        let (doc, ids) = sample();
        let (b, c, d, e) = (ids[1], ids[2], ids[3], ids[4]);
        assert_eq!(doc.axis_nodes(b, Axis::FollowingSibling), vec![c]);
        assert_eq!(doc.axis_nodes(c, Axis::PrecedingSibling), vec![b]);
        assert_eq!(doc.axis_nodes(e, Axis::PrecedingSibling), vec![d]);
        assert!(doc.axis_nodes(c, Axis::FollowingSibling).is_empty());
    }

    #[test]
    fn following_and_preceding() {
        let (doc, ids) = sample();
        let (b, c, d, e, f) = (ids[1], ids[2], ids[3], ids[4], ids[5]);
        // following(b) = everything after b's subtree: c, f
        assert_eq!(doc.axis_nodes(b, Axis::Following), vec![c, f]);
        // following(d) = e, c, f
        assert_eq!(doc.axis_nodes(d, Axis::Following), vec![e, c, f]);
        // preceding(c) = b, d, e (a is an ancestor, excluded)
        assert_eq!(doc.axis_nodes(c, Axis::Preceding), vec![b, d, e]);
        // preceding(f) = b, d, e
        assert_eq!(doc.axis_nodes(f, Axis::Preceding), vec![b, d, e]);
        assert!(doc.axis_nodes(f, Axis::Following).is_empty());
    }

    #[test]
    fn following_preceding_partition_document() {
        // For every node n: {n} ∪ ancestors ∪ descendants ∪ following ∪
        // preceding = all non-attribute nodes (XPath 1.0 §2.2).
        let (doc, ids) = sample();
        for &n in &ids {
            let mut all: Vec<NodeId> = vec![n];
            all.extend(doc.axis_nodes(n, Axis::Ancestor));
            all.extend(doc.axis_nodes(n, Axis::Descendant));
            all.extend(doc.axis_nodes(n, Axis::Following));
            all.extend(doc.axis_nodes(n, Axis::Preceding));
            all.sort();
            all.dedup();
            assert_eq!(all.len(), doc.len(), "partition failed for {n:?}");
        }
    }

    #[test]
    fn attribute_axis_and_node_tests() {
        let mut b = DocumentBuilder::new();
        b.open_element("x");
        b.attribute("id", "1");
        b.attribute("class", "c");
        b.text("hi");
        b.close_element();
        let doc = b.finish();
        let x = doc.first_child(doc.root()).unwrap();
        let attrs = doc.axis_nodes(x, Axis::Attribute);
        assert_eq!(attrs.len(), 2);
        assert!(doc.matches_on_axis(attrs[0], &NodeTest::name("id"), Axis::Attribute));
        assert!(doc.matches_on_axis(attrs[0], &NodeTest::Star, Axis::Attribute));
        assert!(!doc.matches_on_axis(attrs[0], &NodeTest::Star, Axis::Child));
        // text() matches the text child on the child axis
        let kids = doc.axis_nodes(x, Axis::Child);
        assert_eq!(kids.len(), 1);
        assert!(doc.matches_on_axis(kids[0], &NodeTest::Text, Axis::Child));
        assert!(doc.matches_on_axis(kids[0], &NodeTest::AnyNode, Axis::Child));
        assert!(!doc.matches_on_axis(kids[0], &NodeTest::Star, Axis::Child));
    }

    #[test]
    fn axis_step_filters_by_name() {
        let (doc, ids) = sample();
        let a = ids[0];
        let res = doc.axis_step(a, Axis::Descendant, &NodeTest::name("d"));
        assert_eq!(res, vec![ids[3]]);
        let res = doc.axis_step(a, Axis::Descendant, &NodeTest::Star);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn inverse_axis_roundtrip() {
        for axis in Axis::CORE {
            assert_eq!(axis.inverse().inverse(), axis);
        }
        assert_eq!(Axis::Child.inverse(), Axis::Parent);
        assert_eq!(Axis::Descendant.inverse(), Axis::Ancestor);
        assert_eq!(Axis::Following.inverse(), Axis::Preceding);
    }

    #[test]
    fn inverse_axis_semantics() {
        // m ∈ axis(n)  ⟺  n ∈ inverse(axis)(m), for all core axes.
        let (doc, _) = sample();
        let nodes: Vec<NodeId> = doc.all_nodes().collect();
        for axis in Axis::CORE {
            for &n in &nodes {
                for &m in &nodes {
                    let fwd = doc.axis_nodes(n, axis).contains(&m);
                    let bwd = doc.axis_nodes(m, axis.inverse()).contains(&n);
                    assert_eq!(fwd, bwd, "axis {axis} at {n:?},{m:?}");
                }
            }
        }
    }

    #[test]
    fn axis_names_roundtrip() {
        for axis in Axis::CORE.into_iter().chain([Axis::Attribute]) {
            assert_eq!(Axis::from_name(axis.name()), Some(axis));
        }
        assert_eq!(Axis::from_name("bogus"), None);
    }

    #[test]
    fn is_reverse_classification() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::PrecedingSibling.is_reverse());
        assert!(Axis::Preceding.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(!Axis::Following.is_reverse());
        assert!(!Axis::DescendantOrSelf.is_reverse());
    }

    #[test]
    fn ancestorship_via_pre_post() {
        let (doc, ids) = sample();
        let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
        assert!(doc.is_ancestor_of(a, d));
        assert!(doc.is_ancestor_of(doc.root(), d));
        assert!(!doc.is_ancestor_of(d, a));
        assert!(!doc.is_ancestor_of(b, c));
        assert!(!doc.is_ancestor_of(a, a));
        assert!(doc.is_ancestor_or_self_of(a, a));
    }

    #[test]
    fn attributes_are_never_ancestors() {
        let mut b = DocumentBuilder::new();
        b.open_element("e");
        b.attribute("k", "v");
        b.leaf_element("c");
        b.close_element();
        let doc = b.finish();
        let e = doc.first_child(doc.root()).unwrap();
        let c = doc.first_child(e).unwrap();
        let attr = doc.attributes(e)[0];
        // The attribute's degenerate [pre, post] interval sits between its
        // owner's entry key and its owner's children; it contains nothing.
        assert!(!doc.is_ancestor_of(attr, c));
        assert!(doc.is_ancestor_of(e, attr));
        assert!(doc.is_ancestor_of(doc.root(), attr));
    }
}
