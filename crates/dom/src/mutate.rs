//! In-place document mutation with incremental index maintenance.
//!
//! These methods edit a [`PreparedDocument`] *without* re-running the O(|D|)
//! preparation pass: because pre/post are gapped **ordering keys** (see
//! [`KEY_STRIDE`]) rather than dense ranks, an inserted subtree can usually
//! be keyed into the gap between its neighbours, and only the affected
//! slices of the document-order table, tag lists, per-parent buckets and
//! position tables are patched.  When a gap is exhausted, the smallest
//! enclosing ancestor subtree with enough key space is renumbered
//! ([`renumber`](PreparedDocument::insert_subtree) happens inside the edit);
//! renumbering preserves relative order, so only keys, the order-table
//! segment and subtree ends are rewritten — tag lists and position tables
//! survive untouched.
//!
//! Every edit returns an [`EditOutcome`] whose half-open `dirty` preorder
//! interval bounds the key range the edit touched; the catalog layer uses it
//! to invalidate only plan artifacts whose candidates intersect the edited
//! region.  Removal *detaches* arena slots instead of freeing them
//! ([`Document::is_attached`]), so outstanding [`NodeId`]s never dangle
//! against the snapshot they came from; later inserts on the same document
//! recycle detached slots, keeping a long edit stream's arena bounded by
//! the peak live size.

use crate::build::{assign_subtree_keys, subtree_key_slots};
use crate::node::{Document, NodeData, NodeId, NodeKind, KEY_STRIDE};
use crate::prepared::{PreparedDocument, TagEntry};
use std::fmt;
use std::sync::Arc;

/// Why an in-place edit was rejected.  Rejected edits leave the document and
/// its indexes untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// The target must be an element (or, for inserts, the root).
    NotAnElement(NodeId),
    /// The target of [`PreparedDocument::set_text`] is not a text node.
    NotAText(NodeId),
    /// The target was detached by an earlier removal.
    Detached(NodeId),
    /// The conceptual root cannot be removed or replaced.
    RootTarget,
    /// Insert position past the end of the parent's child list.
    IndexOutOfBounds {
        /// The parent the insert targeted.
        parent: NodeId,
        /// The requested 0-based position.
        index: usize,
        /// The parent's current child count.
        children: usize,
    },
    /// The fragment has no nodes under its root (inserts require content;
    /// use [`PreparedDocument::remove_subtree`] for pure removal).
    EmptyFragment,
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::NotAnElement(n) => write!(f, "node {n} is not an element"),
            MutationError::NotAText(n) => write!(f, "node {n} is not a text node"),
            MutationError::Detached(n) => write!(f, "node {n} was detached by an earlier edit"),
            MutationError::RootTarget => write!(f, "the conceptual root cannot be edited"),
            MutationError::IndexOutOfBounds {
                parent,
                index,
                children,
            } => write!(
                f,
                "insert index {index} out of bounds for {parent} with {children} children"
            ),
            MutationError::EmptyFragment => write!(f, "fragment has no content under its root"),
        }
    }
}

impl std::error::Error for MutationError {}

/// What an in-place edit did, in terms downstream caches understand.
#[derive(Clone, Debug)]
pub struct EditOutcome {
    /// Half-open preorder-key interval `[lo, hi)` covering everything the
    /// edit touched, in both the pre- and post-edit key spaces (edits that
    /// renumber report the enclosing renumbered subtree; a full renumber
    /// reports `(0, u32::MAX)`).  Plan artifacts whose candidates avoid this
    /// interval in *both* snapshots remain valid.
    pub dirty: (u32, u32),
    /// True if the whole document was renumbered (ordering keys outside
    /// `dirty` changed too — all interval-derived caches must drop).
    pub renumbered: bool,
    /// Newly created nodes, in document order.
    pub inserted: Vec<NodeId>,
    /// Number of arena slots detached by the edit.
    pub removed: usize,
}

impl EditOutcome {
    /// Folds another edit's outcome into this one (interval union).
    pub fn merge(self, other: EditOutcome) -> EditOutcome {
        let mut inserted = self.inserted;
        inserted.extend(other.inserted);
        EditOutcome {
            dirty: (
                self.dirty.0.min(other.dirty.0),
                self.dirty.1.max(other.dirty.1),
            ),
            renumbered: self.renumbered || other.renumbered,
            inserted,
            removed: self.removed + other.removed,
        }
    }
}

/// Pushes `top`'s whole subtree (node, then attributes, then children) onto
/// `out` in document order.
fn push_subtree_order(doc: &Document, top: NodeId, out: &mut Vec<NodeId>) {
    let mut stack = vec![top];
    while let Some(n) = stack.pop() {
        out.push(n);
        out.extend_from_slice(doc.attributes(n));
        let mut c = doc.last_child(n);
        while let Some(ch) = c {
            stack.push(ch);
            c = doc.prev_sibling(ch);
        }
    }
}

/// Copies every node under `fragment`'s root into `doc`'s arena (two passes:
/// allocate, then translate links through the id map) and returns the copies
/// of the fragment root's children, in order.  The copies are fully linked
/// among themselves but not yet attached to `doc`'s tree.
fn graft_fragment(doc: &mut Document, fragment: &Document) -> Vec<NodeId> {
    let mut map: Vec<Option<NodeId>> = vec![None; fragment.len()];
    for f in fragment.all_nodes() {
        if f == fragment.root() {
            continue;
        }
        let id = doc.alloc(NodeData::new(fragment.kind(f).clone()));
        map[f.index()] = Some(id);
    }
    for f in fragment.all_nodes() {
        if f == fragment.root() {
            continue;
        }
        let m = map[f.index()].expect("allocated in the first pass");
        let tr = |x: Option<NodeId>| x.and_then(|y| map[y.index()]);
        let attrs: Vec<NodeId> = fragment
            .attributes(f)
            .iter()
            .map(|&a| map[a.index()].expect("attributes allocated too"))
            .collect();
        let d = doc.data_mut(m);
        d.parent = tr(fragment.parent(f));
        d.first_child = tr(fragment.first_child(f));
        d.last_child = tr(fragment.last_child(f));
        d.next_sibling = tr(fragment.next_sibling(f));
        d.prev_sibling = tr(fragment.prev_sibling(f));
        d.set_attrs(attrs);
    }
    let mut tops = Vec::new();
    let mut c = fragment.first_child(fragment.root());
    while let Some(ch) = c {
        tops.push(map[ch.index()].expect("root children allocated"));
        c = fragment.next_sibling(ch);
    }
    tops
}

/// Links the grafted `tops` into `doc` as consecutive children of `parent`
/// between `prev` and `next`.
fn splice_tops(
    doc: &mut Document,
    parent: NodeId,
    prev: Option<NodeId>,
    next: Option<NodeId>,
    tops: &[NodeId],
) {
    for &t in tops {
        doc.data_mut(t).parent = Some(parent);
    }
    let first = tops[0];
    let last = *tops.last().expect("tops is non-empty");
    doc.data_mut(first).prev_sibling = prev;
    doc.data_mut(last).next_sibling = next;
    match prev {
        Some(p) => doc.data_mut(p).next_sibling = Some(first),
        None => doc.data_mut(parent).first_child = Some(first),
    }
    match next {
        Some(nx) => doc.data_mut(nx).prev_sibling = Some(last),
        None => doc.data_mut(parent).last_child = Some(last),
    }
}

impl PreparedDocument {
    /// Inserts the children of `fragment`'s root as children of `parent` at
    /// 0-based position `index`, patching every index incrementally.
    ///
    /// The common case keys the new nodes into the gap between their
    /// neighbours (cost proportional to the fragment plus the binary-search
    /// splices); only when the local gap is exhausted is the smallest
    /// roomy ancestor subtree renumbered.
    pub fn insert_subtree(
        &mut self,
        parent: NodeId,
        index: usize,
        fragment: &Document,
    ) -> Result<EditOutcome, MutationError> {
        if !self.doc.is_attached(parent) {
            return Err(MutationError::Detached(parent));
        }
        if !(self.doc.kind(parent).is_element() || self.doc.kind(parent).is_root()) {
            return Err(MutationError::NotAnElement(parent));
        }
        if fragment.first_child(fragment.root()).is_none() {
            return Err(MutationError::EmptyFragment);
        }
        let children = self.child_count(parent);
        if index > children {
            return Err(MutationError::IndexOutOfBounds {
                parent,
                index,
                children,
            });
        }
        let prev = if index > 0 {
            self.nth_child(parent, index)
        } else {
            None
        };
        let next = self.nth_child(parent, index + 1);
        // Key window strictly between the last key before the insertion
        // point and the first key after it.  Attributes sort between their
        // owner's entry key and its first child.
        let lo = match prev {
            Some(p) => self.doc.post(p),
            None => match self.doc.attributes(parent).last() {
                Some(&a) => self.doc.pre(a),
                None => self.doc.pre(parent),
            },
        };
        let hi = match next {
            Some(nx) => self.doc.pre(nx),
            None => self.doc.post(parent),
        };
        let parent_depth = self.doc.depth(parent);

        let (tops, fits_in_gap) = {
            let doc = Arc::make_mut(&mut self.doc);
            let tops = graft_fragment(doc, fragment);
            splice_tops(doc, parent, prev, next, &tops);
            let slots: u64 = tops.iter().map(|&t| subtree_key_slots(doc, t)).sum();
            let stride = u64::from(hi - lo) / (slots + 1);
            if stride >= 1 {
                let stride = stride as u32;
                let mut key = lo + stride;
                for &t in &tops {
                    key = assign_subtree_keys(doc, t, key, stride, parent_depth + 1);
                }
                debug_assert!(key - stride < hi, "keys must stay inside the gap");
                (tops, true)
            } else {
                (tops, false)
            }
        };
        self.grow_tables();
        let mut inserted = Vec::new();
        {
            let doc: &Document = &self.doc;
            for &t in &tops {
                push_subtree_order(doc, t, &mut inserted);
            }
        }
        let (dirty, renumbered) = if fits_in_gap {
            {
                let doc: &Document = &self.doc;
                for &m in &inserted {
                    self.subtree_end[m.index()] = doc.post(m) + 1;
                }
                let first_pre = doc.pre(tops[0]);
                let at = self.order.partition_point(|&m| doc.pre(m) < first_pre);
                self.order.splice(at..at, inserted.iter().copied());
            }
            let last = *tops.last().expect("tops is non-empty");
            ((self.doc.pre(tops[0]), self.doc.post(last) + 1), false)
        } else {
            // Gap exhausted: renumber the smallest roomy ancestor.  This
            // also rebuilds the order segment and subtree ends, including
            // the new nodes.
            self.renumber_neighborhood(parent)
        };
        self.patch_inserted_indexes(parent, &inserted);
        Ok(EditOutcome {
            dirty,
            renumbered,
            inserted,
            removed: 0,
        })
    }

    /// Detaches `n` and its whole subtree (attributes included); the arena
    /// slots stay behind as dead slots — ids stay valid against snapshots
    /// taken before the edit — and are recycled by later inserts on this
    /// document.
    ///
    /// Never renumbers: removal only widens gaps.
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<EditOutcome, MutationError> {
        if n == self.doc.root() {
            return Err(MutationError::RootTarget);
        }
        if !self.doc.is_attached(n) {
            return Err(MutationError::Detached(n));
        }
        if self.doc.kind(n).is_attribute() {
            return Err(MutationError::NotAnElement(n));
        }
        let (pre_n, end_n) = self.pre_interval(n);
        let (lo, hi) = {
            let doc: &Document = &self.doc;
            (
                self.order.partition_point(|&m| doc.pre(m) < pre_n),
                self.order.partition_point(|&m| doc.pre(m) < end_n),
            )
        };
        let removed: Vec<NodeId> = self.order[lo..hi].to_vec();
        debug_assert_eq!(removed.first().copied(), Some(n));
        // Drop the removed elements from the tag index while links and keys
        // are still intact (the by-parent bucket needs the parent's key).
        {
            let doc: &Document = &self.doc;
            for &e in &removed {
                if let Some(name) = doc.kind(e).element_name() {
                    let id = self.tag_ids[name];
                    let pre_e = doc.pre(e);
                    let slot = self
                        .local_slot(id)
                        .expect("indexed tag has a local table slot");
                    let entry = &mut self.tags[slot];
                    let at = entry.elements.partition_point(|&x| doc.pre(x) < pre_e);
                    debug_assert_eq!(entry.elements.get(at).copied(), Some(e));
                    entry.elements.remove(at);
                    let ppre = doc.parent(e).map_or(0, |p| doc.pre(p));
                    let at = entry.by_parent.partition_point(|&x| {
                        let xpp = doc.parent(x).map_or(0, |p| doc.pre(p));
                        (xpp, doc.pre(x)) < (ppre, pre_e)
                    });
                    debug_assert_eq!(entry.by_parent.get(at).copied(), Some(e));
                    entry.by_parent.remove(at);
                }
            }
        }
        let parent = self.doc.parent(n).expect("attached non-root has a parent");
        let next = self.doc.next_sibling(n);
        {
            let doc = Arc::make_mut(&mut self.doc);
            let prev = doc.data(n).prev_sibling;
            match prev {
                Some(p) => doc.data_mut(p).next_sibling = next,
                None => doc.data_mut(parent).first_child = next,
            }
            match next {
                Some(nx) => doc.data_mut(nx).prev_sibling = prev,
                None => doc.data_mut(parent).last_child = prev,
            }
            for &e in &removed {
                let d = doc.data_mut(e);
                d.parent = None;
                d.first_child = None;
                d.last_child = None;
                d.next_sibling = None;
                d.prev_sibling = None;
                d.attributes = None;
            }
            doc.release(&removed);
        }
        self.order.drain(lo..hi);
        for &e in &removed {
            self.subtree_end[e.index()] = 0;
            self.sibling_pos[e.index()] = 0;
            self.child_count[e.index()] = 0;
        }
        self.refresh_child_positions(parent);
        Ok(EditOutcome {
            dirty: (pre_n, end_n),
            renumbered: false,
            inserted: Vec::new(),
            removed: removed.len(),
        })
    }

    /// Replaces `n`'s subtree with the children of `fragment`'s root, at
    /// `n`'s position.  An empty fragment makes this a pure removal.
    pub fn replace_subtree(
        &mut self,
        n: NodeId,
        fragment: &Document,
    ) -> Result<EditOutcome, MutationError> {
        if n == self.doc.root() {
            return Err(MutationError::RootTarget);
        }
        if !self.doc.is_attached(n) {
            return Err(MutationError::Detached(n));
        }
        if self.doc.kind(n).is_attribute() {
            return Err(MutationError::NotAnElement(n));
        }
        let parent = self.doc.parent(n).expect("attached non-root has a parent");
        let index = self.sibling_pos[n.index()] as usize - 1;
        let rm = self.remove_subtree(n)?;
        if fragment.first_child(fragment.root()).is_none() {
            return Ok(rm);
        }
        let ins = self.insert_subtree(parent, index, fragment)?;
        Ok(rm.merge(ins))
    }

    /// Sets (creating if absent) the attribute `name` on element `el`.
    ///
    /// Updating an existing attribute touches no index at all; creating one
    /// keys the new node into the gap between the element's entry key and
    /// its first child (renumbering the neighborhood only when that gap is
    /// exhausted).
    pub fn set_attribute(
        &mut self,
        el: NodeId,
        name: &str,
        value: &str,
    ) -> Result<EditOutcome, MutationError> {
        if !self.doc.is_attached(el) {
            return Err(MutationError::Detached(el));
        }
        if !self.doc.kind(el).is_element() {
            return Err(MutationError::NotAnElement(el));
        }
        let dirty = (self.doc.pre(el), self.subtree_end[el.index()]);
        let existing = self
            .doc
            .attributes(el)
            .iter()
            .copied()
            .find(|&a| self.doc.name(a) == Some(name));
        if let Some(a) = existing {
            let doc = Arc::make_mut(&mut self.doc);
            doc.data_mut(a).kind = NodeKind::Attribute {
                name: name.into(),
                value: value.into(),
            };
            return Ok(EditOutcome {
                dirty,
                renumbered: false,
                inserted: Vec::new(),
                removed: 0,
            });
        }
        // New attribute: its single key must land strictly between the
        // element's last attribute (or entry key) and its first child (or
        // exit key).
        let lo = match self.doc.attributes(el).last() {
            Some(&a) => self.doc.pre(a),
            None => self.doc.pre(el),
        };
        let hi = match self.doc.first_child(el) {
            Some(c) => self.doc.pre(c),
            None => self.doc.post(el),
        };
        let depth = self.doc.depth(el) + 1;
        let attr = {
            let doc = Arc::make_mut(&mut self.doc);
            let mut d = NodeData::new(NodeKind::Attribute {
                name: name.into(),
                value: value.into(),
            });
            d.parent = Some(el);
            let id = doc.alloc(d);
            doc.keys_mut(id).depth = depth;
            doc.data_mut(el).push_attr(id);
            id
        };
        self.grow_tables();
        if hi - lo >= 2 {
            let key = lo + (hi - lo) / 2;
            {
                let doc = Arc::make_mut(&mut self.doc);
                let k = doc.keys_mut(attr);
                k.pre = key;
                k.post = key;
            }
            self.subtree_end[attr.index()] = key + 1;
            {
                let doc: &Document = &self.doc;
                let at = self.order.partition_point(|&m| doc.pre(m) < key);
                self.order.insert(at, attr);
            }
            Ok(EditOutcome {
                dirty,
                renumbered: false,
                inserted: vec![attr],
                removed: 0,
            })
        } else {
            let (dirty, renumbered) = self.renumber_neighborhood(el);
            Ok(EditOutcome {
                dirty,
                renumbered,
                inserted: vec![attr],
                removed: 0,
            })
        }
    }

    /// Replaces the content of text node `t`.  No index changes at all —
    /// text carries no structure.
    pub fn set_text(&mut self, t: NodeId, text: &str) -> Result<EditOutcome, MutationError> {
        if !self.doc.is_attached(t) {
            return Err(MutationError::Detached(t));
        }
        if !self.doc.kind(t).is_text() {
            return Err(MutationError::NotAText(t));
        }
        let dirty = (self.doc.pre(t), self.subtree_end[t.index()]);
        let doc = Arc::make_mut(&mut self.doc);
        doc.data_mut(t).kind = NodeKind::Text { text: text.into() };
        Ok(EditOutcome {
            dirty,
            renumbered: false,
            inserted: Vec::new(),
            removed: 0,
        })
    }

    /// Resizes the slot-indexed tables to the (possibly grown) arena.
    fn grow_tables(&mut self) {
        let len = self.doc.len();
        self.subtree_end.resize(len, 0);
        self.sibling_pos.resize(len, 0);
        self.child_count.resize(len, 0);
    }

    /// Recomputes the sibling positions of `n`'s children and `n`'s child
    /// count by one walk of the child chain.
    fn refresh_child_positions(&mut self, n: NodeId) {
        let mut pos = 0u32;
        let mut c = self.doc.first_child(n);
        while let Some(ch) = c {
            pos += 1;
            self.sibling_pos[ch.index()] = pos;
            c = self.doc.next_sibling(ch);
        }
        self.child_count[n.index()] = pos;
    }

    /// Splices freshly keyed `inserted` nodes into the tag index and the
    /// position tables (`parent` is the splice parent whose child chain
    /// shifted).
    fn patch_inserted_indexes(&mut self, parent: NodeId, inserted: &[NodeId]) {
        {
            let doc: &Document = &self.doc;
            for &m in inserted {
                if let Some(name) = doc.kind(m).element_name() {
                    let slot = match self.tag_ids.get(name) {
                        Some(&id) => self
                            .local_slot(id)
                            .expect("indexed tag has a local table slot"),
                        None => {
                            // First occurrence in this document: the id is
                            // global (and may predate this document), only
                            // the local slot is new.
                            let id = crate::intern::intern(name);
                            let slot = self.tags.len();
                            self.tags.push(TagEntry {
                                name: name.to_string(),
                                elements: Vec::new(),
                                by_parent: Vec::new(),
                            });
                            if self.local_of_global.len() <= id.index() {
                                self.local_of_global
                                    .resize(id.index() + 1, crate::prepared::NO_LOCAL_TAG);
                            }
                            self.local_of_global[id.index()] = slot as u32;
                            self.tag_ids.insert(name.to_string(), id);
                            slot
                        }
                    };
                    let pre_m = doc.pre(m);
                    let entry = &mut self.tags[slot];
                    let at = entry.elements.partition_point(|&e| doc.pre(e) < pre_m);
                    entry.elements.insert(at, m);
                    let ppre = doc.parent(m).map_or(0, |p| doc.pre(p));
                    let at = entry.by_parent.partition_point(|&e| {
                        let epp = doc.parent(e).map_or(0, |p| doc.pre(p));
                        (epp, doc.pre(e)) < (ppre, pre_m)
                    });
                    entry.by_parent.insert(at, m);
                }
            }
        }
        self.refresh_child_positions(parent);
        for &m in inserted {
            if !self.doc.kind(m).is_attribute() {
                self.refresh_child_positions(m);
            }
        }
    }

    /// Renumbers the smallest ancestor subtree of `from` (possibly the whole
    /// document) whose key space can absorb its current slot count with a
    /// gap-preserving stride, then rebuilds the affected order-table segment
    /// and subtree ends.  Renumbering preserves relative order, so tag lists,
    /// per-parent buckets and position tables are untouched.
    ///
    /// Returns the dirty interval and whether the *whole* document was
    /// renumbered (keys outside the interval changed).
    fn renumber_neighborhood(&mut self, from: NodeId) -> ((u32, u32), bool) {
        let mut anc = from;
        loop {
            let Some(parent) = self.doc.parent(anc) else {
                // Reached the root: renumber the whole document with the
                // widest stride the u32 key space allows (capped at the
                // build stride).
                {
                    let doc = Arc::make_mut(&mut self.doc);
                    let root = doc.root();
                    let total = subtree_key_slots(doc, root);
                    let widest = u64::from(u32::MAX) / (total + 1);
                    assert!(widest >= 1, "ordering-key space exhausted");
                    let stride = widest.min(u64::from(KEY_STRIDE)) as u32;
                    assign_subtree_keys(doc, root, 0, stride, 0);
                }
                let mut order = Vec::with_capacity(self.order.len());
                {
                    let doc: &Document = &self.doc;
                    push_subtree_order(doc, doc.root(), &mut order);
                }
                self.order = order;
                {
                    let doc: &Document = &self.doc;
                    for &m in &self.order {
                        self.subtree_end[m.index()] = doc.post(m) + 1;
                    }
                }
                return ((0, u32::MAX), true);
            };
            let pre = self.doc.pre(anc);
            let post = self.doc.post(anc);
            // Interior slots: everything in the subtree except anc's own
            // entry/exit pair, whose keys stay fixed as anchors.
            let interior = subtree_key_slots(&self.doc, anc) - 2;
            let stride = u64::from(post - pre) / (interior + 1);
            if stride < 2 {
                // Not enough room to renumber with gaps; climb.
                anc = parent;
                continue;
            }
            let stride = stride as u32;
            let anc_depth = self.doc.depth(anc);
            {
                let doc = Arc::make_mut(&mut self.doc);
                let mut key = pre + stride;
                let attrs: Vec<NodeId> = doc.data(anc).attrs().to_vec();
                for a in attrs {
                    let k = doc.keys_mut(a);
                    k.pre = key;
                    k.post = key;
                    k.depth = anc_depth + 1;
                    key += stride;
                }
                let mut children = Vec::new();
                let mut c = doc.data(anc).first_child;
                while let Some(ch) = c {
                    children.push(ch);
                    c = doc.data(ch).next_sibling;
                }
                for ch in children {
                    key = assign_subtree_keys(doc, ch, key, stride, anc_depth + 1);
                }
                debug_assert!(
                    interior == 0 || key - stride < post,
                    "interior keys must stay inside the anchor interval"
                );
            }
            // Rebuild the order segment for anc's subtree.  Renumbering
            // preserves relative order and anc's own keys, so the existing
            // table is still sorted and the segment is found by its anchors;
            // the rebuilt segment additionally picks up not-yet-listed nodes.
            let end = post + 1;
            let mut seg = Vec::new();
            {
                let doc: &Document = &self.doc;
                push_subtree_order(doc, anc, &mut seg);
                let p_lo = self.order.partition_point(|&m| doc.pre(m) < pre);
                let p_hi = self.order.partition_point(|&m| doc.pre(m) < end);
                self.order.splice(p_lo..p_hi, seg.iter().copied());
            }
            {
                let doc: &Document = &self.doc;
                for &m in &seg {
                    self.subtree_end[m.index()] = doc.post(m) + 1;
                }
            }
            return ((pre, end), false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_xml, DocumentBuilder};

    /// Every index the mutated document carries must equal what a fresh
    /// preparation of the same (already edited) document would build.
    fn assert_matches_rebuild(p: &PreparedDocument) {
        let fresh = PreparedDocument::new(Arc::clone(p.shared_document()));
        assert_eq!(p.order, fresh.order, "document-order table");
        for &n in &p.order {
            assert_eq!(
                p.subtree_end[n.index()],
                fresh.subtree_end[n.index()],
                "subtree_end of {n:?}"
            );
            assert_eq!(
                p.sibling_pos[n.index()],
                fresh.sibling_pos[n.index()],
                "sibling_pos of {n:?}"
            );
            assert_eq!(
                p.child_count[n.index()],
                fresh.child_count[n.index()],
                "child_count of {n:?}"
            );
        }
        for entry in &p.tags {
            assert_eq!(
                entry.elements.as_slice(),
                fresh.elements_named(&entry.name),
                "tag list {}",
                entry.name
            );
            let fresh_bp = fresh
                .tag_id(&entry.name)
                .and_then(|id| fresh.local_slot(id))
                .map(|slot| fresh.tags[slot].by_parent.as_slice())
                .unwrap_or(&[]);
            assert_eq!(
                entry.by_parent.as_slice(),
                fresh_bp,
                "by_parent {}",
                entry.name
            );
        }
        for name in fresh.tag_names() {
            assert!(p.tag_ids.contains_key(name), "missing tag {name}");
        }
    }

    fn fragment(xml: &str) -> Document {
        parse_xml(xml).unwrap()
    }

    fn sample() -> PreparedDocument {
        parse_xml(r#"<r><a k="1"><b/><c>t</c></a><b/><c><a/></c></r>"#)
            .unwrap()
            .prepare()
    }

    #[test]
    fn insert_into_gap_matches_rebuild() {
        let mut p = sample();
        let r = p.first_child(p.root()).unwrap();
        let out = p
            .insert_subtree(r, 1, &fragment("<x><y/>text</x>"))
            .unwrap();
        assert!(!out.renumbered);
        assert_eq!(out.inserted.len(), 3);
        assert_eq!(out.removed, 0);
        // The dirty interval covers exactly the inserted keys.
        for &m in &out.inserted {
            assert!(p.pre(m) >= out.dirty.0 && p.pre(m) < out.dirty.1);
        }
        assert_eq!(p.elements_named("x").len(), 1);
        assert_eq!(p.elements_named("y").len(), 1);
        assert_matches_rebuild(&p);
    }

    #[test]
    fn insert_at_every_position_matches_rebuild() {
        for index in 0..=3 {
            let mut p = sample();
            let r = p.first_child(p.root()).unwrap();
            p.insert_subtree(r, index, &fragment("<x/>")).unwrap();
            let x = p.elements_named("x")[0];
            assert_eq!(p.sibling_position(x), index + 1);
            assert_matches_rebuild(&p);
        }
    }

    #[test]
    fn repeated_inserts_exhaust_the_gap_and_renumber() {
        let mut p = sample();
        let r = p.first_child(p.root()).unwrap();
        let mut renumbered_any = false;
        // Repeatedly insert at position 1: the gap between fixed neighbours
        // shrinks until a renumber must fire.
        for _ in 0..40 {
            let out = p.insert_subtree(r, 1, &fragment("<z/>")).unwrap();
            renumbered_any |= out.renumbered || out.dirty.1 - out.dirty.0 > 64;
            assert_matches_rebuild(&p);
        }
        assert_eq!(p.elements_named("z").len(), 40);
        assert!(renumbered_any, "40 same-spot inserts must exhaust a gap");
    }

    #[test]
    fn remove_matches_rebuild_and_detaches() {
        let mut p = sample();
        let r = p.first_child(p.root()).unwrap();
        let a = p.children_named(r, "a")[0];
        let out = p.remove_subtree(a).unwrap();
        assert!(!out.renumbered);
        assert_eq!(out.removed, 5); // a, @k, b, c, text
        assert!(!p.document().is_attached(a));
        assert_eq!(p.elements_named("a").len(), 1);
        assert_eq!(p.child_count(r), 2);
        assert_matches_rebuild(&p);
        // Editing a detached node is rejected.
        assert_eq!(p.remove_subtree(a).unwrap_err(), MutationError::Detached(a));
    }

    #[test]
    fn replace_matches_rebuild() {
        let mut p = sample();
        let r = p.first_child(p.root()).unwrap();
        let a = p.children_named(r, "a")[0];
        // Fragments may carry several top-level nodes; build one directly.
        let mut b = DocumentBuilder::new();
        b.leaf_element("n1");
        b.open_element("n2");
        b.leaf_element("n3");
        b.close_element();
        let out = p.replace_subtree(a, &b.finish()).unwrap();
        assert_eq!(out.removed, 5);
        assert_eq!(out.inserted.len(), 3);
        assert!(p.elements_named("a").len() == 1);
        let n1 = p.elements_named("n1")[0];
        assert_eq!(p.sibling_position(n1), 1);
        // One child replaced by two fragment tops: 3 - 1 + 2.
        assert_eq!(p.child_count(r), 4);
        assert_matches_rebuild(&p);
        // Empty fragment means pure removal.
        let b = p.children_named(r, "b")[0];
        let out = p.replace_subtree(b, &fragment("<e/>")).unwrap();
        assert_eq!(out.inserted.len(), 1);
        let e = p.elements_named("e")[0];
        let out = p
            .replace_subtree(e, &DocumentBuilder::new().finish())
            .unwrap();
        assert_eq!(out.inserted.len(), 0);
        assert!(p.elements_named("e").is_empty());
        assert_matches_rebuild(&p);
    }

    #[test]
    fn set_attribute_update_create_and_renumber() {
        let mut p = sample();
        let r = p.first_child(p.root()).unwrap();
        let a = p.children_named(r, "a")[0];
        // Update in place: no new node, no index change.
        let before = p.order().len();
        let out = p.set_attribute(a, "k", "2").unwrap();
        assert!(out.inserted.is_empty());
        assert_eq!(p.attribute_value(a, "k"), Some("2"));
        assert_eq!(p.order().len(), before);
        assert_matches_rebuild(&p);
        // Create new attributes until the attribute gap is exhausted.
        for i in 0..20 {
            let out = p.set_attribute(a, &format!("n{i}"), "v").unwrap();
            assert_eq!(out.inserted.len(), 1);
            assert_matches_rebuild(&p);
        }
        assert_eq!(p.attribute_value(a, "n19"), Some("v"));
        assert_eq!(p.attributes(a).len(), 21);
    }

    #[test]
    fn set_text_changes_string_value_only() {
        let mut p = sample();
        let c = p.elements_named("c")[0];
        let t = p.first_child(c).unwrap();
        let out = p.set_text(t, "edited").unwrap();
        assert!(out.inserted.is_empty());
        assert_eq!(out.removed, 0);
        assert_eq!(p.string_value(c), "edited");
        assert_matches_rebuild(&p);
        assert_eq!(p.set_text(c, "no").unwrap_err(), MutationError::NotAText(c));
    }

    #[test]
    fn validation_errors() {
        let mut p = sample();
        let r = p.first_child(p.root()).unwrap();
        let a = p.children_named(r, "a")[0];
        let attr = p.attributes(a)[0];
        let frag = fragment("<x/>");
        assert_eq!(
            p.remove_subtree(p.root()).unwrap_err(),
            MutationError::RootTarget
        );
        assert_eq!(
            p.replace_subtree(p.root(), &frag).unwrap_err(),
            MutationError::RootTarget
        );
        assert_eq!(
            p.remove_subtree(attr).unwrap_err(),
            MutationError::NotAnElement(attr)
        );
        assert_eq!(
            p.insert_subtree(attr, 0, &frag).unwrap_err(),
            MutationError::NotAnElement(attr)
        );
        assert_eq!(
            p.insert_subtree(r, 99, &frag).unwrap_err(),
            MutationError::IndexOutOfBounds {
                parent: r,
                index: 99,
                children: 3
            }
        );
        assert_eq!(
            p.insert_subtree(r, 0, &DocumentBuilder::new().finish())
                .unwrap_err(),
            MutationError::EmptyFragment
        );
        assert_eq!(
            p.set_attribute(attr, "x", "y").unwrap_err(),
            MutationError::NotAnElement(attr)
        );
        // Errors leave everything untouched.
        assert_matches_rebuild(&p);
    }

    #[test]
    fn replace_stream_recycles_detached_slots() {
        // A sustained replace loop must not grow the arena: every replace
        // detaches one subtree and grafts an equal-sized one, and the graft
        // reuses the slots the removal released.  Without recycling, the
        // per-edit copy-on-write cost would grow with the edit count.
        let mut p = sample();
        let frag = fragment(r#"<a k="2"><b/><c>u</c></a>"#);
        let len = p.document().len();
        for _ in 0..100 {
            let target = p.elements_named("a")[0];
            p.replace_subtree(target, &frag).unwrap();
        }
        assert_eq!(p.document().len(), len, "arena must stay bounded");
        assert_matches_rebuild(&p);
    }

    #[test]
    fn edit_storm_stays_consistent() {
        let mut p = sample();
        let r = p.first_child(p.root()).unwrap();
        for i in 0..30 {
            let frag = fragment(&format!("<s{}><u/></s{}>", i % 5, i % 5));
            let k = i % (p.child_count(r) + 1);
            p.insert_subtree(r, k, &frag).unwrap();
            if p.child_count(r) > 4 {
                let victim = p.nth_child(r, 2).unwrap();
                if p.kind(victim).is_element() {
                    p.remove_subtree(victim).unwrap();
                }
            }
            assert_matches_rebuild(&p);
        }
    }
}
