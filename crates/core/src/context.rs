//! Evaluation contexts.
//!
//! XPath expressions are evaluated relative to a *context*: a triple of a
//! context node, a context position and a context size (XPath 1.0 §1, and
//! Section 2.2 of the paper).  The dynamic-programming evaluator memoizes on
//! [`ContextKey`]s: subexpressions that do not mention `position()`/`last()`
//! only depend on the context node, which is what keeps the number of
//! distinct table entries — and hence the combined complexity — polynomial.

use xpeval_dom::{Document, NodeId};

/// A context triple `(node, position, size)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Context {
    /// The context node.
    pub node: NodeId,
    /// The context position (1-based).
    pub position: usize,
    /// The context size.
    pub size: usize,
}

impl Context {
    /// Creates a context triple.
    pub fn new(node: NodeId, position: usize, size: usize) -> Self {
        Context {
            node,
            position,
            size,
        }
    }

    /// The canonical initial context for evaluating a complete query on a
    /// document: the conceptual root with position and size 1.
    pub fn root(doc: &Document) -> Self {
        Context {
            node: doc.root(),
            position: 1,
            size: 1,
        }
    }

    /// Context with the same position/size but a different node.
    pub fn with_node(self, node: NodeId) -> Self {
        Context { node, ..self }
    }
}

/// Memoization key of the context-value tables: either the full triple (for
/// position-sensitive subexpressions) or just the context node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ContextKey {
    /// The subexpression's value depends only on the context node.
    Node(NodeId),
    /// The subexpression's value depends on the full context triple.
    Full(NodeId, usize, usize),
}

impl ContextKey {
    /// Builds the appropriate key for a context given the subexpression's
    /// position-sensitivity.
    pub fn for_context(ctx: Context, position_sensitive: bool) -> Self {
        if position_sensitive {
            ContextKey::Full(ctx.node, ctx.position, ctx.size)
        } else {
            ContextKey::Node(ctx.node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;

    #[test]
    fn root_context() {
        let doc = parse_xml("<a/>").unwrap();
        let ctx = Context::root(&doc);
        assert_eq!(ctx.node, doc.root());
        assert_eq!(ctx.position, 1);
        assert_eq!(ctx.size, 1);
    }

    #[test]
    fn with_node_keeps_position() {
        let doc = parse_xml("<a/>").unwrap();
        let a = doc.first_child(doc.root()).unwrap();
        let ctx = Context::new(doc.root(), 3, 7).with_node(a);
        assert_eq!(ctx.node, a);
        assert_eq!(ctx.position, 3);
        assert_eq!(ctx.size, 7);
    }

    #[test]
    fn context_key_collapses_when_insensitive() {
        let doc = parse_xml("<a/>").unwrap();
        let a = doc.first_child(doc.root()).unwrap();
        let c1 = Context::new(a, 1, 10);
        let c2 = Context::new(a, 5, 10);
        assert_eq!(
            ContextKey::for_context(c1, false),
            ContextKey::for_context(c2, false)
        );
        assert_ne!(
            ContextKey::for_context(c1, true),
            ContextKey::for_context(c2, true)
        );
    }
}
