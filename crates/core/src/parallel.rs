//! Parallel evaluation of the LOGCFL fragments (pWF / pXPath).
//!
//! Remark 5.6 of the paper observes that LOGCFL ⊆ NC², so pWF and pXPath
//! queries can be evaluated by a highly parallel algorithm.  The membership
//! proof (Theorem 5.5) already exhibits the decomposition: the node-set
//! result of a query is recovered by deciding the **Singleton-Success**
//! problem once per document node, and those |D| decisions are completely
//! independent of each other.
//!
//! [`ParallelEvaluator`] exploits exactly this independence: the candidate
//! nodes are partitioned into chunks, each worker thread runs its own
//! [`SingletonSuccess`] checker over its chunk, and the selected nodes are
//! concatenated.  This is a thread-pool realization of the PRAM/circuit
//! parallelism the paper appeals to — absolute processor counts differ, but
//! the *shape* (near-linear speed-up for large documents, no speed-up for
//! P-hard queries which the evaluator rejects) is the reproducible claim,
//! and the `bench_parallel_speedup` bench measures it.
//!
//! Scalar (boolean/number/string) queries are decided by a single
//! Singleton-Success call; only node-set queries benefit from the
//! data-parallel loop.

use crate::context::Context;
use crate::error::EvalError;
use crate::stats::EvalStats;
use crate::success::SingletonSuccess;
use crate::value::Value;
use xpeval_dom::{AxisSource, Document, NodeId};
use xpeval_syntax::ast::ExprType;
use xpeval_syntax::Expr;

/// Data-parallel evaluator for pWF/pXPath queries.
///
/// Generic over the document access layer ([`AxisSource`], whose `Sync`
/// supertrait is what lets one source be shared across the worker threads).
pub struct ParallelEvaluator<'d, S: AxisSource + ?Sized = Document> {
    src: &'d S,
    doc: &'d Document,
    threads: usize,
}

impl<'d, S: AxisSource + ?Sized> ParallelEvaluator<'d, S> {
    /// Creates an evaluator that uses `threads` worker threads
    /// (values of 0 and 1 both mean sequential evaluation).
    pub fn new(src: &'d S, threads: usize) -> Self {
        ParallelEvaluator {
            src,
            doc: src.document(),
            threads: threads.max(1),
        }
    }

    /// Number of worker threads used for node-set queries.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates the query from the canonical root context.
    pub fn evaluate(&self, query: &Expr) -> Result<Value, EvalError> {
        self.evaluate_with_context(query, Context::root(self.doc))
    }

    /// Evaluates the query from an explicit context.
    pub fn evaluate_with_context(&self, query: &Expr, ctx: Context) -> Result<Value, EvalError> {
        self.evaluate_with_stats(query, ctx).map(|(value, _)| value)
    }

    /// Evaluates the query from an explicit context, returning the work
    /// counters summed over all worker checkers next to the value.
    pub fn evaluate_with_stats(
        &self,
        query: &Expr,
        ctx: Context,
    ) -> Result<(Value, EvalStats), EvalError> {
        // Validate the fragment up front (same restrictions as the
        // Singleton-Success checker, i.e. Definition 6.1 plus bounded
        // negation).
        let checker = SingletonSuccess::new(self.src, query)?;
        match query.expr_type() {
            ExprType::NodeSet => {
                drop(checker);
                let (nodes, stats) = self.parallel_node_set(query, ctx)?;
                Ok((Value::NodeSet(nodes), stats))
            }
            ExprType::Boolean => {
                let value = Value::Boolean(checker.eval_boolean(query, ctx)?);
                Ok((value, checker.stats()))
            }
            ExprType::Number | ExprType::Str => {
                let value = checker.eval_scalar(query, ctx)?;
                Ok((value, checker.stats()))
            }
        }
    }

    /// The Theorem 5.5 loop ("decide Singleton-Success for every v ∈ dom"),
    /// distributed over worker threads with std's scoped threads.
    fn parallel_node_set(
        &self,
        query: &Expr,
        ctx: Context,
    ) -> Result<(Vec<NodeId>, EvalStats), EvalError> {
        // With a tag index the candidate universe shrinks to the nodes the
        // query's final name test can select (same pruning as the
        // sequential checker's node-set recovery), so each worker decides
        // plausible candidates only.
        let candidates: Vec<NodeId> = crate::steps::result_candidates(query, self.src)
            .unwrap_or_else(|| self.doc.all_nodes().collect());
        if self.threads <= 1 || candidates.len() < 2 {
            let checker = SingletonSuccess::new(self.src, query)?;
            let nodes = checker.node_set(ctx)?;
            return Ok((nodes, checker.stats()));
        }

        let chunk_size = candidates.len().div_ceil(self.threads);
        let src = self.src;
        let results: Result<Vec<(Vec<NodeId>, EvalStats)>, EvalError> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in candidates.chunks(chunk_size) {
                    handles.push(scope.spawn(
                        move || -> Result<(Vec<NodeId>, EvalStats), EvalError> {
                            // Each worker owns an independent checker (and
                            // therefore its own memo tables), mirroring the
                            // independent NAuxPDA runs of the membership proof.
                            let checker = SingletonSuccess::new(src, query)?;
                            let mut selected = Vec::new();
                            for &v in chunk {
                                if checker.decide(ctx, &crate::success::SuccessTarget::Node(v))? {
                                    selected.push(v);
                                }
                            }
                            Ok((selected, checker.stats()))
                        },
                    ));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            });

        let mut out: Vec<NodeId> = Vec::new();
        let mut stats = EvalStats::default();
        for (selected, worker_stats) in results? {
            out.extend(selected);
            stats += worker_stats;
        }
        self.doc.sort_document_order(&mut out);
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpEvaluator;
    use xpeval_dom::parse_xml;
    use xpeval_syntax::parse_query;

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book><paper year="2003"><title>C</title></paper></lib>"#;

    fn agree(xml: &str, query: &str, threads: usize) {
        let doc = parse_xml(xml).unwrap();
        let q = parse_query(query).unwrap();
        let dp = DpEvaluator::new(&doc, &q).evaluate().unwrap();
        let par = ParallelEvaluator::new(&doc, threads).evaluate(&q).unwrap();
        assert_eq!(dp, par, "disagreement on {query} with {threads} threads");
    }

    #[test]
    fn agrees_with_dp_across_thread_counts() {
        for threads in [1, 2, 4] {
            for q in [
                "/lib/book/title",
                "//book[@year = 2003]/title",
                "//book[position() + 1 = last()]",
                "//book[not(child::cite)]",
                "//title | //cite",
                "count(//book) = 2",
                "concat('x', 'y')",
                "1 + 2",
            ] {
                // count() is rejected — skip it here, it is covered by the
                // rejection test below.
                if q.starts_with("count") {
                    continue;
                }
                agree(BOOKS, q, threads);
            }
        }
    }

    #[test]
    fn larger_document_parallel_equivalence() {
        let mut xml = String::from("<r>");
        for i in 0..200 {
            xml.push_str(&format!("<item idx=\"{i}\"><sub/>{}</item>", i % 7));
        }
        xml.push_str("</r>");
        let doc = parse_xml(&xml).unwrap();
        let q = parse_query("//item[child::sub and position() < 100]").unwrap();
        let seq = ParallelEvaluator::new(&doc, 1).evaluate(&q).unwrap();
        let par = ParallelEvaluator::new(&doc, 4).evaluate(&q).unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.expect_nodes().len(), 99);
    }

    #[test]
    fn rejects_queries_outside_the_parallel_fragment() {
        let doc = parse_xml(BOOKS).unwrap();
        for q in ["count(//book)", "//book[child::cite][1]"] {
            let query = parse_query(q).unwrap();
            let res = ParallelEvaluator::new(&doc, 2).evaluate(&query);
            assert!(res.is_err(), "{q} should be rejected");
        }
    }

    #[test]
    fn thread_count_is_clamped() {
        let doc = parse_xml(BOOKS).unwrap();
        assert_eq!(ParallelEvaluator::new(&doc, 0).threads(), 1);
        assert_eq!(ParallelEvaluator::new(&doc, 8).threads(), 8);
    }

    #[test]
    fn boolean_and_scalar_queries() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("boolean(//cite)").unwrap();
        let v = ParallelEvaluator::new(&doc, 4).evaluate(&q).unwrap();
        assert_eq!(v, Value::Boolean(true));
        let q = parse_query("2 * 3 + 1").unwrap();
        let v = ParallelEvaluator::new(&doc, 4).evaluate(&q).unwrap();
        assert_eq!(v, Value::Number(7.0));
    }
}
