//! Evaluation errors.

use std::fmt;
use xpeval_syntax::{Fragment, ParseError};

/// Error raised by the compiler and evaluators in this crate.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The query string did not parse.  `message` states the location in
    /// its own unit ("at byte N" for lexical errors, "at token N" for
    /// syntactic errors); `position` is that N — a byte offset or a token
    /// index respectively, as reported by [`xpeval_syntax::ParseError`] —
    /// so render diagnostics from `message`, not from `position` alone.
    Parse { position: usize, message: String },
    /// The query uses a function the engine does not implement.
    UnknownFunction { name: String },
    /// A function was called with the wrong number of arguments.
    WrongArity {
        name: String,
        expected: String,
        got: usize,
    },
    /// A value had the wrong type for the operation.
    TypeError { message: String },
    /// The selected evaluator only supports a fragment of XPath and the
    /// query lies outside it (e.g. the linear-time evaluator is only defined
    /// for Core XPath, the Singleton-Success procedure for pWF/pXPath plus
    /// bounded negation).
    UnsupportedFragment {
        /// The fragment the evaluator supports.
        supported: Fragment,
        /// Description of the offending construct.
        construct: String,
    },
    /// The query references a variable (`$name`) for which the evaluation
    /// call supplied no binding.  Raised eagerly by the bound entry points
    /// of [`crate::compile::CompiledQuery`] (before any document work) and
    /// lazily by evaluators reached without a
    /// [`Bindings`](crate::bindings::Bindings) value.
    UnboundVariable { name: String },
    /// Any other unsupported construct.
    Unsupported { message: String },
}

impl EvalError {
    pub(crate) fn type_error(message: impl Into<String>) -> Self {
        EvalError::TypeError {
            message: message.into(),
        }
    }

    pub(crate) fn unsupported(message: impl Into<String>) -> Self {
        EvalError::Unsupported {
            message: message.into(),
        }
    }

    pub(crate) fn fragment(supported: Fragment, construct: impl Into<String>) -> Self {
        EvalError::UnsupportedFragment {
            supported,
            construct: construct.into(),
        }
    }
}

impl From<ParseError> for EvalError {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::Lex(lex) => EvalError::Parse {
                position: lex.offset,
                message: format!("lexical error at byte {}: {}", lex.offset, lex.message),
            },
            ParseError::Syntax {
                token_index,
                message,
            } => EvalError::Parse {
                position: token_index,
                message: format!("at token {token_index}: {message}"),
            },
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse { message, .. } => {
                write!(f, "parse error {message}")
            }
            EvalError::UnknownFunction { name } => write!(f, "unknown function '{name}()'"),
            EvalError::WrongArity {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "function '{name}()' expects {expected} argument(s), got {got}"
                )
            }
            EvalError::TypeError { message } => write!(f, "type error: {message}"),
            EvalError::UnsupportedFragment {
                supported,
                construct,
            } => write!(
                f,
                "this evaluator supports only the {supported} fragment; query uses {construct}"
            ),
            EvalError::UnboundVariable { name } => write!(f, "unbound variable '${name}'"),
            EvalError::Unsupported { message } => write!(f, "unsupported: {message}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = EvalError::UnknownFunction {
            name: "frobnicate".into(),
        };
        assert!(e.to_string().contains("frobnicate"));
        let e = EvalError::WrongArity {
            name: "concat".into(),
            expected: "2+".into(),
            got: 1,
        };
        assert!(e.to_string().contains("concat"));
        let e = EvalError::type_error("boom");
        assert!(e.to_string().contains("boom"));
        let e = EvalError::fragment(Fragment::CoreXPath, "arithmetic");
        assert!(e.to_string().contains("Core XPath"));
        let e = EvalError::unsupported("variables");
        assert!(e.to_string().contains("variables"));
        let e = EvalError::UnboundVariable { name: "max".into() };
        assert_eq!(e.to_string(), "unbound variable '$max'");
        let e = EvalError::Parse {
            position: 3,
            message: "at token 3: expected ']'".into(),
        };
        assert!(e.to_string().contains("parse error at token 3"));
    }

    #[test]
    fn parse_errors_convert_with_their_position() {
        let lex = xpeval_syntax::parse_query("//a[§]").unwrap_err();
        let e = EvalError::from(lex);
        assert!(matches!(e, EvalError::Parse { .. }), "{e:?}");
        let syn = xpeval_syntax::parse_query("//a[").unwrap_err();
        let e = EvalError::from(syn);
        let EvalError::Parse { message, .. } = &e else {
            panic!("expected Parse, got {e:?}")
        };
        assert!(!message.is_empty());
    }
}
