//! Bounded LRU caches behind the engine: compiled plans and prepared
//! documents.
//!
//! Compilation (parse + classify + plan) is pure per-query work; an engine
//! serving repeated query strings should pay it once.  [`PlanCache`] is a
//! small least-recently-used map from source string to
//! [`Arc<CompiledQuery>`]; [`ShardedPlanCache`] spreads those entries over
//! up to [`PLAN_CACHE_SHARDS`] independently locked shards (selected by key
//! hash), so concurrent compilations on different shards never contend on
//! one mutex.  [`crate::Engine`] consults it on every
//! [`crate::Engine::compile`] / [`crate::Engine::evaluate_str`] call, and
//! its [`CacheStats`] make hits and misses observable — in aggregate and
//! per shard — so tests and benches can assert that a repeated query string
//! really skips re-parsing.
//!
//! [`DocumentCache`] is the same idea for the document side of the
//! pipeline: it memoizes [`PreparedDocument`] index construction per
//! document, keyed by a [`DocKey`] — the document's [`Arc`] address on the
//! legacy path (sound only because the cache keeps the document alive; see
//! [`DocKey`] for the address-reuse hazard), or a caller-assigned stable id
//! on the catalog path ([`DocumentCache::get_or_prepare_keyed`]), which
//! survives document replacement.
//!
//! Recency is tracked with a monotonic touch counter per entry; eviction
//! scans for the minimum.  That is O(capacity) per eviction, which is the
//! right trade-off for plan caches (tens to a few thousand entries, hit
//! paths that must stay allocation-free).

use crate::compile::CompiledQuery;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use xpeval_dom::{Document, PreparedDocument};
use xpeval_obs::{Field, FieldValue, MetricSource};

/// Maximum number of shards of a [`ShardedPlanCache`].  Small caches use a
/// single shard so capacity semantics stay exact; see
/// [`ShardedPlanCache::new`].
pub const PLAN_CACHE_SHARDS: usize = 8;

/// Per-shard counters of a [`ShardedPlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups this shard answered from its map.
    pub hits: u64,
    /// Lookups on this shard that fell through to compilation.
    pub misses: u64,
    /// Entries currently stored in this shard.
    pub len: usize,
}

/// Observable counters of a plan or document cache.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (no re-parse, no re-classification).
    pub hits: u64,
    /// Lookups that fell through to compilation.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum number of entries (0 = caching disabled).
    pub capacity: usize,
    /// Per-shard hit/miss/len counters, one entry per shard.  Empty for
    /// unsharded caches ([`PlanCache`], [`DocumentCache`]).
    pub per_shard: Vec<ShardStats>,
}

impl MetricSource for ShardStats {
    fn source_name(&self) -> &'static str {
        "plan_cache_shard"
    }

    fn fields(&self) -> Vec<Field> {
        vec![
            Field::new("hits", FieldValue::Counter(self.hits)),
            Field::new("misses", FieldValue::Counter(self.misses)),
            Field::new("len", FieldValue::Gauge(self.len as i64)),
        ]
    }
}

impl std::fmt::Display for ShardStats {
    /// One-line summary shared with [`MetricSource::summary_line`]:
    /// `hits 5, misses 2, len 3`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary_line())
    }
}

impl CacheStats {
    /// Fraction of lookups answered from the cache, in `0.0..=1.0`
    /// (0.0 when no lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl MetricSource for CacheStats {
    fn source_name(&self) -> &'static str {
        "plan_cache"
    }

    fn fields(&self) -> Vec<Field> {
        let mut fields = vec![
            Field::new(
                "hits",
                FieldValue::Ratio {
                    num: self.hits,
                    den: self.hits + self.misses,
                },
            ),
            Field::new(
                "len",
                FieldValue::Frac {
                    num: self.len as u64,
                    den: self.capacity as u64,
                },
            ),
            Field::new("evictions", FieldValue::Counter(self.evictions)),
        ];
        if self.per_shard.len() > 1 {
            fields.push(Field::new(
                "shards",
                FieldValue::Gauge(self.per_shard.len() as i64),
            ));
        }
        fields
    }
}

impl std::fmt::Display for CacheStats {
    /// One-line summary shared with [`MetricSource::summary_line`], e.g.
    /// `hits 9/10 (90.0%), len 1/128, evictions 0, shards 8`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary_line())
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CompiledQuery>,
    last_used: u64,
}

/// A bounded LRU map from query string to compiled plan.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<String, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans; 0 disables caching
    /// (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            entries: HashMap::with_capacity(capacity.min(1024)),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a plan, refreshing its recency on a hit.
    pub fn get(&mut self, source: &str) -> Option<Arc<CompiledQuery>> {
        self.tick += 1;
        match self.entries.get_mut(source) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a plan, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, source: String, plan: Arc<CompiledQuery>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&source) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            source,
            Entry {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
            per_shard: Vec::new(),
        }
    }

    /// Drops all cached plans (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A [`PlanCache`] split over independently locked shards selected by key
/// hash, so concurrent compile lookups on different keys proceed without
/// contending on a single mutex.
///
/// Sharding only engages when the capacity is large enough to split
/// meaningfully (at least two entries per shard); small caches keep a
/// single shard so the exact LRU/capacity semantics of [`PlanCache`] are
/// preserved.
#[derive(Debug)]
pub struct ShardedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
}

impl ShardedPlanCache {
    /// Creates a cache holding at most `capacity` plans in total,
    /// distributed (as evenly as possible) over the shards.
    pub fn new(capacity: usize) -> Self {
        let shard_count = if capacity >= 2 * PLAN_CACHE_SHARDS {
            PLAN_CACHE_SHARDS
        } else {
            1
        };
        let base = capacity / shard_count;
        let remainder = capacity % shard_count;
        let shards = (0..shard_count)
            .map(|i| Mutex::new(PlanCache::new(base + usize::from(i < remainder))))
            .collect();
        ShardedPlanCache { shards }
    }

    /// Number of shards in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, source: &str) -> &Mutex<PlanCache> {
        let mut hasher = DefaultHasher::new();
        source.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks up a plan in its key's shard, refreshing recency on a hit.
    pub fn get(&self, source: &str) -> Option<Arc<CompiledQuery>> {
        self.shard_for(source).lock().unwrap().get(source)
    }

    /// Stores a plan in its key's shard, evicting that shard's LRU entry
    /// when the shard is full.
    pub fn insert(&self, source: String, plan: Arc<CompiledQuery>) {
        self.shard_for(&source).lock().unwrap().insert(source, plan);
    }

    /// Aggregated counters plus the per-shard breakdown.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.len += s.len;
            total.capacity += s.capacity;
            total.per_shard.push(ShardStats {
                hits: s.hits,
                misses: s.misses,
                len: s.len,
            });
        }
        total
    }

    /// Drops every cached plan in every shard (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }
}

/// How a [`DocumentCache`] entry is identified.
///
/// The legacy [`Address`](DocKey::Address) keying identifies a document by
/// the address of its [`Arc`] allocation.  That is *sound* here only
/// because every cached entry holds its document alive (through the
/// `PreparedDocument`), so an address cannot be recycled by a new document
/// while its entry exists — but it is a footgun for everything above this
/// cache: the address is not a stable name.  Re-parsing the same XML gives
/// a different address (a guaranteed cold miss), and once an entry is
/// evicted or cleared the allocator is free to hand the *same address* to
/// an unrelated document, so any address a caller stashed outside the
/// cache's lifetime silently changes meaning.  Layers that need to name,
/// share or replace documents should key by a [`Stable`](DocKey::Stable)
/// external id instead — that is what the catalog's `DocId`s route through
/// ([`DocumentCache::get_or_prepare_keyed`]).
///
/// The address path is **deprecated for catalog-owned documents**: a
/// document that some stable key owns must never be re-cached by address
/// (two keys, two entries, and the address one silently dangles across a
/// catalog replacement).  Debug builds enforce this — an address-keyed
/// cache *hit* on a document a stable entry holds panics with a debug
/// assertion naming the fix (`Engine::prepare_keyed`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DocKey {
    /// The address of the document's [`Arc`] allocation (legacy path; see
    /// the address-reuse hazard above).
    Address(usize),
    /// A caller-assigned stable id, e.g. a catalog `DocId`.  Replacing the
    /// document behind a stable key rebuilds the entry in place.
    Stable(u64),
}

/// Memoizes [`PreparedDocument`] index construction per document — the
/// document-side analogue of the plan cache.
///
/// Entries are keyed by [`DocKey`]: either the address of the document's
/// [`Arc`] allocation (legacy; see the [`DocKey`] docs for the
/// address-reuse hazard) or a caller-assigned stable id (the catalog
/// path).
#[derive(Debug)]
pub struct DocumentCache {
    inner: Mutex<DocumentCacheInner>,
}

#[derive(Debug)]
struct DocumentCacheInner {
    capacity: usize,
    entries: HashMap<DocKey, DocumentEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug)]
struct DocumentEntry {
    prepared: Arc<PreparedDocument>,
    last_used: u64,
}

impl DocumentCacheInner {
    /// Makes room for `key`: evicts the least-recently-used entry when
    /// the cache is at capacity and `key` is not already stored (storing
    /// over an existing key does not grow the map, so it must not evict).
    /// The single eviction-policy site for every insert path.
    fn evict_if_full(&mut self, key: &DocKey) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
    }
}

impl DocumentCache {
    /// Creates a cache holding at most `capacity` prepared documents;
    /// 0 disables caching (every call prepares afresh).
    pub fn new(capacity: usize) -> Self {
        DocumentCache {
            inner: Mutex::new(DocumentCacheInner {
                capacity,
                entries: HashMap::with_capacity(capacity.min(64)),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Returns the prepared form of `doc`, building (and caching) it on
    /// first sight, keyed by the address of its [`Arc`] allocation.
    ///
    /// This is the legacy entry point: the address is only a usable key
    /// *inside* this cache (entries keep their documents alive, so a live
    /// key cannot be recycled) — see [`DocKey`] for why it is a hazard as a
    /// document name anywhere else.  Callers that manage named, replaceable
    /// documents should use [`DocumentCache::get_or_prepare_keyed`] with
    /// their own stable id.
    pub fn get_or_prepare(&self, doc: &Arc<Document>) -> Arc<PreparedDocument> {
        self.get_or_prepare_at(DocKey::Address(Arc::as_ptr(doc) as usize), doc)
    }

    /// Returns the prepared form of `doc` under a caller-assigned stable
    /// key (e.g. a catalog `DocId`).
    ///
    /// Unlike the address path, the key survives document replacement: when
    /// the entry under `key` holds a *different* document than `doc` (the
    /// caller swapped the document behind its id), the stale index is
    /// dropped and rebuilt for `doc` — a miss, not a stale hit.
    pub fn get_or_prepare_keyed(&self, key: u64, doc: &Arc<Document>) -> Arc<PreparedDocument> {
        self.get_or_prepare_at(DocKey::Stable(key), doc)
    }

    /// The shared get → build → insert path.
    ///
    /// The O(|D|) index construction happens **outside** the cache lock —
    /// same discipline as the plan cache's get → compile → insert — so
    /// concurrent preparations of unrelated documents never serialize.  Two
    /// threads racing on the *same* unseen document may both build; the
    /// first insert wins and both get a usable index.  Two threads racing a
    /// *replacement* under one stable key (different documents) both build
    /// and the last insert wins — which may not be the caller's notion of
    /// the winning replacement; callers that care (the catalog) re-publish
    /// the installed index via [`DocumentCache::insert_keyed`] inside
    /// their own critical section.
    fn get_or_prepare_at(&self, key: DocKey, doc: &Arc<Document>) -> Arc<PreparedDocument> {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            let same_doc = inner
                .entries
                .get(&key)
                .map(|entry| Arc::ptr_eq(entry.prepared.shared_document(), doc));
            match same_doc {
                Some(true) => {
                    // An address-keyed hit on a document some stable key
                    // also owns means a caller is naming a catalog-owned
                    // document by its Arc address — exactly the aliasing
                    // footgun stable keys exist to retire (the address
                    // stops meaning this document the moment the catalog
                    // replaces or drops it).  Reject it loudly in debug
                    // builds; the release fast path pays nothing.
                    #[cfg(debug_assertions)]
                    if matches!(key, DocKey::Address(_)) {
                        debug_assert!(
                            !inner
                                .entries
                                .iter()
                                .any(|(k, e)| matches!(k, DocKey::Stable(_))
                                    && Arc::ptr_eq(e.prepared.shared_document(), doc)),
                            "document cache: address-keyed hit on a document owned by a \
                             stable key — prepare catalog-owned documents through their \
                             stable id (Engine::prepare_keyed), not by Arc address"
                        );
                    }
                    let entry = inner.entries.get_mut(&key).expect("entry checked above");
                    entry.last_used = tick;
                    let prepared = Arc::clone(&entry.prepared);
                    inner.hits += 1;
                    return prepared;
                }
                Some(false) => {
                    // A stable key whose document was replaced: the stale
                    // index must not be served again.
                    inner.entries.remove(&key);
                }
                None => {}
            }
            inner.misses += 1;
        }

        let prepared = Arc::new(PreparedDocument::new(Arc::clone(doc)));

        let mut inner = self.inner.lock().unwrap();
        if inner.capacity == 0 {
            return prepared;
        }
        if let Some(entry) = inner.entries.get(&key) {
            if Arc::ptr_eq(entry.prepared.shared_document(), doc) {
                // Lost the build race: keep the entry that is already
                // shared.
                return Arc::clone(&entry.prepared);
            }
            // Raced with a replacement under the same stable key: fall
            // through and overwrite with the document we were asked for.
        }
        inner.evict_if_full(&key);
        let tick = inner.tick;
        inner.entries.insert(
            key,
            DocumentEntry {
                prepared: Arc::clone(&prepared),
                last_used: tick,
            },
        );
        prepared
    }

    /// Stores an already-prepared document under a stable key,
    /// unconditionally replacing whatever entry the key held.  O(1); no
    /// index is built.
    ///
    /// This is the *publish* half of the stable-key protocol: a caller
    /// that builds via [`DocumentCache::get_or_prepare_keyed`] outside its
    /// own lock and then installs the result under that lock can make the
    /// cache agree with its installation order by calling this inside the
    /// critical section — two racing replacements of one key then leave
    /// the cache holding whichever index the *last installer* published,
    /// never a superseded one.
    pub fn insert_keyed(&self, key: u64, prepared: &Arc<PreparedDocument>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.capacity == 0 {
            return;
        }
        let key = DocKey::Stable(key);
        inner.tick += 1;
        let tick = inner.tick;
        inner.evict_if_full(&key);
        inner.entries.insert(
            key,
            DocumentEntry {
                prepared: Arc::clone(prepared),
                last_used: tick,
            },
        );
    }

    /// Drops the entry under a stable key, if any; returns whether one
    /// was removed.  Callers that retire their stable keys (a catalog
    /// removing or evicting a document) should call this so dead indexes
    /// do not stay pinned in the cache until LRU pressure finds them.
    pub fn remove_keyed(&self, key: u64) -> bool {
        self.inner
            .lock()
            .unwrap()
            .entries
            .remove(&DocKey::Stable(key))
            .is_some()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.entries.len(),
            capacity: inner.capacity,
            per_shard: Vec::new(),
        }
    }

    /// Drops every cached prepared document (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().unwrap().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(src: &str) -> Arc<CompiledQuery> {
        Arc::new(CompiledQuery::compile(src).unwrap())
    }

    #[test]
    fn hit_after_insert() {
        let mut c = PlanCache::new(4);
        assert!(c.get("//a").is_none());
        c.insert("//a".into(), plan("//a"));
        let hit = c.get("//a").unwrap();
        assert_eq!(hit.source(), "//a");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let mut c = PlanCache::new(2);
        c.insert("//a".into(), plan("//a"));
        c.insert("//b".into(), plan("//b"));
        // Touch //a so //b becomes the LRU victim.
        assert!(c.get("//a").is_some());
        c.insert("//c".into(), plan("//c"));
        assert!(c.get("//b").is_none(), "//b should have been evicted");
        assert!(c.get("//a").is_some());
        assert!(c.get("//c").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        c.insert("//a".into(), plan("//a"));
        assert!(c.get("//a").is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = PlanCache::new(2);
        c.insert("//a".into(), plan("//a"));
        c.insert("//b".into(), plan("//b"));
        c.insert("//a".into(), plan("//a"));
        assert_eq!(c.stats().evictions, 0);
        assert!(c.get("//b").is_some());
    }

    #[test]
    fn small_capacities_use_a_single_shard() {
        let c = ShardedPlanCache::new(4);
        assert_eq!(c.shard_count(), 1);
        let s = c.stats();
        assert_eq!(s.capacity, 4);
        assert_eq!(s.per_shard.len(), 1);
    }

    #[test]
    fn large_capacities_shard_and_report_per_shard_counts() {
        let c = ShardedPlanCache::new(128);
        assert_eq!(c.shard_count(), PLAN_CACHE_SHARDS);
        let queries: Vec<String> = (0..40).map(|i| format!("//a[child::t{i}]")).collect();
        for q in &queries {
            assert!(c.get(q).is_none());
            c.insert(q.clone(), plan(q));
        }
        for q in &queries {
            assert!(c.get(q).is_some(), "{q}");
        }
        let s = c.stats();
        assert_eq!(s.capacity, 128);
        assert_eq!(s.misses, 40);
        assert_eq!(s.hits, 40);
        assert_eq!(s.len, 40);
        assert_eq!(s.per_shard.len(), PLAN_CACHE_SHARDS);
        // The aggregate is exactly the sum of the shards, and the keys
        // spread over more than one shard.
        assert_eq!(s.per_shard.iter().map(|p| p.hits).sum::<u64>(), s.hits);
        assert_eq!(s.per_shard.iter().map(|p| p.misses).sum::<u64>(), s.misses);
        assert_eq!(s.per_shard.iter().map(|p| p.len).sum::<usize>(), s.len);
        assert!(s.per_shard.iter().filter(|p| p.len > 0).count() > 1);
    }

    #[test]
    fn sharded_cache_supports_concurrent_compiles() {
        let c = std::sync::Arc::new(ShardedPlanCache::new(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..16 {
                        let q = format!("//t{t}[child::x{i}]");
                        if c.get(&q).is_none() {
                            c.insert(q.clone(), plan(&q));
                        }
                        assert!(c.get(&q).is_some());
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.misses, 64);
        assert_eq!(s.hits, 64);
        // Keys hash unevenly, so a full cache may evict within hot shards;
        // every entry is either stored or was evicted.
        assert_eq!(s.len as u64 + s.evictions, 64);
    }

    #[test]
    fn document_cache_memoizes_preparation_per_document() {
        use xpeval_dom::parse_xml;
        let cache = DocumentCache::new(2);
        let d1 = Arc::new(parse_xml("<a><b/></a>").unwrap());
        let d2 = Arc::new(parse_xml("<c/>").unwrap());
        let p1 = cache.get_or_prepare(&d1);
        let p1_again = cache.get_or_prepare(&d1);
        assert!(Arc::ptr_eq(&p1, &p1_again));
        cache.get_or_prepare(&d2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 2, 2));
        // A third document evicts the least-recently-used entry.
        let d3 = Arc::new(parse_xml("<d/>").unwrap());
        cache.get_or_prepare(&d3);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn stable_keys_survive_replacement_with_a_rebuild() {
        use xpeval_dom::parse_xml;
        let cache = DocumentCache::new(4);
        let v1 = Arc::new(parse_xml("<a><b/></a>").unwrap());
        let p1 = cache.get_or_prepare_keyed(7, &v1);
        let p1_again = cache.get_or_prepare_keyed(7, &v1);
        assert!(Arc::ptr_eq(&p1, &p1_again));
        assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));

        // Replacing the document behind the key rebuilds instead of
        // serving the stale index.
        let v2 = Arc::new(parse_xml("<a><b/><b/></a>").unwrap());
        let p2 = cache.get_or_prepare_keyed(7, &v2);
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert!(Arc::ptr_eq(p2.shared_document(), &v2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 2, 1));
        // The new document is now the hit.
        let p2_again = cache.get_or_prepare_keyed(7, &v2);
        assert!(Arc::ptr_eq(&p2, &p2_again));

        // Stable and address keys never collide: preparing v2 by address
        // is its own entry.
        cache.get_or_prepare(&v2);
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "address-keyed hit")]
    fn address_keyed_hits_on_stable_owned_documents_are_rejected_in_debug() {
        use xpeval_dom::parse_xml;
        let cache = DocumentCache::new(4);
        let doc = Arc::new(parse_xml("<r/>").unwrap());
        // The catalog path owns this document under a stable key...
        cache.get_or_prepare_keyed(9, &doc);
        // ...so naming it by Arc address is the deprecated footgun: the
        // first call builds the duplicate entry (a miss), the second is
        // the address-keyed *hit* the debug assertion rejects.
        cache.get_or_prepare(&doc);
        cache.get_or_prepare(&doc);
    }

    #[test]
    fn zero_capacity_document_cache_prepares_fresh() {
        use xpeval_dom::parse_xml;
        let cache = DocumentCache::new(0);
        let d = Arc::new(parse_xml("<a/>").unwrap());
        let p1 = cache.get_or_prepare(&d);
        let p2 = cache.get_or_prepare(&d);
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.stats().len, 0);
    }
}
