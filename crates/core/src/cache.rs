//! Bounded LRU cache of compiled query plans, keyed by query string.
//!
//! Compilation (parse + classify + plan) is pure per-query work; an engine
//! serving repeated query strings should pay it once.  [`PlanCache`] is a
//! small least-recently-used map from source string to
//! [`Arc<CompiledQuery>`]; [`crate::Engine`] consults it on every
//! [`crate::Engine::compile`] / [`crate::Engine::evaluate_str`] call, and
//! its [`CacheStats`] make hits and misses observable so tests and benches
//! can assert that a repeated query string really skips re-parsing.
//!
//! Recency is tracked with a monotonic touch counter per entry; eviction
//! scans for the minimum.  That is O(capacity) per eviction, which is the
//! right trade-off for plan caches (tens to a few thousand entries, hit
//! paths that must stay allocation-free).

use crate::compile::CompiledQuery;
use std::collections::HashMap;
use std::sync::Arc;

/// Observable counters of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (no re-parse, no re-classification).
    pub hits: u64,
    /// Lookups that fell through to compilation.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum number of entries (0 = caching disabled).
    pub capacity: usize,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CompiledQuery>,
    last_used: u64,
}

/// A bounded LRU map from query string to compiled plan.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<String, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans; 0 disables caching
    /// (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            entries: HashMap::with_capacity(capacity.min(1024)),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a plan, refreshing its recency on a hit.
    pub fn get(&mut self, source: &str) -> Option<Arc<CompiledQuery>> {
        self.tick += 1;
        match self.entries.get_mut(source) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a plan, evicting the least-recently-used entry when full.
    pub fn insert(&mut self, source: String, plan: Arc<CompiledQuery>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&source) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            source,
            Entry {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Drops all cached plans (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(src: &str) -> Arc<CompiledQuery> {
        Arc::new(CompiledQuery::compile(src).unwrap())
    }

    #[test]
    fn hit_after_insert() {
        let mut c = PlanCache::new(4);
        assert!(c.get("//a").is_none());
        c.insert("//a".into(), plan("//a"));
        let hit = c.get("//a").unwrap();
        assert_eq!(hit.source(), "//a");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let mut c = PlanCache::new(2);
        c.insert("//a".into(), plan("//a"));
        c.insert("//b".into(), plan("//b"));
        // Touch //a so //b becomes the LRU victim.
        assert!(c.get("//a").is_some());
        c.insert("//c".into(), plan("//c"));
        assert!(c.get("//b").is_none(), "//b should have been evicted");
        assert!(c.get("//a").is_some());
        assert!(c.get("//c").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        c.insert("//a".into(), plan("//a"));
        assert!(c.get("//a").is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut c = PlanCache::new(2);
        c.insert("//a".into(), plan("//a"));
        c.insert("//b".into(), plan("//b"));
        c.insert("//a".into(), plan("//a"));
        assert_eq!(c.stats().evictions, 0);
        assert!(c.get("//b").is_some());
    }
}
