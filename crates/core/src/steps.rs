//! Shared location-step semantics.
//!
//! Both the naive evaluator and the context-value-table evaluator apply
//! location steps through [`apply_step`], which implements the XPath 1.0
//! semantics of a single step `axis::test[p1]...[pk]` relative to one
//! context node: candidates are produced by the axis in document order,
//! proximity positions are assigned (reverse axes count backwards), and each
//! predicate filters the candidate list in turn, re-deriving positions after
//! every filter exactly as the recommendation prescribes.
//!
//! Candidates come from an [`AxisSource`], so a [`xpeval_dom::Document`]
//! walks the tree while a [`xpeval_dom::PreparedDocument`] answers name
//! tests on the child/descendant/following/preceding axes from its indexes.
//! A leading positional predicate on a child step (`child::t[k]`,
//! `child::t[last()]` and the `position() =` spellings) is recognized here
//! and answered through [`AxisSource::positional_child_step`], so every
//! evaluator built on [`apply_step`] picks the indexed lookup up without
//! per-evaluator special cases.

use crate::context::Context;
use crate::error::EvalError;
use crate::value::Value;
use xpeval_dom::{Axis, AxisSource, NodeId, PositionalPick};
use xpeval_syntax::{Expr, RelOp, Step};

/// Applies one location step from a single context node.
///
/// `eval_pred` is the callback used to evaluate predicate expressions; the
/// naive evaluator passes plain recursion, the DP evaluator passes its
/// memoizing recursion.  Returns the selected nodes in document order.
pub fn apply_step<S, F>(
    src: &S,
    from: NodeId,
    step: &Step,
    eval_pred: &mut F,
) -> Result<Vec<NodeId>, EvalError>
where
    S: AxisSource + ?Sized,
    F: FnMut(&Expr, Context) -> Result<Value, EvalError>,
{
    let mut candidates: Vec<NodeId>;
    let mut remaining: &[Expr] = &step.predicates;
    // Indexed fast path: a child step whose first predicate is positional
    // selects at most one node, and an index can often find it without
    // enumerating the axis or evaluating the predicate per candidate.
    if let Some((pick, rest)) = leading_positional_pick(step) {
        match src.positional_child_step(from, &step.node_test, pick) {
            Some(picked) => {
                candidates = picked;
                remaining = rest;
            }
            None => candidates = src.axis_step(from, step.axis, &step.node_test),
        }
    } else {
        // Candidates in document order.
        candidates = src.axis_step(from, step.axis, &step.node_test);
    }
    for pred in remaining {
        candidates = filter_by_predicate(&candidates, step.axis.is_reverse(), pred, eval_pred)?;
    }
    Ok(candidates)
}

/// Recognizes a step of the form `child::t[positional]...`: returns the
/// positional pick of the first predicate and the remaining predicates.
///
/// Only the child axis qualifies (it is a forward axis, so proximity
/// positions count in document order exactly like the candidate lists the
/// indexes store).  The recognized spellings are the ones whose XPath §2.4
/// truth value depends on nothing but the proximity position: a positive
/// integer literal `[k]`, `[last()]`, `[position() = k]` and
/// `[position() = last()]` (either operand order).
fn leading_positional_pick(step: &Step) -> Option<(PositionalPick, &[Expr])> {
    if step.axis != Axis::Child {
        return None;
    }
    let first = step.predicates.first()?;
    positional_pick(first).map(|pick| (pick, &step.predicates[1..]))
}

/// The [`PositionalPick`] a predicate expression reduces to, if any.
pub(crate) fn positional_pick(pred: &Expr) -> Option<PositionalPick> {
    match pred {
        Expr::Number(k) => literal_pick(*k),
        Expr::FunctionCall { name, args } if name == "last" && args.is_empty() => {
            Some(PositionalPick::Last)
        }
        Expr::Relational {
            op: RelOp::Eq,
            left,
            right,
        } => match (&**left, &**right) {
            (l, r) if is_position_call(l) => equality_pick(r),
            (l, r) if is_position_call(r) => equality_pick(l),
            _ => None,
        },
        _ => None,
    }
}

/// `position() = e`: the pick for the right-hand side `e`.
fn equality_pick(e: &Expr) -> Option<PositionalPick> {
    match e {
        Expr::Number(k) => literal_pick(*k),
        Expr::FunctionCall { name, args } if name == "last" && args.is_empty() => {
            Some(PositionalPick::Last)
        }
        _ => None,
    }
}

/// A numeric literal as a positional pick.  Non-positive and non-integer
/// literals never equal a proximity position, which `Nth(0)` encodes (every
/// index answers it with the empty selection).
fn literal_pick(k: f64) -> Option<PositionalPick> {
    if k >= 1.0 && k.fract() == 0.0 && k <= usize::MAX as f64 {
        Some(PositionalPick::Nth(k as usize))
    } else {
        Some(PositionalPick::Nth(0))
    }
}

fn is_position_call(e: &Expr) -> bool {
    matches!(e, Expr::FunctionCall { name, args } if name == "position" && args.is_empty())
}

/// Upper bound on the size of a node-set query's result, read off the tag
/// index: a path ending in `axis::tag` (element-principal axis) can select
/// at most the elements carrying that tag, and a union at most the sum of
/// its arms.  `None` when the result is not name-bounded
/// ([`final_step_tag_names`] — the single home of that condition) or the
/// source has no tag index — the unified "don't know" answer.
pub fn result_size_bound<S: AxisSource + ?Sized>(expr: &Expr, src: &S) -> Option<usize> {
    final_step_tag_names(expr)?
        .iter()
        .try_fold(0usize, |acc, name| {
            Some(acc + src.elements_named(name)?.len())
        })
}

/// The tag names behind [`result_size_bound`], without a document: the
/// name tests of a path's final step (one per union arm), under exactly the
/// conditions that make the tag lists a sound result bound — the final
/// step's principal node kind is element and its node test is a name.
/// `None` when the query's result is not name-bounded.
///
/// This is the document-independent half of the bound: resolve the returned
/// names against a concrete document's tag index once (e.g. to
/// [`xpeval_dom::TagId`]s in a catalog plan artifact) and the per-document
/// half becomes id-indexed lookups.
pub fn final_step_tag_names(expr: &Expr) -> Option<Vec<&str>> {
    fn collect<'e>(expr: &'e Expr, out: &mut Vec<&'e str>) -> Option<()> {
        match expr {
            Expr::Path(path) => {
                let last = path.steps.last()?;
                if last.axis.principal_is_attribute() {
                    return None;
                }
                match &last.node_test {
                    xpeval_dom::NodeTest::Name(name)
                    | xpeval_dom::NodeTest::Resolved { name, .. } => {
                        out.push(name);
                        Some(())
                    }
                    _ => None,
                }
            }
            Expr::Union(a, b) => {
                collect(a, out)?;
                collect(b, out)
            }
            _ => None,
        }
    }
    let mut out = Vec::new();
    collect(expr, &mut out)?;
    Some(out)
}

/// Resolves every *name* test in `expr` against `src`'s tag index, in
/// place: `Name("a")` becomes `Resolved { name: "a", id: tag_id }` so that
/// evaluation looks elements up by interned [`xpeval_dom::TagId`] instead of
/// hashing the string at every step.  A name absent from the document
/// resolves to `id: None` (indexed axes then produce the empty set without
/// touching the index at all).
///
/// Idempotent and source-correct: already-resolved tests are re-resolved,
/// and resolving against a source without a tag index reverts them to plain
/// `Name` tests.  Attribute-principal steps are left alone — the tag index
/// covers elements only.
pub fn resolve_name_tests<S: AxisSource + ?Sized>(expr: &mut Expr, src: &S) {
    use xpeval_dom::{NodeTest, TagResolution};

    fn resolve_step<S: AxisSource + ?Sized>(step: &mut Step, src: &S) {
        if !step.axis.principal_is_attribute() {
            let resolution = match &step.node_test {
                NodeTest::Name(name) | NodeTest::Resolved { name, .. } => {
                    Some(src.resolve_tag(name))
                }
                _ => None,
            };
            match resolution {
                Some(TagResolution::NoIndex) => {
                    // No index to resolve against: make sure no stale id
                    // from a previous source survives.
                    if let NodeTest::Resolved { name, .. } = &mut step.node_test {
                        step.node_test = NodeTest::Name(std::mem::take(name));
                    }
                }
                Some(res) => {
                    let id = match res {
                        TagResolution::Id(id) => Some(id),
                        _ => None,
                    };
                    let name = match &mut step.node_test {
                        NodeTest::Name(name) | NodeTest::Resolved { name, .. } => {
                            std::mem::take(name)
                        }
                        _ => unreachable!("resolution is only Some for name tests"),
                    };
                    step.node_test = NodeTest::Resolved { name, id };
                }
                None => {}
            }
        }
        for pred in &mut step.predicates {
            walk(pred, src);
        }
    }

    fn walk<S: AxisSource + ?Sized>(expr: &mut Expr, src: &S) {
        match expr {
            Expr::Path(path) => {
                for step in &mut path.steps {
                    resolve_step(step, src);
                }
            }
            Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b)
            | Expr::Or(a, b)
            | Expr::And(a, b)
            | Expr::Relational {
                left: a, right: b, ..
            }
            | Expr::NodeCompare {
                left: a, right: b, ..
            }
            | Expr::Arithmetic {
                left: a, right: b, ..
            } => {
                walk(a, src);
                walk(b, src);
            }
            Expr::Not(e) | Expr::Neg(e) => walk(e, src),
            Expr::FunctionCall { args, .. } => {
                for arg in args {
                    walk(arg, src);
                }
            }
            Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => {}
        }
    }

    walk(expr, src);
}

/// The candidate list behind [`result_size_bound`]: every node the query
/// could possibly select, in document order.  `None` under the same
/// conditions (again via [`final_step_tag_names`]).  Evaluators that
/// recover a node-set result by deciding membership per candidate
/// (Singleton-Success, the parallel loop) iterate this list instead of the
/// whole document.
pub fn result_candidates<S: AxisSource + ?Sized>(expr: &Expr, src: &S) -> Option<Vec<NodeId>> {
    let names = final_step_tag_names(expr)?;
    let mut out = Vec::new();
    for name in names {
        out.extend_from_slice(src.elements_named(name)?);
    }
    src.document().sort_document_order(&mut out);
    out.dedup();
    Some(out)
}

/// Filters a candidate list by one predicate, assigning proximity positions.
pub fn filter_by_predicate<F>(
    candidates: &[NodeId],
    reverse_axis: bool,
    pred: &Expr,
    eval_pred: &mut F,
) -> Result<Vec<NodeId>, EvalError>
where
    F: FnMut(&Expr, Context) -> Result<Value, EvalError>,
{
    let size = candidates.len();
    let mut kept = Vec::with_capacity(size);
    for (idx, &node) in candidates.iter().enumerate() {
        // Proximity position: 1-based, counted from the far end for reverse
        // axes (XPath 1.0 §2.4).
        let position = if reverse_axis { size - idx } else { idx + 1 };
        let ctx = Context::new(node, position, size);
        let value = eval_pred(pred, ctx)?;
        if predicate_holds(&value, position) {
            kept.push(node);
        }
    }
    Ok(kept)
}

/// The predicate truth rule of XPath 1.0 §2.4: a number predicate holds when
/// it equals the proximity position; every other value is converted to a
/// boolean.
pub fn predicate_holds(value: &Value, position: usize) -> bool {
    match value {
        Value::Number(n) => *n == position as f64,
        other => other.to_boolean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::{parse_xml, Axis, Document, NodeTest};
    use xpeval_syntax::parse_query;

    fn doc() -> Document {
        parse_xml("<r><a>1</a><a>2</a><a>3</a><b/></r>").unwrap()
    }

    /// A predicate evaluator good enough for these unit tests: numbers,
    /// position() and last() only.
    fn tiny_eval(expr: &Expr, ctx: Context) -> Result<Value, EvalError> {
        Ok(match expr {
            Expr::Number(n) => Value::Number(*n),
            Expr::FunctionCall { name, .. } if name == "position" => {
                Value::Number(ctx.position as f64)
            }
            Expr::FunctionCall { name, .. } if name == "last" => Value::Number(ctx.size as f64),
            Expr::Relational { op, left, right } => {
                let l = tiny_eval(left, ctx)?;
                let r = tiny_eval(right, ctx)?;
                Value::Boolean(op.apply(l.to_number(&doc()), r.to_number(&doc())))
            }
            _ => Value::Boolean(true),
        })
    }

    #[test]
    fn numeric_predicate_selects_by_position() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        let step = match parse_query("child::a[2]").unwrap() {
            Expr::Path(p) => p.steps[0].clone(),
            _ => unreachable!(),
        };
        let out = apply_step(&d, r, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "2");
    }

    #[test]
    fn position_counts_backwards_on_reverse_axes() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        let b = d.last_child(r).unwrap();
        // preceding-sibling::a[1] from <b/> is the *nearest* preceding <a>,
        // i.e. the one with string value "3".
        let step = Step::with_predicate(
            Axis::PrecedingSibling,
            NodeTest::name("a"),
            Expr::Number(1.0),
        );
        let out = apply_step(&d, b, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "3");
        // ... and the result is still reported in document order.
        let step = Step::new(Axis::PrecedingSibling, NodeTest::name("a"));
        let out = apply_step(&d, b, &step, &mut tiny_eval).unwrap();
        let values: Vec<String> = out.iter().map(|&n| d.string_value(n)).collect();
        assert_eq!(values, vec!["1", "2", "3"]);
    }

    #[test]
    fn predicate_sequences_rederive_positions() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        // child::a[position() >= 2][1] — first filter keeps {2,3}, second
        // keeps the first of the remaining list, i.e. "2".
        let q = parse_query("child::a[position() >= 2][1]").unwrap();
        let step = match q {
            Expr::Path(p) => p.steps[0].clone(),
            _ => unreachable!(),
        };
        let out = apply_step(&d, r, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "2");
    }

    #[test]
    fn last_refers_to_candidate_count() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        let q = parse_query("child::a[position() = last()]").unwrap();
        let step = match q {
            Expr::Path(p) => p.steps[0].clone(),
            _ => unreachable!(),
        };
        let out = apply_step(&d, r, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "3");
    }

    #[test]
    fn positional_pick_recognition() {
        use xpeval_dom::PositionalPick::*;
        let cases = [
            ("child::a[2]", Some(Nth(2))),
            ("child::a[last()]", Some(Last)),
            ("child::a[position() = 3]", Some(Nth(3))),
            ("child::a[3 = position()]", Some(Nth(3))),
            ("child::a[position() = last()]", Some(Last)),
            ("child::a[0.5]", Some(Nth(0))),
            ("child::a[position() >= 2]", None),
            ("child::a[last() = 3]", None),
            ("descendant::a[2]", None),
            ("preceding-sibling::a[1]", None),
        ];
        for (src, expected) in cases {
            let step = match parse_query(src).unwrap() {
                Expr::Path(p) => p.steps[0].clone(),
                _ => unreachable!(),
            };
            assert_eq!(
                leading_positional_pick(&step).map(|(p, _)| p),
                expected,
                "{src}"
            );
        }
    }

    #[test]
    fn positional_fast_path_agrees_with_filtering() {
        let d = doc();
        let prepared = xpeval_dom::PreparedDocument::new(d.clone());
        let r = d.first_child(d.root()).unwrap();
        for q in [
            "child::a[1]",
            "child::a[2]",
            "child::a[3]",
            "child::a[4]",
            "child::a[last()]",
            "child::a[position() = last()]",
            "child::*[2]",
            "child::node()[last()]",
            "child::a[0.5]",
            "child::a[last()][1]",
        ] {
            let step = match parse_query(q).unwrap() {
                Expr::Path(p) => p.steps[0].clone(),
                _ => unreachable!(),
            };
            let plain = apply_step(&d, r, &step, &mut tiny_eval).unwrap();
            let fast = apply_step(&prepared, r, &step, &mut tiny_eval).unwrap();
            assert_eq!(plain, fast, "{q}");
        }
    }

    #[test]
    fn positional_fast_path_skips_predicate_evaluation() {
        let d = doc();
        let prepared = xpeval_dom::PreparedDocument::new(d.clone());
        let r = d.first_child(d.root()).unwrap();
        let step = match parse_query("child::a[2]").unwrap() {
            Expr::Path(p) => p.steps[0].clone(),
            _ => unreachable!(),
        };
        let mut calls = 0usize;
        let mut counting = |e: &Expr, ctx: Context| {
            calls += 1;
            tiny_eval(e, ctx)
        };
        let out = apply_step(&prepared, r, &step, &mut counting).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "2");
        assert_eq!(calls, 0, "index answered without predicate evaluation");
    }

    #[test]
    fn predicate_truth_rule() {
        assert!(predicate_holds(&Value::Number(3.0), 3));
        assert!(!predicate_holds(&Value::Number(3.0), 2));
        assert!(predicate_holds(&Value::Boolean(true), 99));
        assert!(!predicate_holds(&Value::empty(), 1));
        assert!(predicate_holds(&Value::Str("x".into()), 1));
    }

    #[test]
    fn resolve_name_tests_interns_reverts_and_marks_absent() {
        let d = doc();
        let prepared = xpeval_dom::PreparedDocument::new(d);
        let mut expr =
            parse_query("/r/a[child::b]/nosuch | count(descendant::a) = attribute::a").unwrap();
        resolve_name_tests(&mut expr, &prepared);
        // Collect every (name, id) pair of resolved tests.
        fn resolved(expr: &Expr, out: &mut Vec<(String, bool)>) {
            match expr {
                Expr::Path(p) => {
                    for s in &p.steps {
                        if let NodeTest::Resolved { name, id } = &s.node_test {
                            out.push((name.clone(), id.is_some()));
                        }
                        for pred in &s.predicates {
                            resolved(pred, out);
                        }
                    }
                }
                Expr::Union(a, b)
                | Expr::Relational {
                    left: a, right: b, ..
                } => {
                    resolved(a, out);
                    resolved(b, out);
                }
                Expr::FunctionCall { args, .. } => {
                    for a in args {
                        resolved(a, out);
                    }
                }
                _ => {}
            }
        }
        let mut seen = Vec::new();
        resolved(&expr, &mut seen);
        // r, a, the predicate's b, nosuch and the count() argument's a are
        // resolved; the attribute-principal step stays a plain name test.
        assert_eq!(
            seen,
            vec![
                ("r".to_string(), true),
                ("a".to_string(), true),
                ("b".to_string(), true),
                ("nosuch".to_string(), false),
                ("a".to_string(), true),
            ]
        );
        // Resolving against an unindexed source reverts to plain names.
        let plain = doc();
        resolve_name_tests(&mut expr, &plain);
        let mut seen = Vec::new();
        resolved(&expr, &mut seen);
        assert!(seen.is_empty(), "no Resolved tests may survive: {seen:?}");
    }

    #[test]
    fn specialized_plans_evaluate_like_the_original() {
        let d = parse_xml("<r><a><b/></a><a/><c><b/></c></r>").unwrap();
        let prepared = xpeval_dom::PreparedDocument::new(d);
        for q in [
            "/r/a/b",
            "descendant::b",
            "//a[child::b]",
            "count(//b)",
            "//a | //c",
            "//nosuch",
        ] {
            let compiled = crate::CompiledQuery::compile(q).unwrap();
            let specialized = compiled.specialize_for_source(&prepared);
            assert_eq!(
                compiled.run_prepared(&prepared).unwrap().value,
                specialized.run_prepared(&prepared).unwrap().value,
                "{q}"
            );
        }
    }
}
