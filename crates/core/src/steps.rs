//! Shared location-step semantics.
//!
//! Both the naive evaluator and the context-value-table evaluator apply
//! location steps through [`apply_step`], which implements the XPath 1.0
//! semantics of a single step `axis::test[p1]...[pk]` relative to one
//! context node: candidates are produced by the axis in document order,
//! proximity positions are assigned (reverse axes count backwards), and each
//! predicate filters the candidate list in turn, re-deriving positions after
//! every filter exactly as the recommendation prescribes.
//!
//! Candidates come from an [`AxisSource`], so a [`xpeval_dom::Document`]
//! walks the tree while a [`xpeval_dom::PreparedDocument`] answers
//! descendant name tests from its indexes.

use crate::context::Context;
use crate::error::EvalError;
use crate::value::Value;
use xpeval_dom::{AxisSource, NodeId};
use xpeval_syntax::{Expr, Step};

/// Applies one location step from a single context node.
///
/// `eval_pred` is the callback used to evaluate predicate expressions; the
/// naive evaluator passes plain recursion, the DP evaluator passes its
/// memoizing recursion.  Returns the selected nodes in document order.
pub fn apply_step<S, F>(
    src: &S,
    from: NodeId,
    step: &Step,
    eval_pred: &mut F,
) -> Result<Vec<NodeId>, EvalError>
where
    S: AxisSource + ?Sized,
    F: FnMut(&Expr, Context) -> Result<Value, EvalError>,
{
    // Candidates in document order.
    let mut candidates: Vec<NodeId> = src.axis_step(from, step.axis, &step.node_test);
    for pred in &step.predicates {
        candidates = filter_by_predicate(&candidates, step.axis.is_reverse(), pred, eval_pred)?;
    }
    Ok(candidates)
}

/// Filters a candidate list by one predicate, assigning proximity positions.
pub fn filter_by_predicate<F>(
    candidates: &[NodeId],
    reverse_axis: bool,
    pred: &Expr,
    eval_pred: &mut F,
) -> Result<Vec<NodeId>, EvalError>
where
    F: FnMut(&Expr, Context) -> Result<Value, EvalError>,
{
    let size = candidates.len();
    let mut kept = Vec::with_capacity(size);
    for (idx, &node) in candidates.iter().enumerate() {
        // Proximity position: 1-based, counted from the far end for reverse
        // axes (XPath 1.0 §2.4).
        let position = if reverse_axis { size - idx } else { idx + 1 };
        let ctx = Context::new(node, position, size);
        let value = eval_pred(pred, ctx)?;
        if predicate_holds(&value, position) {
            kept.push(node);
        }
    }
    Ok(kept)
}

/// The predicate truth rule of XPath 1.0 §2.4: a number predicate holds when
/// it equals the proximity position; every other value is converted to a
/// boolean.
pub fn predicate_holds(value: &Value, position: usize) -> bool {
    match value {
        Value::Number(n) => *n == position as f64,
        other => other.to_boolean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::{parse_xml, Axis, Document, NodeTest};
    use xpeval_syntax::parse_query;

    fn doc() -> Document {
        parse_xml("<r><a>1</a><a>2</a><a>3</a><b/></r>").unwrap()
    }

    /// A predicate evaluator good enough for these unit tests: numbers,
    /// position() and last() only.
    fn tiny_eval(expr: &Expr, ctx: Context) -> Result<Value, EvalError> {
        Ok(match expr {
            Expr::Number(n) => Value::Number(*n),
            Expr::FunctionCall { name, .. } if name == "position" => {
                Value::Number(ctx.position as f64)
            }
            Expr::FunctionCall { name, .. } if name == "last" => Value::Number(ctx.size as f64),
            Expr::Relational { op, left, right } => {
                let l = tiny_eval(left, ctx)?;
                let r = tiny_eval(right, ctx)?;
                Value::Boolean(op.apply(l.to_number(&doc()), r.to_number(&doc())))
            }
            _ => Value::Boolean(true),
        })
    }

    #[test]
    fn numeric_predicate_selects_by_position() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        let step = match parse_query("child::a[2]").unwrap() {
            Expr::Path(p) => p.steps[0].clone(),
            _ => unreachable!(),
        };
        let out = apply_step(&d, r, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "2");
    }

    #[test]
    fn position_counts_backwards_on_reverse_axes() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        let b = d.last_child(r).unwrap();
        // preceding-sibling::a[1] from <b/> is the *nearest* preceding <a>,
        // i.e. the one with string value "3".
        let step = Step::with_predicate(
            Axis::PrecedingSibling,
            NodeTest::name("a"),
            Expr::Number(1.0),
        );
        let out = apply_step(&d, b, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "3");
        // ... and the result is still reported in document order.
        let step = Step::new(Axis::PrecedingSibling, NodeTest::name("a"));
        let out = apply_step(&d, b, &step, &mut tiny_eval).unwrap();
        let values: Vec<String> = out.iter().map(|&n| d.string_value(n)).collect();
        assert_eq!(values, vec!["1", "2", "3"]);
    }

    #[test]
    fn predicate_sequences_rederive_positions() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        // child::a[position() >= 2][1] — first filter keeps {2,3}, second
        // keeps the first of the remaining list, i.e. "2".
        let q = parse_query("child::a[position() >= 2][1]").unwrap();
        let step = match q {
            Expr::Path(p) => p.steps[0].clone(),
            _ => unreachable!(),
        };
        let out = apply_step(&d, r, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "2");
    }

    #[test]
    fn last_refers_to_candidate_count() {
        let d = doc();
        let r = d.first_child(d.root()).unwrap();
        let q = parse_query("child::a[position() = last()]").unwrap();
        let step = match q {
            Expr::Path(p) => p.steps[0].clone(),
            _ => unreachable!(),
        };
        let out = apply_step(&d, r, &step, &mut tiny_eval).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(d.string_value(out[0]), "3");
    }

    #[test]
    fn predicate_truth_rule() {
        assert!(predicate_holds(&Value::Number(3.0), 3));
        assert!(!predicate_holds(&Value::Number(3.0), 2));
        assert!(predicate_holds(&Value::Boolean(true), 99));
        assert!(!predicate_holds(&Value::empty(), 1));
        assert!(predicate_holds(&Value::Str("x".into()), 1));
    }
}
