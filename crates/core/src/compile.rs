//! The compile-once half of the query pipeline.
//!
//! The paper splits XPath evaluation cost in two: a *per-query* static
//! analysis (parse, classify into the Figure 1 fragment lattice, pick the
//! algorithm its complexity result recommends) and a *per-document*
//! evaluation.  [`CompiledQuery`] materializes that split: it owns the
//! parsed and normalized AST, its [`FragmentReport`] and a pre-selected
//! [`EvalStrategy`] plan, and is **document-independent** — compile a query
//! once and [`run`](CompiledQuery::run) it against any number of documents
//! and contexts.
//!
//! All five evaluation strategies are driven through the compiled form;
//! see [`CompiledQuery::run_with_context`].  Batch evaluation over many
//! contexts ([`CompiledQuery::run_many`]) shares the DP evaluator's
//! context-value tables across the whole batch, which is exactly the
//! amortization Proposition 2.7's polynomial bound comes from.
//!
//! The document side mirrors the split: [`CompiledQuery::run_prepared`]
//! evaluates against a [`PreparedDocument`] (axis indexes built once per
//! document), with the strategy re-tuned by document size
//! ([`recommended_strategy_for_document`]), and
//! [`CompiledQuery::run_streaming`] yields node-set results through a
//! [`NodeStream`] instead of materializing them.

use crate::bindings::Bindings;
use crate::context::Context;
use crate::corexpath::CoreXPathEvaluator;
use crate::dp::DpEvaluator;
use crate::engine::EvalStrategy;
use crate::error::EvalError;
use crate::exec::EvalEnv;
use crate::ir::PlanIr;
use crate::naive::NaiveEvaluator;
use crate::parallel::ParallelEvaluator;
use crate::registry::{FragmentImpact, FunctionRegistry};
use crate::stats::EvalStats;
use crate::stream::NodeStream;
use crate::success::SingletonSuccess;
use crate::value::Value;
use std::sync::Arc;
use std::time::Instant;
use xpeval_dom::{AxisSource, Document, NodeId, PreparedDocument};
use xpeval_obs::{Counter, Histogram, OpTrace, QueryTrace, SpanKind, Telemetry, TraceSpan};
use xpeval_syntax::ast::ExprType;
use xpeval_syntax::normalize::expand_iterated_predicates;
use xpeval_syntax::{classify, Expr, Fragment, FragmentReport};

/// Options controlling compilation; the builder's
/// [`crate::EngineBuilder`] produces these from its configuration.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Fixed strategy, or `None` to let the classifier pick the one the
    /// paper recommends for the query's fragment.
    pub strategy: Option<EvalStrategy>,
    /// Worker threads used when the plan is [`EvalStrategy::Parallel`].
    pub threads: usize,
    /// Apply the semantics-preserving Remark 5.2 normalization (merge
    /// iterated predicates) before classification.
    pub normalize: bool,
    /// The registered functions visible to the compiled query (empty by
    /// default).  Shared by `Arc` so every plan compiled by one
    /// [`crate::Engine`] points at the same registry.
    pub registry: Arc<FunctionRegistry>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            strategy: None,
            threads: default_threads(),
            normalize: true,
            registry: FunctionRegistry::empty_shared(),
        }
    }
}

/// The number of worker threads used when none is configured.  The
/// `available_parallelism` syscall is made once and cached: compilation is
/// on the serving hot path when a plan cache misses.
pub fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The strategy the paper recommends for a classified query: linear
/// set-at-a-time evaluation for the Core XPath fragments, parallel
/// Singleton-Success evaluation for the LOGCFL fragments (Remark 5.6), and
/// the polynomial context-value-table algorithm for everything else.
pub fn recommended_strategy(report: &FragmentReport, threads: usize) -> EvalStrategy {
    match report.fragment {
        Fragment::PF | Fragment::PositiveCoreXPath | Fragment::CoreXPath => {
            EvalStrategy::CoreXPathLinear
        }
        Fragment::PWF | Fragment::PXPath => EvalStrategy::Parallel { threads },
        _ => EvalStrategy::ContextValueTable,
    }
}

/// Documents smaller than this (in total nodes) are evaluated sequentially
/// even when the fragment recommendation is the parallel plan: below it the
/// per-thread spawn/merge overhead exceeds the Theorem 5.5 loop itself.
/// First refinement of the ROADMAP cost model — query features pick the
/// algorithm family, document size picks the parallelism degree.
pub const PARALLEL_MIN_NODES: usize = 512;

/// Queries whose name-bounded candidate universe (tag-index selectivity,
/// [`crate::steps::result_size_bound`]) is below this many nodes are
/// evaluated sequentially even on large documents: the parallel plan's
/// workers would each decide only a handful of plausible candidates, so
/// spawn/merge overhead dominates.  Second refinement of the cost model —
/// per-axis selectivity counts join document size in the plan choice.
pub const PARALLEL_MIN_CANDIDATES: usize = 128;

/// The size-degrade rule itself: a parallel plan on a document below
/// [`PARALLEL_MIN_NODES`] nodes becomes sequential Singleton-Success;
/// everything else is unchanged.  Single source of truth for both
/// [`recommended_strategy_for_document`] and
/// [`CompiledQuery::strategy_for`].
fn degrade_for_size(strategy: EvalStrategy, node_count: usize) -> EvalStrategy {
    match strategy {
        EvalStrategy::Parallel { .. } if node_count < PARALLEL_MIN_NODES => {
            EvalStrategy::SingletonSuccess
        }
        strategy => strategy,
    }
}

/// The selectivity-aware degrade rule: [`degrade_for_size`] plus the tag
/// index — an auto-selected parallel plan falls back to sequential
/// Singleton-Success when the document is small **or** the query's
/// name-bounded candidate universe is below [`PARALLEL_MIN_CANDIDATES`].
/// With an unindexed source the selectivity signal is unavailable and only
/// the size rule applies.
///
/// The rule also consults [`xpeval_dom::SourceCapabilities`]: a backend
/// that does not publish a document-order table
/// (`capabilities().order_table == false`) degrades the parallel plan
/// outright — its workers would each rebuild document order from the tree,
/// turning the parallel speedup into repeated O(n) walks.  The degrade is
/// *explicit* (a different strategy in the artifact, observable through
/// [`CompiledQuery::strategy_for_source`]) rather than a silent slow path.
fn degrade_for_source<S: AxisSource + ?Sized>(
    strategy: EvalStrategy,
    expr: &Expr,
    src: &S,
) -> EvalStrategy {
    match degrade_for_size(strategy, src.node_count()) {
        s @ EvalStrategy::Parallel { .. } => {
            if !src.capabilities().order_table {
                return EvalStrategy::SingletonSuccess;
            }
            match crate::steps::result_size_bound(expr, src) {
                Some(bound) if bound < PARALLEL_MIN_CANDIDATES => EvalStrategy::SingletonSuccess,
                _ => s,
            }
        }
        s => s,
    }
}

/// Size-aware refinement of [`recommended_strategy`]: identical, except
/// that the parallel plan degrades to sequential Singleton-Success below
/// [`PARALLEL_MIN_NODES`] document nodes.  Used automatically whenever a
/// [`PreparedDocument`] makes the node count available at dispatch time.
pub fn recommended_strategy_for_document(
    report: &FragmentReport,
    threads: usize,
    node_count: usize,
) -> EvalStrategy {
    degrade_for_size(recommended_strategy(report, threads), node_count)
}

/// Source-aware refinement of [`recommended_strategy_for_document`]: the
/// document size rule plus tag-index selectivity
/// ([`PARALLEL_MIN_CANDIDATES`]).  This is what the prepared evaluation
/// entry points use when the strategy is selected automatically.
pub fn recommended_strategy_for_source<S: AxisSource + ?Sized>(
    report: &FragmentReport,
    threads: usize,
    expr: &Expr,
    src: &S,
) -> EvalStrategy {
    degrade_for_source(recommended_strategy(report, threads), expr, src)
}

/// The result of one evaluation: the XPath value, the unified work counters
/// of the strategy that ran, and the fragment the query was classified into.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// The XPath 1.0 value the query evaluated to.
    pub value: Value,
    /// Work counters of the evaluation (all-zero for strategies that do not
    /// count work; see [`EvalStats`]).
    pub stats: EvalStats,
    /// Least fragment of Figure 1 containing the compiled query.
    pub fragment: Fragment,
}

impl QueryOutput {
    /// Consumes the output, returning just the value.
    pub fn into_value(self) -> Value {
        self.value
    }
}

/// A query compiled once — parsed, normalized, classified, planned — and
/// evaluatable many times, against any document.
///
/// A plan is also **binding-independent**: a query referencing external
/// variables (`$name`) compiles to one plan, and each evaluation supplies
/// its own [`Bindings`] through the `*_bound` entry points — so one
/// compilation (and one plan-cache entry, one catalog artifact) serves any
/// number of parameterizations.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    source: String,
    expr: Expr,
    report: FragmentReport,
    plan: EvalStrategy,
    /// True when `plan` came from the automatic recommendation (as opposed
    /// to an explicit override); only auto plans are re-tuned by document
    /// size on the prepared paths.
    auto_plan: bool,
    /// The flat instruction form every run path executes
    /// ([`crate::exec::execute_ir`]); lowered once at compile time and
    /// shared by reference across clones, specializations and catalog
    /// artifacts.
    ir: Arc<PlanIr>,
    /// The registered functions this plan may call, shared with the engine
    /// (or options) that compiled it.
    registry: Arc<FunctionRegistry>,
    /// The external variables the query references, sorted by name; the
    /// bound entry points check these against the supplied [`Bindings`]
    /// *before* any document work.
    variables: Vec<String>,
    /// Nanoseconds spent parsing, normalizing and classifying the query
    /// (everything in `build` except the lowering), stamped at compile
    /// time and reported as the `compile` span of sampled traces.
    compile_nanos: u64,
    /// Nanoseconds spent lowering the AST to [`PlanIr`] — the `lower`
    /// span of sampled traces.
    lower_nanos: u64,
    /// The telemetry handle sampled traces and latency metrics flow into;
    /// `None` (the default) keeps every run path telemetry-free.
    telemetry: Option<DispatchMeter>,
}

/// A telemetry handle plus the dispatch instruments resolved from its
/// registry once, at attach time — so the metered dispatch path touches
/// only atomics: no registry lock, no name lookup, no allocation.
#[derive(Clone, Debug)]
struct DispatchMeter {
    handle: Arc<Telemetry>,
    query_total: Arc<Counter>,
    query_errors_total: Arc<Counter>,
    query_latency_ns: Arc<Histogram>,
}

impl DispatchMeter {
    fn new(handle: Arc<Telemetry>) -> Self {
        let registry = handle.registry();
        DispatchMeter {
            query_total: registry.counter("query_total"),
            query_errors_total: registry.counter("query_errors_total"),
            query_latency_ns: registry.histogram("query_latency_ns"),
            handle,
        }
    }
}

impl PartialEq for CompiledQuery {
    fn eq(&self, other: &Self) -> bool {
        // Handlers are opaque, so registries compare by identity; every
        // plan compiled through one engine (or with default options) shares
        // one Arc, which is exactly the sameness that matters here.
        self.source == other.source
            && self.expr == other.expr
            && self.report == other.report
            && self.plan == other.plan
            && self.auto_plan == other.auto_plan
            && self.ir == other.ir
            && self.variables == other.variables
            && Arc::ptr_eq(&self.registry, &other.registry)
    }
}

impl CompiledQuery {
    /// Compiles a query string with default options: automatic strategy
    /// selection and all available threads.
    pub fn compile(source: &str) -> Result<Self, EvalError> {
        Self::compile_with(source, &CompileOptions::default())
    }

    /// Compiles a query string with explicit options.
    ///
    /// Every function call in the query is validated here, at compile
    /// time: an unknown name (neither built-in nor registered in
    /// `options.registry`) is an [`EvalError::UnknownFunction`], and an
    /// argument count outside the signature's range is an
    /// [`EvalError::WrongArity`] — no document is touched either way.
    pub fn compile_with(source: &str, options: &CompileOptions) -> Result<Self, EvalError> {
        let expr = xpeval_syntax::parse_query(source)?;
        let compiled = Self::build(source.to_string(), expr, options);
        validate_calls(&compiled.expr, &compiled.registry)?;
        Ok(compiled)
    }

    /// Compiles a query string against a function registry, with the other
    /// options at their defaults.  Equivalent to [`CompiledQuery::compile_with`]
    /// with `options.registry = registry`.
    pub fn compile_with_registry(
        source: &str,
        registry: Arc<FunctionRegistry>,
    ) -> Result<Self, EvalError> {
        Self::compile_with(
            source,
            &CompileOptions {
                registry,
                ..CompileOptions::default()
            },
        )
    }

    /// Compiles an already-parsed expression with default options.
    ///
    /// Unlike the string entry points this is infallible — programmatically
    /// built expressions skip call validation (their calls are typically
    /// generated against the built-in library); a bad call is still caught
    /// at evaluation time.
    pub fn from_expr(expr: Expr) -> Self {
        Self::from_expr_with(expr, &CompileOptions::default())
    }

    /// Compiles an already-parsed expression with explicit options.
    pub fn from_expr_with(expr: Expr, options: &CompileOptions) -> Self {
        let source = expr.to_string();
        Self::build(source, expr, options)
    }

    fn build(source: String, expr: Expr, options: &CompileOptions) -> Self {
        let started = Instant::now();
        // Remark 5.2: merging iterated predicates is semantics-preserving
        // (the rewrite skips any step where it would not be) and can only
        // move the query *down* the fragment lattice, enabling a cheaper
        // plan — so classify after normalizing.
        let expr = if options.normalize {
            expand_iterated_predicates(&expr)
        } else {
            expr
        };
        let registry = options.registry.clone();
        let mut report = classify(&expr);
        // A registered function with no complexity claim defeats the
        // syntactic classifier: degrade the whole query to full XPath so
        // the plan never claims a bound the opaque handler cannot honour.
        // (CoreSafe registrations keep the classifier's verdict.)
        if report.fragment < Fragment::XPath && uses_general_registration(&expr, &registry) {
            report.fragment = Fragment::XPath;
        }
        let lower_started = Instant::now();
        let ir = PlanIr::lower_with_registry(&expr, &report, &registry);
        let lower_nanos = lower_started.elapsed().as_nanos() as u64;
        let variables = referenced_variables(&expr);
        let auto_plan = options.strategy.is_none();
        let plan = options
            .strategy
            .unwrap_or_else(|| recommended_strategy(&report, options.threads.max(1)));
        let compile_nanos = (started.elapsed().as_nanos() as u64).saturating_sub(lower_nanos);
        CompiledQuery {
            source,
            expr,
            report,
            plan,
            auto_plan,
            ir,
            registry,
            variables,
            compile_nanos,
            lower_nanos,
            telemetry: None,
        }
    }

    /// The query string this plan was compiled from (the canonical printed
    /// form when compiled from an AST).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The normalized AST.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The full classification report (Figure 1).
    pub fn report(&self) -> &FragmentReport {
        &self.report
    }

    /// The flat instruction form of the plan — the program every run path
    /// executes.  Shared by reference across clones and specializations.
    pub fn ir(&self) -> &PlanIr {
        &self.ir
    }

    /// The shared handle to the lowered plan, for callers that cache plan
    /// artifacts (e.g. a document catalog) and want to witness sharing.
    pub fn plan_ir(&self) -> &Arc<PlanIr> {
        &self.ir
    }

    /// Least fragment of Figure 1 containing the query.
    pub fn fragment(&self) -> Fragment {
        self.report.fragment
    }

    /// The external variables (`$name`) the query references, sorted by
    /// name.  Empty for variable-free queries; every name listed here must
    /// be bound when evaluating through the `*_bound` entry points.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The function registry the plan was compiled against.
    pub fn registry(&self) -> &Arc<FunctionRegistry> {
        &self.registry
    }

    /// The environment of a binding-less evaluation: the plan's registry
    /// plus empty bindings (a `$name` reference then errors at the point of
    /// use).
    fn base_env(&self) -> EvalEnv<'_> {
        EvalEnv {
            registry: &self.registry,
            bindings: Bindings::empty(),
            trace: None,
        }
    }

    fn bound_env<'e>(&'e self, bindings: &'e Bindings) -> EvalEnv<'e> {
        EvalEnv {
            registry: &self.registry,
            bindings,
            trace: None,
        }
    }

    /// Errors eagerly — before any document work — when `bindings` is
    /// missing a variable the query references.
    fn check_bindings(&self, bindings: &Bindings) -> Result<(), EvalError> {
        match self.variables.iter().find(|n| bindings.get(n).is_none()) {
            Some(missing) => Err(EvalError::UnboundVariable {
                name: missing.clone(),
            }),
            None => Ok(()),
        }
    }

    /// The single strategy-dispatch funnel of every run path: exactly
    /// [`crate::exec::execute_ir`] when no telemetry is attached (one
    /// branch of overhead), and the metered path otherwise.
    fn dispatch<S: AxisSource + ?Sized>(
        &self,
        strategy: EvalStrategy,
        src: &S,
        ctx: Context,
        env: EvalEnv<'_>,
    ) -> Result<(Value, EvalStats), EvalError> {
        match &self.telemetry {
            None => crate::exec::execute_ir(strategy, src, &self.expr, &self.ir, ctx, env),
            Some(meter) => self.dispatch_observed(meter, strategy, src, ctx, env),
        }
    }

    /// The metered dispatch.  Every run bumps the query counters; runs
    /// picked by the handle's sampler are additionally timed into the
    /// `query_latency_ns` histogram and thread an [`OpTrace`] through the
    /// evaluation, retaining the resulting [`QueryTrace`].  Unsampled runs
    /// never read a clock or allocate.
    fn dispatch_observed<S: AxisSource + ?Sized>(
        &self,
        meter: &DispatchMeter,
        strategy: EvalStrategy,
        src: &S,
        ctx: Context,
        env: EvalEnv<'_>,
    ) -> Result<(Value, EvalStats), EvalError> {
        meter.query_total.inc();
        if !meter.handle.should_sample() {
            // Unsampled runs pay counters only — no clock reads, no
            // allocation; this is what keeps sampling-off telemetry within
            // the 2% bar `bench_telemetry` prices.
            let result = crate::exec::execute_ir(strategy, src, &self.expr, &self.ir, ctx, env);
            if result.is_err() {
                meter.query_errors_total.inc();
            }
            return result;
        }
        let trace = OpTrace::new(self.ir.ops().len());
        let env = EvalEnv {
            trace: Some(&trace),
            ..env
        };
        let start = Instant::now();
        let result = crate::exec::execute_ir(strategy, src, &self.expr, &self.ir, ctx, env);
        let elapsed = start.elapsed();
        if result.is_err() {
            meter.query_errors_total.inc();
        }
        meter.query_latency_ns.record_duration(elapsed);
        meter
            .handle
            .push_trace(self.build_trace(strategy, &trace, elapsed.as_nanos() as u64));
        result
    }

    /// Converts accumulated per-opcode cells into the span list of a
    /// [`QueryTrace`]: the compile and lower phases first, then one span
    /// per plan opcode *in plan order* — which is what makes the emitted
    /// span sequence identical across all five strategies by construction.
    fn build_trace(&self, strategy: EvalStrategy, trace: &OpTrace, total_nanos: u64) -> QueryTrace {
        let ops = self.ir.ops().len();
        let mut spans = Vec::with_capacity(ops + 2);
        let fragment = self.report.fragment.name();
        spans.push(TraceSpan::phase(
            SpanKind::Compile,
            "parse + classify",
            fragment,
            self.compile_nanos,
        ));
        spans.push(TraceSpan::phase(
            SpanKind::Lower,
            "lower to PlanIr",
            fragment,
            self.lower_nanos,
        ));
        for id in 0..ops as u32 {
            let (calls, candidates_in, candidates_out, nanos) = trace.cell(id);
            spans.push(TraceSpan {
                kind: SpanKind::Op,
                label: self.ir.display_op(id),
                op: Some(id),
                fragment: self.ir.op(id).fragment.name(),
                calls,
                candidates_in,
                candidates_out,
                nanos,
            });
        }
        QueryTrace {
            query: self.source.clone(),
            strategy: format!("{strategy:?}"),
            spans,
            total_nanos,
        }
    }

    /// Nanoseconds spent parsing, normalizing and classifying the query at
    /// compile time (excludes lowering; see
    /// [`CompiledQuery::lower_nanos`]).
    pub fn compile_nanos(&self) -> u64 {
        self.compile_nanos
    }

    /// Nanoseconds spent lowering the AST to the flat plan IR at compile
    /// time.
    pub fn lower_nanos(&self) -> u64 {
        self.lower_nanos
    }

    /// Attaches a telemetry handle: every later run through this plan
    /// counts into the handle's registry (`query_total`,
    /// `query_errors_total`), and runs picked by the handle's sampler are
    /// additionally timed into the `query_latency_ns` histogram and record
    /// a full [`QueryTrace`] — compile and lower spans plus one span per
    /// plan opcode.  The dispatch instruments are resolved from the registry
    /// here, once, so the metered run path touches only atomics — and with
    /// no handle attached (the default) the run paths stay allocation- and
    /// lock-free entirely.  An engine built with
    /// [`crate::EngineBuilder::telemetry`] attaches its handle to every
    /// plan it compiles.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(DispatchMeter::new(telemetry));
        self
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref().map(|meter| &meter.handle)
    }

    /// The evaluation strategy this plan will dispatch to.
    pub fn strategy(&self) -> EvalStrategy {
        self.plan
    }

    /// The same compiled query with a different strategy; classification is
    /// not redone.  The explicit choice is final: size-based re-tuning on
    /// the prepared paths is disabled.
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.plan = strategy;
        self.auto_plan = false;
        self
    }

    /// The strategy that will run against a document of `node_count` nodes:
    /// the compiled plan, except that an automatically selected parallel
    /// plan degrades to sequential Singleton-Success below
    /// [`PARALLEL_MIN_NODES`] (see [`recommended_strategy_for_document`]).
    pub fn strategy_for(&self, node_count: usize) -> EvalStrategy {
        if self.auto_plan {
            degrade_for_size(self.plan, node_count)
        } else {
            self.plan
        }
    }

    /// The strategy that will run against a concrete document source: the
    /// [`CompiledQuery::strategy_for`] size rule plus, when the source
    /// carries a tag index, the selectivity rule — an auto parallel plan
    /// whose name-bounded candidate universe is below
    /// [`PARALLEL_MIN_CANDIDATES`] degrades to sequential
    /// Singleton-Success.  This is what every `*_prepared` entry point
    /// dispatches through.
    pub fn strategy_for_source<S: AxisSource + ?Sized>(&self, src: &S) -> EvalStrategy {
        if self.auto_plan {
            degrade_for_source(self.plan, &self.expr, src)
        } else {
            self.plan
        }
    }

    /// A document-specialized copy of this plan: the strategy the
    /// source-aware cost model would pick on every run
    /// ([`CompiledQuery::strategy_for_source`]) is computed once and pinned
    /// as the copy's fixed strategy, and every name test is resolved to the
    /// source's interned [`xpeval_dom::TagId`]s
    /// ([`crate::steps::resolve_name_tests`]) — running the specialized
    /// plan skips selectivity probing, strategy selection *and* per-step
    /// string hashing entirely.
    ///
    /// The pinned choices are valid for exactly the document it was made
    /// against (tag counts, node count and tag ids are baked in);
    /// re-specialize when the document is replaced or structurally edited.
    /// This is the plan half of a catalog's (query × document) artifact.
    pub fn specialize_for_source<S: AxisSource + ?Sized>(&self, src: &S) -> CompiledQuery {
        let mut specialized = self.clone().with_strategy(self.strategy_for_source(src));
        // Tag-id pinning only makes sense against a source that actually
        // publishes a tag index; a capability-masked or unindexed backend
        // answers name tests by string, so the plan keeps the names.
        if src.capabilities().tag_index {
            crate::steps::resolve_name_tests(&mut specialized.expr, src);
        }
        specialized
    }

    /// Evaluates against a document from the canonical root context.
    pub fn run(&self, doc: &Document) -> Result<QueryOutput, EvalError> {
        self.run_with_context(doc, Context::root(doc))
    }

    /// Evaluates against a prepared document from the canonical root
    /// context: axis enumeration and name tests are answered from the
    /// prepare-once indexes, and the strategy is re-tuned by document size
    /// ([`CompiledQuery::strategy_for`]).
    pub fn run_prepared(&self, doc: &PreparedDocument) -> Result<QueryOutput, EvalError> {
        self.run_prepared_with_context(doc, Context::root(doc.document()))
    }

    /// Evaluates against a prepared document from an explicit context.
    pub fn run_prepared_with_context(
        &self,
        doc: &PreparedDocument,
        ctx: Context,
    ) -> Result<QueryOutput, EvalError> {
        let strategy = self.strategy_for_source(doc);
        let (value, stats) = self.dispatch(strategy, doc, ctx, self.base_env())?;
        Ok(QueryOutput {
            value,
            stats,
            fragment: self.report.fragment,
        })
    }

    /// Evaluates against a document from an explicit context triple.
    pub fn run_with_context(&self, doc: &Document, ctx: Context) -> Result<QueryOutput, EvalError> {
        let (value, stats) = self.dispatch(self.plan, doc, ctx, self.base_env())?;
        Ok(QueryOutput {
            value,
            stats,
            fragment: self.report.fragment,
        })
    }

    /// Evaluates with external variable bindings, from the canonical root
    /// context.  The plan itself is binding-independent — compile once,
    /// then call this any number of times with different [`Bindings`];
    /// every referenced variable must be bound or the call errors with
    /// [`EvalError::UnboundVariable`] before touching the document.
    pub fn run_bound(&self, doc: &Document, bindings: &Bindings) -> Result<QueryOutput, EvalError> {
        self.run_with_context_bound(doc, Context::root(doc), bindings)
    }

    /// [`CompiledQuery::run_bound`] from an explicit context triple.
    pub fn run_with_context_bound(
        &self,
        doc: &Document,
        ctx: Context,
        bindings: &Bindings,
    ) -> Result<QueryOutput, EvalError> {
        self.check_bindings(bindings)?;
        let (value, stats) = self.dispatch(self.plan, doc, ctx, self.bound_env(bindings))?;
        Ok(QueryOutput {
            value,
            stats,
            fragment: self.report.fragment,
        })
    }

    /// [`CompiledQuery::run_bound`] over a prepared document (strategy
    /// re-tuned by document size and selectivity, exactly like
    /// [`CompiledQuery::run_prepared`]).
    pub fn run_prepared_bound(
        &self,
        doc: &PreparedDocument,
        bindings: &Bindings,
    ) -> Result<QueryOutput, EvalError> {
        self.run_prepared_with_context_bound(doc, Context::root(doc.document()), bindings)
    }

    /// [`CompiledQuery::run_prepared_bound`] from an explicit context.
    pub fn run_prepared_with_context_bound(
        &self,
        doc: &PreparedDocument,
        ctx: Context,
        bindings: &Bindings,
    ) -> Result<QueryOutput, EvalError> {
        self.check_bindings(bindings)?;
        let strategy = self.strategy_for_source(doc);
        let (value, stats) = self.dispatch(strategy, doc, ctx, self.bound_env(bindings))?;
        Ok(QueryOutput {
            value,
            stats,
            fragment: self.report.fragment,
        })
    }

    /// Evaluates a node-set query from the root context, yielding matches
    /// through a [`NodeStream`] instead of materializing a result vector —
    /// see the [`crate::stream`] module docs for which plans stream lazily.
    ///
    /// Returns a [`EvalError::TypeError`] for queries that do not evaluate
    /// to a node set.
    pub fn run_streaming<'s>(&'s self, doc: &'s Document) -> Result<NodeStream<'s>, EvalError> {
        self.stream_on(doc, self.plan)
    }

    /// [`CompiledQuery::run_streaming`] over a prepared document: the
    /// stream borrows the precomputed document-order table and the strategy
    /// is re-tuned by document size.
    pub fn run_streaming_prepared<'s>(
        &'s self,
        doc: &'s PreparedDocument,
    ) -> Result<NodeStream<'s>, EvalError> {
        self.stream_on(doc, self.strategy_for_source(doc))
    }

    fn stream_on<'s, S: AxisSource>(
        &'s self,
        src: &'s S,
        strategy: EvalStrategy,
    ) -> Result<NodeStream<'s>, EvalError> {
        let ctx = Context::root(src.document());
        match strategy {
            EvalStrategy::CoreXPathLinear => {
                // Set-at-a-time evaluation ends in a bitset; stream its
                // members without collecting them.
                let ev = CoreXPathEvaluator::new(src);
                let bits = ev.evaluate_bits(&self.expr, &[ctx.node])?;
                Ok(NodeStream::from_bits(bits, src.document_order()))
            }
            EvalStrategy::SingletonSuccess | EvalStrategy::Parallel { .. } => {
                // Theorem 5.5 as an iterator: one Singleton-Success
                // decision per candidate, made when the stream reaches it.
                // (The parallel plan streams through the same sequential
                // loop — a stream is consumed in order anyway.)  The IR
                // checker also carries the plan's registry, so queries over
                // registered functions stream like everything else.
                if self.ir.op(self.ir.root()).ty != ExprType::NodeSet {
                    return Err(EvalError::type_error(format!(
                        "streaming requires a node-set query, got {}",
                        self.source
                    )));
                }
                let checker = crate::exec::IrSingletonSuccess::new(src, &self.ir, self.base_env())?;
                let root = self.ir.root();
                Ok(NodeStream::from_decide(
                    src.document_order(),
                    Box::new(move |node: NodeId| checker.selects(root, ctx, node)),
                ))
            }
            EvalStrategy::ContextValueTable | EvalStrategy::Naive => {
                // No incremental formulation; materialize, then stream.
                let (value, _) = self.dispatch(strategy, src, ctx, self.base_env())?;
                Ok(NodeStream::from_vec(value.into_nodes()?))
            }
        }
    }

    /// Visitor form of [`CompiledQuery::run_streaming`]: calls `visit` for
    /// every match in document order until it returns `false`.  Returns the
    /// number of matches visited.
    pub fn run_visit<F>(&self, doc: &Document, visit: F) -> Result<usize, EvalError>
    where
        F: FnMut(NodeId) -> bool,
    {
        Self::drive(self.run_streaming(doc)?, visit)
    }

    /// Visitor form of [`CompiledQuery::run_streaming_prepared`].
    pub fn run_visit_prepared<F>(
        &self,
        doc: &PreparedDocument,
        visit: F,
    ) -> Result<usize, EvalError>
    where
        F: FnMut(NodeId) -> bool,
    {
        Self::drive(self.run_streaming_prepared(doc)?, visit)
    }

    fn drive<F>(stream: NodeStream<'_>, mut visit: F) -> Result<usize, EvalError>
    where
        F: FnMut(NodeId) -> bool,
    {
        let mut visited = 0;
        for node in stream {
            visited += 1;
            if !visit(node?) {
                break;
            }
        }
        Ok(visited)
    }

    /// Batch evaluation: runs the query once per context, in order.
    ///
    /// For the [`EvalStrategy::ContextValueTable`] plan a single evaluator
    /// (and hence a single set of context-value tables) is shared across the
    /// whole batch, so repeated subexpression/context pairs are computed
    /// only once — per-context stats are cumulative in that case.
    pub fn run_many(
        &self,
        doc: &Document,
        contexts: &[Context],
    ) -> Result<Vec<QueryOutput>, EvalError> {
        self.run_many_on(doc, self.plan, contexts, self.base_env())
    }

    /// [`CompiledQuery::run_many`] over a prepared document (strategy
    /// re-tuned by document size).
    pub fn run_many_prepared(
        &self,
        doc: &PreparedDocument,
        contexts: &[Context],
    ) -> Result<Vec<QueryOutput>, EvalError> {
        self.run_many_on(
            doc,
            self.strategy_for_source(doc),
            contexts,
            self.base_env(),
        )
    }

    /// [`CompiledQuery::run_many`] with external variable bindings (one
    /// binding set for the whole batch; recompile nothing to change it).
    pub fn run_many_bound(
        &self,
        doc: &Document,
        contexts: &[Context],
        bindings: &Bindings,
    ) -> Result<Vec<QueryOutput>, EvalError> {
        self.check_bindings(bindings)?;
        self.run_many_on(doc, self.plan, contexts, self.bound_env(bindings))
    }

    fn run_many_on<S: AxisSource>(
        &self,
        src: &S,
        strategy: EvalStrategy,
        contexts: &[Context],
        env: EvalEnv<'_>,
    ) -> Result<Vec<QueryOutput>, EvalError> {
        match strategy {
            EvalStrategy::ContextValueTable => {
                let mut ev = crate::exec::IrEvaluator::memoized(src, &self.ir, env);
                let mut out = Vec::with_capacity(contexts.len());
                for &ctx in contexts {
                    let value = ev.eval(self.ir.root(), ctx)?;
                    out.push(QueryOutput {
                        value,
                        stats: ev.stats(),
                        fragment: self.report.fragment,
                    });
                }
                Ok(out)
            }
            _ => contexts
                .iter()
                .map(|&ctx| {
                    let (value, stats) = self.dispatch(strategy, src, ctx, env)?;
                    Ok(QueryOutput {
                        value,
                        stats,
                        fragment: self.report.fragment,
                    })
                })
                .collect(),
        }
    }

    /// Convenience: evaluates from the root context and returns just the
    /// value.
    pub fn value(&self, doc: &Document) -> Result<Value, EvalError> {
        self.run(doc).map(|o| o.value)
    }
}

impl std::fmt::Display for CompiledQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}; {:?}]",
            self.source, self.report.fragment, self.plan
        )
    }
}

/// Calls `f` on every subexpression of `expr`, including predicate
/// expressions inside location steps.
fn walk_expr<'e>(expr: &'e Expr, f: &mut impl FnMut(&'e Expr)) {
    f(expr);
    match expr {
        Expr::Path(path) => {
            for step in &path.steps {
                for pred in &step.predicates {
                    walk_expr(pred, f);
                }
            }
        }
        Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b)
        | Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Relational {
            left: a, right: b, ..
        }
        | Expr::NodeCompare {
            left: a, right: b, ..
        }
        | Expr::Arithmetic {
            left: a, right: b, ..
        } => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Not(e) | Expr::Neg(e) => walk_expr(e, f),
        Expr::FunctionCall { args, .. } => {
            for arg in args {
                walk_expr(arg, f);
            }
        }
        Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => {}
    }
}

/// Compile-time validation of every function call in the query: the name
/// must be a built-in or a registration, and the argument count must be in
/// the signature's accepted range.
fn validate_calls(expr: &Expr, registry: &FunctionRegistry) -> Result<(), EvalError> {
    let mut first_err: Option<EvalError> = None;
    walk_expr(expr, &mut |e| {
        if first_err.is_some() {
            return;
        }
        let Expr::FunctionCall { name, args } = e else {
            return;
        };
        if let Some((min, max)) = crate::functions::builtin_signature(name) {
            if args.len() < min || max.is_some_and(|max| args.len() > max) {
                let expected = match max {
                    Some(max) if max == min => max.to_string(),
                    Some(max) => format!("{min} to {max}"),
                    None => format!("{min} or more"),
                };
                first_err = Some(EvalError::WrongArity {
                    name: name.clone(),
                    expected,
                    got: args.len(),
                });
            }
        } else if let Some(f) = registry.lookup(name) {
            if !f.signature.accepts_arity(args.len()) {
                first_err = Some(EvalError::WrongArity {
                    name: name.clone(),
                    expected: f.signature.arity_description(),
                    got: args.len(),
                });
            }
        } else {
            first_err = Some(EvalError::UnknownFunction { name: name.clone() });
        }
    });
    first_err.map_or(Ok(()), Err)
}

/// Whether the query calls any registered function that declared the
/// conservative [`FragmentImpact::General`] contract (those degrade the
/// classification to full XPath in [`CompiledQuery`]'s `build`).
fn uses_general_registration(expr: &Expr, registry: &FunctionRegistry) -> bool {
    let mut found = false;
    walk_expr(expr, &mut |e| {
        if let Expr::FunctionCall { name, .. } = e {
            if let Some(f) = registry.lookup(name) {
                found |= f.signature.fragment_impact() == FragmentImpact::General;
            }
        }
    });
    found
}

/// The external variables referenced anywhere in the query, sorted and
/// deduplicated.
fn referenced_variables(expr: &Expr) -> Vec<String> {
    let mut names = Vec::new();
    walk_expr(expr, &mut |e| {
        if let Expr::Variable(name) = e {
            names.push(name.clone());
        }
    });
    names.sort();
    names.dedup();
    names
}

/// Dispatches one evaluation to a strategy.  This is the single funnel every
/// public evaluation entry point goes through; the document arrives through
/// any [`AxisSource`] (plain or prepared).
pub(crate) fn execute<S: AxisSource + ?Sized>(
    strategy: EvalStrategy,
    src: &S,
    expr: &Expr,
    ctx: Context,
) -> Result<(Value, EvalStats), EvalError> {
    match strategy {
        EvalStrategy::ContextValueTable => {
            let mut ev = DpEvaluator::new(src, expr);
            let value = ev.evaluate_with_context(ctx)?;
            Ok((value, ev.stats()))
        }
        EvalStrategy::Naive => {
            let mut ev = NaiveEvaluator::new(src);
            let value = ev.evaluate_with_context(expr, ctx)?;
            Ok((value, ev.stats()))
        }
        EvalStrategy::CoreXPathLinear => {
            let ev = CoreXPathEvaluator::new(src);
            let nodes = ev.evaluate_from(expr, &[ctx.node])?;
            Ok((Value::NodeSet(nodes), ev.stats()))
        }
        EvalStrategy::Parallel { threads } => {
            let ev = ParallelEvaluator::new(src, threads);
            ev.evaluate_with_stats(expr, ctx)
        }
        EvalStrategy::SingletonSuccess => {
            let checker = SingletonSuccess::new(src, expr)?;
            let value = match expr.expr_type() {
                ExprType::NodeSet => Value::NodeSet(checker.node_set(ctx)?),
                ExprType::Boolean => Value::Boolean(checker.eval_boolean(expr, ctx)?),
                _ => checker.eval_scalar(expr, ctx)?,
            };
            Ok((value, checker.stats()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book></lib>"#;

    #[test]
    fn compile_is_document_independent() {
        let q = CompiledQuery::compile("/lib/book/title").unwrap();
        assert_eq!(q.fragment(), Fragment::PF);
        assert_eq!(q.strategy(), EvalStrategy::CoreXPathLinear);
        let d1 = parse_xml(BOOKS).unwrap();
        let d2 = parse_xml("<lib><book><title>Z</title></book></lib>").unwrap();
        assert_eq!(q.run(&d1).unwrap().value.expect_nodes().len(), 2);
        assert_eq!(q.run(&d2).unwrap().value.expect_nodes().len(), 1);
    }

    #[test]
    fn plans_follow_the_papers_recommendation() {
        let cases = [
            ("/a/b/c", EvalStrategy::CoreXPathLinear),
            ("//a[not(child::b)]", EvalStrategy::CoreXPathLinear),
            (
                "//a[position() = last()]",
                EvalStrategy::Parallel { threads: 3 },
            ),
            ("count(//a) > 2", EvalStrategy::ContextValueTable),
        ];
        let opts = CompileOptions {
            threads: 3,
            ..CompileOptions::default()
        };
        for (src, plan) in cases {
            let q = CompiledQuery::compile_with(src, &opts).unwrap();
            assert_eq!(q.strategy(), plan, "{src}");
        }
    }

    #[test]
    fn normalization_can_lower_the_fragment_and_the_plan() {
        // Iterated predicates are forbidden in pXPath (Definition 6.1,
        // restriction 1), so the raw query sits in full XPath; the
        // Remark 5.2 merge turns them into a single conjunction, which
        // drops the query into pXPath and unlocks the parallel plan.
        let src = "//a[@x = 'v'][child::b]";
        let raw = CompiledQuery::compile_with(
            src,
            &CompileOptions {
                normalize: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(raw.fragment(), Fragment::XPath);
        assert_eq!(raw.strategy(), EvalStrategy::ContextValueTable);
        let merged = CompiledQuery::compile(src).unwrap();
        assert_eq!(merged.fragment(), Fragment::PXPath);
        assert!(matches!(merged.strategy(), EvalStrategy::Parallel { .. }));
    }

    #[test]
    fn with_strategy_overrides_the_plan() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = CompiledQuery::compile("/lib/book[child::cite]/title").unwrap();
        let reference = q.run(&doc).unwrap().value;
        for strategy in [
            EvalStrategy::ContextValueTable,
            EvalStrategy::Naive,
            EvalStrategy::Parallel { threads: 2 },
            EvalStrategy::SingletonSuccess,
        ] {
            let got = q.clone().with_strategy(strategy).run(&doc).unwrap().value;
            assert_eq!(got, reference, "{strategy:?}");
        }
    }

    #[test]
    fn compile_reports_parse_errors() {
        let err = CompiledQuery::compile("///not valid").unwrap_err();
        assert!(matches!(err, EvalError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn run_many_shares_the_context_value_tables() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = CompiledQuery::compile("count(child::book)").unwrap();
        assert_eq!(q.strategy(), EvalStrategy::ContextValueTable);
        let lib = doc.first_child(doc.root()).unwrap();
        let ctxs = vec![Context::new(lib, 1, 1); 3];
        let outs = q.run_many(&doc, &ctxs).unwrap();
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert_eq!(o.value, Value::Number(2.0));
        }
        // The second and third runs hit the shared memo instead of
        // recomputing: cumulative evaluations stay flat.
        assert_eq!(outs[1].stats.evaluations, outs[0].stats.evaluations);
        assert!(outs[2].stats.cache_hits > outs[0].stats.cache_hits);
    }

    #[test]
    fn stats_flow_through_query_output() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = CompiledQuery::compile("//book")
            .unwrap()
            .with_strategy(EvalStrategy::ContextValueTable);
        let out = q.run(&doc).unwrap();
        assert!(out.stats.evaluations > 0);
        assert!(out.stats.table_entries > 0);
        let naive = q.with_strategy(EvalStrategy::Naive).run(&doc).unwrap();
        assert!(naive.stats.evaluations > 0);
        assert!(naive.stats.max_intermediate_list > 0);
    }

    #[test]
    fn every_strategy_reports_nonzero_work() {
        // The linear, parallel and Singleton-Success evaluators historically
        // returned all-zero stats; every strategy now counts its work.
        let doc = parse_xml(BOOKS).unwrap();
        let q = CompiledQuery::compile("//book[child::cite]/title").unwrap();
        for strategy in [
            EvalStrategy::ContextValueTable,
            EvalStrategy::Naive,
            EvalStrategy::CoreXPathLinear,
            EvalStrategy::Parallel { threads: 2 },
            EvalStrategy::SingletonSuccess,
        ] {
            let out = q.clone().with_strategy(strategy).run(&doc).unwrap();
            assert!(out.stats.evaluations > 0, "{strategy:?}: {:?}", out.stats);
            assert!(
                out.stats.step_context_evaluations > 0,
                "{strategy:?}: {:?}",
                out.stats
            );
        }
    }

    #[test]
    fn prepared_evaluation_agrees_with_unprepared() {
        let doc = parse_xml(BOOKS).unwrap();
        let prepared = xpeval_dom::PreparedDocument::new(doc.clone());
        for (src, strategy) in [
            ("/lib/book/title", None),
            ("//book[@year = 2003]", None),
            ("count(//book)", None),
            ("//book[not(child::cite)]", Some(EvalStrategy::Naive)),
            (
                "//book[position() = last()]",
                Some(EvalStrategy::SingletonSuccess),
            ),
        ] {
            let mut q = CompiledQuery::compile(src).unwrap();
            if let Some(s) = strategy {
                q = q.with_strategy(s);
            }
            let plain = q.run(&doc).unwrap().value;
            let fast = q.run_prepared(&prepared).unwrap().value;
            assert_eq!(plain, fast, "{src}");
        }
    }

    #[test]
    fn auto_parallel_plans_degrade_sequentially_on_small_documents() {
        let opts = CompileOptions {
            threads: 4,
            ..CompileOptions::default()
        };
        let q = CompiledQuery::compile_with("//a[position() = last()]", &opts).unwrap();
        assert_eq!(q.strategy(), EvalStrategy::Parallel { threads: 4 });
        // Below the threshold the spawn overhead is not worth it...
        assert_eq!(q.strategy_for(10), EvalStrategy::SingletonSuccess);
        assert_eq!(
            q.strategy_for(PARALLEL_MIN_NODES - 1),
            EvalStrategy::SingletonSuccess
        );
        // ...at and above it the parallel plan stands.
        assert_eq!(
            q.strategy_for(PARALLEL_MIN_NODES),
            EvalStrategy::Parallel { threads: 4 }
        );
        // Explicit strategy choices are never re-tuned.
        let fixed = q.with_strategy(EvalStrategy::Parallel { threads: 4 });
        assert_eq!(
            fixed.strategy_for(10),
            EvalStrategy::Parallel { threads: 4 }
        );
        // Non-parallel plans are unaffected.
        let linear = CompiledQuery::compile("/a/b").unwrap();
        assert_eq!(linear.strategy_for(10), EvalStrategy::CoreXPathLinear);
    }

    #[test]
    fn selective_queries_degrade_auto_parallel_plans() {
        use xpeval_dom::DocumentBuilder;
        // A large document (well above PARALLEL_MIN_NODES) where tag "rare"
        // occurs a handful of times and tag "common" everywhere.
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        for i in 0..PARALLEL_MIN_NODES * 2 {
            if i % 500 == 0 {
                b.leaf_element("rare");
            } else {
                b.leaf_element("common");
            }
        }
        b.close_element();
        let prepared = b.finish().prepare();
        assert!(prepared.node_count() >= 2 * PARALLEL_MIN_NODES);

        let opts = CompileOptions {
            threads: 4,
            ..CompileOptions::default()
        };
        let rare = CompiledQuery::compile_with("//rare[position() = last()]", &opts).unwrap();
        assert!(matches!(rare.strategy(), EvalStrategy::Parallel { .. }));
        // Tag selectivity says at most a few candidates: sequential wins.
        assert_eq!(
            rare.strategy_for_source(&prepared),
            EvalStrategy::SingletonSuccess
        );
        // The size-only rule cannot see that.
        assert!(matches!(
            rare.strategy_for(prepared.node_count()),
            EvalStrategy::Parallel { .. }
        ));
        // A non-selective query keeps the parallel plan...
        let common = CompiledQuery::compile_with("//common[position() = last()]", &opts).unwrap();
        assert!(matches!(
            common.strategy_for_source(&prepared),
            EvalStrategy::Parallel { .. }
        ));
        // ...and so does a selective query on an unindexed source (the
        // signal is simply unavailable there).
        assert!(matches!(
            rare.strategy_for_source(prepared.document()),
            EvalStrategy::Parallel { .. }
        ));
        // Explicit strategy choices are never re-tuned.
        let fixed = rare
            .clone()
            .with_strategy(EvalStrategy::Parallel { threads: 4 });
        assert!(matches!(
            fixed.strategy_for_source(&prepared),
            EvalStrategy::Parallel { .. }
        ));
        // And the degraded plan still computes the same answer.
        assert_eq!(
            rare.run_prepared(&prepared).unwrap().value,
            rare.run(prepared.document()).unwrap().value
        );
    }

    #[test]
    fn missing_order_table_degrades_auto_parallel_plans() {
        use xpeval_dom::{CapabilityMask, DocumentBuilder, SourceCapabilities};
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        for _ in 0..PARALLEL_MIN_NODES * 2 {
            b.leaf_element("common");
        }
        b.close_element();
        let prepared = b.finish().prepare();
        let opts = CompileOptions {
            threads: 4,
            ..CompileOptions::default()
        };
        let q = CompiledQuery::compile_with("//common[position() = last()]", &opts).unwrap();
        assert!(matches!(
            q.strategy_for_source(&prepared),
            EvalStrategy::Parallel { .. }
        ));
        // Same document behind a backend that withholds the order table:
        // the degrade is explicit, not a silent slow path.
        let no_order = CapabilityMask::new(
            prepared.clone(),
            SourceCapabilities {
                order_table: false,
                ..SourceCapabilities::FULL
            },
        );
        assert_eq!(
            q.strategy_for_source(&no_order),
            EvalStrategy::SingletonSuccess
        );
        // The degraded plan agrees with the reference.
        assert_eq!(
            q.clone()
                .with_strategy(q.strategy_for_source(&no_order))
                .run_prepared(&prepared)
                .unwrap()
                .value,
            q.run_prepared(&prepared).unwrap().value
        );
        // A masked source also declines tag-id pinning at specialize time.
        let specialized = q.specialize_for_source(&CapabilityMask::new(
            prepared.clone(),
            SourceCapabilities::NONE,
        ));
        assert_eq!(specialized.strategy(), EvalStrategy::SingletonSuccess);
        assert_eq!(
            specialized.run_prepared(&prepared).unwrap().value,
            q.run_prepared(&prepared).unwrap().value
        );
        // Explicit strategy choices remain untouched even here.
        let fixed = q.with_strategy(EvalStrategy::Parallel { threads: 4 });
        assert!(matches!(
            fixed.strategy_for_source(&no_order),
            EvalStrategy::Parallel { .. }
        ));
    }

    #[test]
    fn specialize_pins_the_source_aware_choice() {
        use xpeval_dom::DocumentBuilder;
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        for i in 0..PARALLEL_MIN_NODES * 2 {
            if i % 500 == 0 {
                b.leaf_element("rare");
            } else {
                b.leaf_element("common");
            }
        }
        b.close_element();
        let prepared = b.finish().prepare();
        let opts = CompileOptions {
            threads: 4,
            ..CompileOptions::default()
        };
        let q = CompiledQuery::compile_with("//rare[position() = last()]", &opts).unwrap();
        assert!(matches!(q.strategy(), EvalStrategy::Parallel { .. }));
        let specialized = q.specialize_for_source(&prepared);
        // The degraded choice is now the plan itself — no per-run probing.
        assert_eq!(specialized.strategy(), EvalStrategy::SingletonSuccess);
        assert_eq!(
            specialized.strategy_for_source(&prepared),
            EvalStrategy::SingletonSuccess
        );
        // Same answer, either way.
        assert_eq!(
            specialized.run_prepared(&prepared).unwrap().value,
            q.run_prepared(&prepared).unwrap().value
        );
    }

    #[test]
    fn run_streaming_yields_run_in_document_order() {
        let doc = parse_xml(BOOKS).unwrap();
        let prepared = xpeval_dom::PreparedDocument::new(doc.clone());
        for strategy in [
            EvalStrategy::ContextValueTable,
            EvalStrategy::Naive,
            EvalStrategy::CoreXPathLinear,
            EvalStrategy::SingletonSuccess,
            EvalStrategy::Parallel { threads: 2 },
        ] {
            let q = CompiledQuery::compile("//book/title | //cite")
                .unwrap()
                .with_strategy(strategy);
            let expected = q.run(&doc).unwrap().value.into_nodes().unwrap();
            let streamed = q.run_streaming(&doc).unwrap().collect_nodes().unwrap();
            assert_eq!(streamed, expected, "{strategy:?}");
            let streamed = q
                .run_streaming_prepared(&prepared)
                .unwrap()
                .collect_nodes()
                .unwrap();
            assert_eq!(streamed, expected, "{strategy:?} (prepared)");
        }
    }

    #[test]
    fn streaming_scalar_queries_is_a_type_error() {
        let doc = parse_xml(BOOKS).unwrap();
        for strategy in [
            EvalStrategy::ContextValueTable,
            EvalStrategy::SingletonSuccess,
        ] {
            let q = CompiledQuery::compile("1 + 2")
                .unwrap()
                .with_strategy(strategy);
            assert!(matches!(
                q.run_streaming(&doc).unwrap_err(),
                EvalError::TypeError { .. }
            ));
        }
    }

    #[test]
    fn compile_validates_function_calls() {
        // Unknown names and mis-arity calls fail at compile time, before
        // any document exists — including calls inside predicates.
        let err = CompiledQuery::compile("frobnicate(//a)").unwrap_err();
        assert!(matches!(err, EvalError::UnknownFunction { .. }), "{err:?}");
        for bad in [
            "count(//a, //b)",
            "substring('abc')",
            "//a[concat('x')]",
            "position(1)",
        ] {
            let err = CompiledQuery::compile(bad).unwrap_err();
            assert!(
                matches!(err, EvalError::WrongArity { .. }),
                "{bad}: {err:?}"
            );
        }
        // The same spellings pass with a correct argument count.
        for good in ["count(//a)", "substring('abc', 2)", "//a[concat('x', 'y')]"] {
            CompiledQuery::compile(good).unwrap();
        }
    }

    #[test]
    fn registered_functions_compile_run_and_degrade() {
        use crate::registry::{FragmentImpact, FunctionSignature};
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("double", 1, Some(1))
                .returns_number()
                .impact(FragmentImpact::CoreSafe),
            |args, _, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
        );
        registry.register(
            // Default contract: General impact, string return.
            FunctionSignature::new("shout", 1, Some(1)),
            |args, _, doc| Ok(Value::Str(args[0].to_xpath_string(doc).to_uppercase())),
        );
        let registry = Arc::new(registry);
        let doc = parse_xml(BOOKS).unwrap();

        // A core-safe registration keeps the classifier's verdict — the
        // query stays in pXPath and gets the linear-bound parallel plan,
        // never the context-value-table fallback.
        let q = CompiledQuery::compile_with_registry(
            "//book[double(@year) = 4006]/title",
            registry.clone(),
        )
        .unwrap();
        assert_eq!(q.fragment(), Fragment::PXPath);
        assert!(matches!(q.strategy(), EvalStrategy::Parallel { .. }));
        let out = q.run(&doc).unwrap();
        let nodes = out.value.expect_nodes();
        assert_eq!(nodes.len(), 1);
        assert_eq!(doc.string_value(nodes[0]), "B");

        // A general registration degrades the plan to full XPath → CVT.
        let q = CompiledQuery::compile_with_registry(
            "//book[shout(title) = 'B']/title",
            registry.clone(),
        )
        .unwrap();
        assert_eq!(q.fragment(), Fragment::XPath);
        assert_eq!(q.strategy(), EvalStrategy::ContextValueTable);
        let out = q.run(&doc).unwrap();
        let nodes = out.value.expect_nodes();
        assert_eq!(nodes.len(), 1);
        assert_eq!(doc.string_value(nodes[0]), "B");

        // Registered signatures are enforced at compile time like built-ins.
        let err = CompiledQuery::compile_with_registry("double(1, 2)", registry).unwrap_err();
        assert!(matches!(err, EvalError::WrongArity { .. }), "{err:?}");
        // Without the registration the name is simply unknown.
        let err = CompiledQuery::compile("double(1)").unwrap_err();
        assert!(matches!(err, EvalError::UnknownFunction { .. }), "{err:?}");
    }

    #[test]
    fn bound_runs_reuse_one_compilation() {
        let doc = parse_xml(BOOKS).unwrap();
        let prepared = xpeval_dom::PreparedDocument::new(doc.clone());
        let q = CompiledQuery::compile("//book[@year = $year]/title").unwrap();
        assert_eq!(q.variables(), ["year".to_string()]);
        let title = |bindings: &Bindings| {
            let out = q.run_bound(&doc, bindings).unwrap();
            out.value
                .expect_nodes()
                .iter()
                .map(|&n| doc.string_value(n))
                .collect::<Vec<String>>()
        };
        // One compilation, many parameterizations.
        assert_eq!(title(&Bindings::new().with_number("year", 2001.0)), ["A"]);
        assert_eq!(title(&Bindings::new().with_number("year", 2003.0)), ["B"]);
        assert_eq!(
            title(&Bindings::new().with_number("year", 1999.0)),
            Vec::<String>::new()
        );
        // The prepared path takes the same bindings.
        let b = Bindings::new().with_number("year", 2003.0);
        assert_eq!(
            q.run_prepared_bound(&prepared, &b).unwrap().value,
            q.run_bound(&doc, &b).unwrap().value
        );
        // A missing binding errors eagerly, before any document work...
        let err = q.run_bound(&doc, &Bindings::new()).unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable { .. }), "{err:?}");
        // ...and the binding-less entry points report the same error lazily.
        let err = q.run(&doc).unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable { .. }), "{err:?}");
        // Batch evaluation shares one binding set across contexts.
        let ctxs = [Context::root(&doc), Context::root(&doc)];
        let outs = q.run_many_bound(&doc, &ctxs, &b).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].value, outs[1].value);
    }

    #[test]
    fn visitor_stops_early() {
        let doc = parse_xml(BOOKS).unwrap();
        let prepared = xpeval_dom::PreparedDocument::new(doc.clone());
        let q = CompiledQuery::compile("//title").unwrap();
        let mut seen = Vec::new();
        let visited = q
            .run_visit(&doc, |n| {
                seen.push(n);
                seen.len() < 2
            })
            .unwrap();
        assert_eq!(visited, 2);
        assert_eq!(seen.len(), 2);
        let all = q.run_visit_prepared(&prepared, |_| true).unwrap();
        assert_eq!(all, 2);
    }
}
