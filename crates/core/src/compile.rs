//! The compile-once half of the query pipeline.
//!
//! The paper splits XPath evaluation cost in two: a *per-query* static
//! analysis (parse, classify into the Figure 1 fragment lattice, pick the
//! algorithm its complexity result recommends) and a *per-document*
//! evaluation.  [`CompiledQuery`] materializes that split: it owns the
//! parsed and normalized AST, its [`FragmentReport`] and a pre-selected
//! [`EvalStrategy`] plan, and is **document-independent** — compile a query
//! once and [`run`](CompiledQuery::run) it against any number of documents
//! and contexts.
//!
//! All five evaluation strategies are driven through the compiled form;
//! see [`CompiledQuery::run_with_context`].  Batch evaluation over many
//! contexts ([`CompiledQuery::run_many`]) shares the DP evaluator's
//! context-value tables across the whole batch, which is exactly the
//! amortization Proposition 2.7's polynomial bound comes from.

use crate::context::Context;
use crate::corexpath::CoreXPathEvaluator;
use crate::dp::DpEvaluator;
use crate::engine::EvalStrategy;
use crate::error::EvalError;
use crate::naive::NaiveEvaluator;
use crate::parallel::ParallelEvaluator;
use crate::stats::EvalStats;
use crate::success::SingletonSuccess;
use crate::value::Value;
use xpeval_dom::Document;
use xpeval_syntax::ast::ExprType;
use xpeval_syntax::normalize::expand_iterated_predicates;
use xpeval_syntax::{classify, Expr, Fragment, FragmentReport};

/// Options controlling compilation; the builder's
/// [`crate::EngineBuilder`] produces these from its configuration.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Fixed strategy, or `None` to let the classifier pick the one the
    /// paper recommends for the query's fragment.
    pub strategy: Option<EvalStrategy>,
    /// Worker threads used when the plan is [`EvalStrategy::Parallel`].
    pub threads: usize,
    /// Apply the semantics-preserving Remark 5.2 normalization (merge
    /// iterated predicates) before classification.
    pub normalize: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            strategy: None,
            threads: default_threads(),
            normalize: true,
        }
    }
}

/// The number of worker threads used when none is configured.  The
/// `available_parallelism` syscall is made once and cached: compilation is
/// on the serving hot path when a plan cache misses.
pub fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The strategy the paper recommends for a classified query: linear
/// set-at-a-time evaluation for the Core XPath fragments, parallel
/// Singleton-Success evaluation for the LOGCFL fragments (Remark 5.6), and
/// the polynomial context-value-table algorithm for everything else.
pub fn recommended_strategy(report: &FragmentReport, threads: usize) -> EvalStrategy {
    match report.fragment {
        Fragment::PF | Fragment::PositiveCoreXPath | Fragment::CoreXPath => {
            EvalStrategy::CoreXPathLinear
        }
        Fragment::PWF | Fragment::PXPath => EvalStrategy::Parallel { threads },
        _ => EvalStrategy::ContextValueTable,
    }
}

/// The result of one evaluation: the XPath value, the unified work counters
/// of the strategy that ran, and the fragment the query was classified into.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// The XPath 1.0 value the query evaluated to.
    pub value: Value,
    /// Work counters of the evaluation (all-zero for strategies that do not
    /// count work; see [`EvalStats`]).
    pub stats: EvalStats,
    /// Least fragment of Figure 1 containing the compiled query.
    pub fragment: Fragment,
}

impl QueryOutput {
    /// Consumes the output, returning just the value.
    pub fn into_value(self) -> Value {
        self.value
    }
}

/// A query compiled once — parsed, normalized, classified, planned — and
/// evaluatable many times, against any document.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledQuery {
    source: String,
    expr: Expr,
    report: FragmentReport,
    plan: EvalStrategy,
}

impl CompiledQuery {
    /// Compiles a query string with default options: automatic strategy
    /// selection and all available threads.
    pub fn compile(source: &str) -> Result<Self, EvalError> {
        Self::compile_with(source, &CompileOptions::default())
    }

    /// Compiles a query string with explicit options.
    pub fn compile_with(source: &str, options: &CompileOptions) -> Result<Self, EvalError> {
        let expr = xpeval_syntax::parse_query(source)?;
        Ok(Self::build(source.to_string(), expr, options))
    }

    /// Compiles an already-parsed expression with default options.
    pub fn from_expr(expr: Expr) -> Self {
        Self::from_expr_with(expr, &CompileOptions::default())
    }

    /// Compiles an already-parsed expression with explicit options.
    pub fn from_expr_with(expr: Expr, options: &CompileOptions) -> Self {
        let source = expr.to_string();
        Self::build(source, expr, options)
    }

    fn build(source: String, expr: Expr, options: &CompileOptions) -> Self {
        // Remark 5.2: merging iterated predicates is semantics-preserving
        // (the rewrite skips any step where it would not be) and can only
        // move the query *down* the fragment lattice, enabling a cheaper
        // plan — so classify after normalizing.
        let expr = if options.normalize {
            expand_iterated_predicates(&expr)
        } else {
            expr
        };
        let report = classify(&expr);
        let plan = options
            .strategy
            .unwrap_or_else(|| recommended_strategy(&report, options.threads.max(1)));
        CompiledQuery {
            source,
            expr,
            report,
            plan,
        }
    }

    /// The query string this plan was compiled from (the canonical printed
    /// form when compiled from an AST).
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The normalized AST.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The full classification report (Figure 1).
    pub fn report(&self) -> &FragmentReport {
        &self.report
    }

    /// Least fragment of Figure 1 containing the query.
    pub fn fragment(&self) -> Fragment {
        self.report.fragment
    }

    /// The evaluation strategy this plan will dispatch to.
    pub fn strategy(&self) -> EvalStrategy {
        self.plan
    }

    /// The same compiled query with a different strategy; classification is
    /// not redone.
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.plan = strategy;
        self
    }

    /// Evaluates against a document from the canonical root context.
    pub fn run(&self, doc: &Document) -> Result<QueryOutput, EvalError> {
        self.run_with_context(doc, Context::root(doc))
    }

    /// Evaluates against a document from an explicit context triple.
    pub fn run_with_context(&self, doc: &Document, ctx: Context) -> Result<QueryOutput, EvalError> {
        let (value, stats) = execute(self.plan, doc, &self.expr, ctx)?;
        Ok(QueryOutput {
            value,
            stats,
            fragment: self.report.fragment,
        })
    }

    /// Batch evaluation: runs the query once per context, in order.
    ///
    /// For the [`EvalStrategy::ContextValueTable`] plan a single evaluator
    /// (and hence a single set of context-value tables) is shared across the
    /// whole batch, so repeated subexpression/context pairs are computed
    /// only once — per-context stats are cumulative in that case.
    pub fn run_many(
        &self,
        doc: &Document,
        contexts: &[Context],
    ) -> Result<Vec<QueryOutput>, EvalError> {
        match self.plan {
            EvalStrategy::ContextValueTable => {
                let mut ev = DpEvaluator::new(doc, &self.expr);
                let mut out = Vec::with_capacity(contexts.len());
                for &ctx in contexts {
                    let value = ev.evaluate_with_context(ctx)?;
                    out.push(QueryOutput {
                        value,
                        stats: ev.stats(),
                        fragment: self.report.fragment,
                    });
                }
                Ok(out)
            }
            _ => contexts
                .iter()
                .map(|&ctx| self.run_with_context(doc, ctx))
                .collect(),
        }
    }

    /// Convenience: evaluates from the root context and returns just the
    /// value.
    pub fn value(&self, doc: &Document) -> Result<Value, EvalError> {
        self.run(doc).map(|o| o.value)
    }
}

impl std::fmt::Display for CompiledQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}; {:?}]",
            self.source, self.report.fragment, self.plan
        )
    }
}

/// Dispatches one evaluation to a strategy.  This is the single funnel every
/// public evaluation entry point goes through.
pub(crate) fn execute(
    strategy: EvalStrategy,
    doc: &Document,
    expr: &Expr,
    ctx: Context,
) -> Result<(Value, EvalStats), EvalError> {
    match strategy {
        EvalStrategy::ContextValueTable => {
            let mut ev = DpEvaluator::new(doc, expr);
            let value = ev.evaluate_with_context(ctx)?;
            Ok((value, ev.stats()))
        }
        EvalStrategy::Naive => {
            let mut ev = NaiveEvaluator::new(doc);
            let value = ev.evaluate_with_context(expr, ctx)?;
            Ok((value, ev.stats()))
        }
        EvalStrategy::CoreXPathLinear => {
            let ev = CoreXPathEvaluator::new(doc);
            let nodes = ev.evaluate_from(expr, &[ctx.node])?;
            Ok((Value::NodeSet(nodes), EvalStats::default()))
        }
        EvalStrategy::Parallel { threads } => {
            let ev = ParallelEvaluator::new(doc, threads);
            let value = ev.evaluate_with_context(expr, ctx)?;
            Ok((value, EvalStats::default()))
        }
        EvalStrategy::SingletonSuccess => {
            let checker = SingletonSuccess::new(doc, expr)?;
            let value = match expr.expr_type() {
                ExprType::NodeSet => Value::NodeSet(checker.node_set(ctx)?),
                ExprType::Boolean => Value::Boolean(checker.eval_boolean(expr, ctx)?),
                _ => checker.eval_scalar(expr, ctx)?,
            };
            Ok((value, EvalStats::default()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book></lib>"#;

    #[test]
    fn compile_is_document_independent() {
        let q = CompiledQuery::compile("/lib/book/title").unwrap();
        assert_eq!(q.fragment(), Fragment::PF);
        assert_eq!(q.strategy(), EvalStrategy::CoreXPathLinear);
        let d1 = parse_xml(BOOKS).unwrap();
        let d2 = parse_xml("<lib><book><title>Z</title></book></lib>").unwrap();
        assert_eq!(q.run(&d1).unwrap().value.expect_nodes().len(), 2);
        assert_eq!(q.run(&d2).unwrap().value.expect_nodes().len(), 1);
    }

    #[test]
    fn plans_follow_the_papers_recommendation() {
        let cases = [
            ("/a/b/c", EvalStrategy::CoreXPathLinear),
            ("//a[not(child::b)]", EvalStrategy::CoreXPathLinear),
            (
                "//a[position() = last()]",
                EvalStrategy::Parallel { threads: 3 },
            ),
            ("count(//a) > 2", EvalStrategy::ContextValueTable),
        ];
        let opts = CompileOptions {
            threads: 3,
            ..CompileOptions::default()
        };
        for (src, plan) in cases {
            let q = CompiledQuery::compile_with(src, &opts).unwrap();
            assert_eq!(q.strategy(), plan, "{src}");
        }
    }

    #[test]
    fn normalization_can_lower_the_fragment_and_the_plan() {
        // Iterated predicates are forbidden in pXPath (Definition 6.1,
        // restriction 1), so the raw query sits in full XPath; the
        // Remark 5.2 merge turns them into a single conjunction, which
        // drops the query into pXPath and unlocks the parallel plan.
        let src = "//a[@x = 'v'][child::b]";
        let raw = CompiledQuery::compile_with(
            src,
            &CompileOptions {
                normalize: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(raw.fragment(), Fragment::XPath);
        assert_eq!(raw.strategy(), EvalStrategy::ContextValueTable);
        let merged = CompiledQuery::compile(src).unwrap();
        assert_eq!(merged.fragment(), Fragment::PXPath);
        assert!(matches!(merged.strategy(), EvalStrategy::Parallel { .. }));
    }

    #[test]
    fn with_strategy_overrides_the_plan() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = CompiledQuery::compile("/lib/book[child::cite]/title").unwrap();
        let reference = q.run(&doc).unwrap().value;
        for strategy in [
            EvalStrategy::ContextValueTable,
            EvalStrategy::Naive,
            EvalStrategy::Parallel { threads: 2 },
            EvalStrategy::SingletonSuccess,
        ] {
            let got = q.clone().with_strategy(strategy).run(&doc).unwrap().value;
            assert_eq!(got, reference, "{strategy:?}");
        }
    }

    #[test]
    fn compile_reports_parse_errors() {
        let err = CompiledQuery::compile("///not valid").unwrap_err();
        assert!(matches!(err, EvalError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn run_many_shares_the_context_value_tables() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = CompiledQuery::compile("count(child::book)").unwrap();
        assert_eq!(q.strategy(), EvalStrategy::ContextValueTable);
        let lib = doc.first_child(doc.root()).unwrap();
        let ctxs = vec![Context::new(lib, 1, 1); 3];
        let outs = q.run_many(&doc, &ctxs).unwrap();
        assert_eq!(outs.len(), 3);
        for o in &outs {
            assert_eq!(o.value, Value::Number(2.0));
        }
        // The second and third runs hit the shared memo instead of
        // recomputing: cumulative evaluations stay flat.
        assert_eq!(outs[1].stats.evaluations, outs[0].stats.evaluations);
        assert!(outs[2].stats.cache_hits > outs[0].stats.cache_hits);
    }

    #[test]
    fn stats_flow_through_query_output() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = CompiledQuery::compile("//book")
            .unwrap()
            .with_strategy(EvalStrategy::ContextValueTable);
        let out = q.run(&doc).unwrap();
        assert!(out.stats.evaluations > 0);
        assert!(out.stats.table_entries > 0);
        let naive = q.with_strategy(EvalStrategy::Naive).run(&doc).unwrap();
        assert!(naive.stats.evaluations > 0);
        assert!(naive.stats.max_intermediate_list > 0);
    }
}
