//! # xpeval-core — XPath evaluation engines
//!
//! This crate implements the evaluation algorithms studied in
//! *"The Complexity of XPath Query Evaluation"* (Gottlob, Koch, Pichler;
//! PODS 2003) together with the baselines they are compared against:
//!
//! | Module | Algorithm | Paper reference |
//! |---|---|---|
//! | [`dp`] | Context-value-table dynamic programming (polynomial combined complexity) | Proposition 2.7, Theorem 7.2 |
//! | [`naive`] | Direct per-context re-evaluation (exponential in the query, as in contemporary engines) | Section 1 |
//! | [`corexpath`] | Set-at-a-time O(&#124;D&#124;·&#124;Q&#124;) evaluation of Core XPath | Proposition 2.7 |
//! | [`success`] | The Singleton-Success NAuxPDA decision procedure | Definition 5.3, Lemma 5.4, Table 1 |
//! | [`parallel`] | Data-parallel evaluation of pWF/pXPath via Singleton-Success | Theorems 5.5/6.2, Remark 5.6 |
//!
//! Shared infrastructure: the XPath value domain ([`value`]), contexts and
//! context-value-table keys ([`context`]), the core function library
//! ([`functions`]) and the step semantics ([`steps`]).  The [`engine`]
//! module offers a single façade over all strategies.

pub mod context;
pub mod corexpath;
pub mod dp;
pub mod engine;
pub mod error;
pub mod functions;
pub mod naive;
pub mod parallel;
pub mod steps;
pub mod success;
pub mod value;

pub use context::{Context, ContextKey};
pub use corexpath::{CoreXPathEvaluator, NodeBitSet};
pub use dp::{DpEvaluator, DpStats};
pub use engine::{Engine, EvalStrategy};
pub use error::EvalError;
pub use naive::{NaiveEvaluator, NaiveStats};
pub use parallel::ParallelEvaluator;
pub use success::{SingletonSuccess, SuccessTarget};
pub use value::Value;
