//! # xpeval-core — XPath evaluation engines
//!
//! This crate implements the evaluation algorithms studied in
//! *"The Complexity of XPath Query Evaluation"* (Gottlob, Koch, Pichler;
//! PODS 2003) together with the baselines they are compared against:
//!
//! | Module | Algorithm | Paper reference |
//! |---|---|---|
//! | [`dp`] | Context-value-table dynamic programming (polynomial combined complexity) | Proposition 2.7, Theorem 7.2 |
//! | [`naive`] | Direct per-context re-evaluation (exponential in the query, as in contemporary engines) | Section 1 |
//! | [`corexpath`] | Set-at-a-time O(&#124;D&#124;·&#124;Q&#124;) evaluation of Core XPath | Proposition 2.7 |
//! | [`success`] | The Singleton-Success NAuxPDA decision procedure | Definition 5.3, Lemma 5.4, Table 1 |
//! | [`parallel`] | Data-parallel evaluation of pWF/pXPath via Singleton-Success | Theorems 5.5/6.2, Remark 5.6 |
//!
//! Shared infrastructure: the XPath value domain ([`value`]), contexts and
//! context-value-table keys ([`context`]), the core function library
//! ([`functions`]) and the step semantics ([`steps`]).
//!
//! ## The compile-once pipeline
//!
//! The public entry points mirror the paper's cost split into per-query
//! analysis and per-document evaluation:
//!
//! * [`compile`] — [`CompiledQuery`] owns the parsed + normalized AST, its
//!   [`xpeval_syntax::FragmentReport`] and a pre-selected [`EvalStrategy`]
//!   plan; it is document-independent and evaluated via
//!   [`CompiledQuery::run`] / [`CompiledQuery::run_many`], returning a
//!   [`QueryOutput`] with the unified [`EvalStats`].
//! * [`cache`] — a bounded LRU [`PlanCache`] keyed by query string, sharded
//!   under concurrency ([`ShardedPlanCache`]), plus the [`DocumentCache`]
//!   memoizing per-document index preparation; all with observable
//!   [`CacheStats`].
//! * [`engine`] — [`Engine`], built by [`EngineBuilder`], drives the plan
//!   and document caches and offers one-shot, batch and `*_prepared`
//!   evaluation over compiled queries.
//!
//! ## The prepare-once document side
//!
//! [`xpeval_dom::PreparedDocument`] is the document-side mirror of
//! [`CompiledQuery`]: built once per document, it carries tag-name indexes,
//! preorder subtree intervals and position tables.  Every evaluator
//! consumes documents through the [`xpeval_dom::AxisSource`] trait, so both
//! plain and prepared documents work everywhere; [`stream`] adds
//! [`NodeStream`], the lazy node-set result iterator behind
//! [`CompiledQuery::run_streaming`].

pub mod bindings;
pub mod cache;
pub mod compile;
pub mod context;
pub mod corexpath;
pub mod dp;
pub mod engine;
pub mod error;
pub mod exec;
pub mod functions;
pub mod ir;
pub mod naive;
pub mod parallel;
pub mod registry;
pub mod stats;
pub mod steps;
pub mod stream;
pub mod success;
pub mod value;

pub use bindings::Bindings;
pub use cache::{CacheStats, DocKey, DocumentCache, PlanCache, ShardStats, ShardedPlanCache};
pub use compile::{
    default_threads, recommended_strategy, recommended_strategy_for_document,
    recommended_strategy_for_source, CompileOptions, CompiledQuery, QueryOutput,
    PARALLEL_MIN_CANDIDATES, PARALLEL_MIN_NODES,
};
pub use context::{Context, ContextKey};
pub use corexpath::{CoreXPathEvaluator, NodeBitSet};
pub use dp::{DpEvaluator, DpStats};
pub use engine::{Engine, EngineBuilder, EvalStrategy};
pub use error::EvalError;
pub use ir::{OpId, OpIr, OpKind, PlanIr, StepIr, StepSelectivity};
pub use naive::{NaiveEvaluator, NaiveStats};
pub use parallel::ParallelEvaluator;
pub use registry::{FragmentImpact, FunctionHandler, FunctionRegistry, FunctionSignature};
pub use stats::EvalStats;
pub use stream::{NodeStream, StreamMode};
pub use success::{SingletonSuccess, SuccessTarget};
pub use value::Value;
