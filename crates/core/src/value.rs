//! The XPath 1.0 value domain and its coercion rules.
//!
//! Every XPath expression evaluates to one of four types (XPath 1.0 §1):
//! node-set, boolean, number or string.  The conversion and comparison rules
//! implemented here (§3.4, §4) are shared by all evaluators in this crate so
//! that they agree bit-for-bit — the cross-evaluator agreement property tests
//! in `tests/` rely on this.

use crate::error::EvalError;
use xpeval_dom::{Document, NodeId};
use xpeval_syntax::RelOp;

/// An XPath 1.0 value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A set of nodes, kept sorted in document order without duplicates.
    NodeSet(Vec<NodeId>),
    Boolean(bool),
    Number(f64),
    Str(String),
}

impl Value {
    /// The empty node set.
    pub fn empty() -> Value {
        Value::NodeSet(Vec::new())
    }

    /// Builds a node-set value, normalizing to document order and removing
    /// duplicates.
    pub fn node_set(doc: &Document, mut nodes: Vec<NodeId>) -> Value {
        doc.sort_document_order(&mut nodes);
        Value::NodeSet(nodes)
    }

    /// True if the value is a node-set.
    pub fn is_node_set(&self) -> bool {
        matches!(self, Value::NodeSet(_))
    }

    /// Boolean conversion (XPath 1.0 §4.3 `boolean()`).
    pub fn to_boolean(&self) -> bool {
        match self {
            Value::NodeSet(ns) => !ns.is_empty(),
            Value::Boolean(b) => *b,
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// Number conversion (XPath 1.0 §4.4 `number()`).
    pub fn to_number(&self, doc: &Document) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Str(s) => parse_xpath_number(s),
            Value::NodeSet(_) => parse_xpath_number(&self.to_xpath_string(doc)),
        }
    }

    /// String conversion (XPath 1.0 §4.2 `string()`).
    pub fn to_xpath_string(&self, doc: &Document) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Boolean(b) => if *b { "true" } else { "false" }.to_string(),
            Value::Number(n) => number_to_string(*n),
            Value::NodeSet(ns) => match ns.first() {
                Some(&n) => doc.string_value(n),
                None => String::new(),
            },
        }
    }

    /// Returns the node set, or an error if the value has a different type.
    pub fn into_nodes(self) -> Result<Vec<NodeId>, EvalError> {
        match self {
            Value::NodeSet(ns) => Ok(ns),
            other => Err(EvalError::type_error(format!(
                "expected a node set, got {}",
                other.type_name()
            ))),
        }
    }

    /// Returns the node set, panicking otherwise.  Convenience for examples
    /// and tests where the query is statically known to be node-set typed.
    pub fn expect_nodes(&self) -> &[NodeId] {
        match self {
            Value::NodeSet(ns) => ns,
            other => panic!("expected a node set, got {}", other.type_name()),
        }
    }

    /// Name of the value's type as used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::NodeSet(_) => "node-set",
            Value::Boolean(_) => "boolean",
            Value::Number(_) => "number",
            Value::Str(_) => "string",
        }
    }

    /// XPath 1.0 comparison semantics (§3.4), covering the existential
    /// semantics of comparisons that involve node-sets.
    pub fn compare(&self, op: RelOp, other: &Value, doc: &Document) -> bool {
        use Value::*;
        match (self, other) {
            (NodeSet(a), NodeSet(b)) => match op {
                RelOp::Eq | RelOp::Ne => a.iter().any(|&x| {
                    let sx = doc.string_value(x);
                    b.iter().any(|&y| op.apply_str(&sx, &doc.string_value(y)))
                }),
                _ => a.iter().any(|&x| {
                    let nx = parse_xpath_number(&doc.string_value(x));
                    b.iter()
                        .any(|&y| op.apply(nx, parse_xpath_number(&doc.string_value(y))))
                }),
            },
            (NodeSet(a), rhs) => compare_nodeset_scalar(a, op, rhs, doc, false),
            (lhs, NodeSet(b)) => compare_nodeset_scalar(b, op, lhs, doc, true),
            (lhs, rhs) => match op {
                RelOp::Eq | RelOp::Ne => {
                    if matches!(lhs, Boolean(_)) || matches!(rhs, Boolean(_)) {
                        op.apply_bool(lhs.to_boolean(), rhs.to_boolean())
                    } else if matches!(lhs, Number(_)) || matches!(rhs, Number(_)) {
                        op.apply(lhs.to_number(doc), rhs.to_number(doc))
                    } else {
                        op.apply_str(&lhs.to_xpath_string(doc), &rhs.to_xpath_string(doc))
                    }
                }
                _ => op.apply(lhs.to_number(doc), rhs.to_number(doc)),
            },
        }
    }
}

fn compare_nodeset_scalar(
    nodes: &[NodeId],
    op: RelOp,
    scalar: &Value,
    doc: &Document,
    flipped: bool,
) -> bool {
    let op = if flipped { flip(op) } else { op };
    match scalar {
        Value::Boolean(b) => op.apply_bool(!nodes.is_empty(), *b),
        Value::Number(n) => nodes
            .iter()
            .any(|&x| op.apply(parse_xpath_number(&doc.string_value(x)), *n)),
        Value::Str(s) => match op {
            RelOp::Eq | RelOp::Ne => nodes.iter().any(|&x| op.apply_str(&doc.string_value(x), s)),
            _ => nodes.iter().any(|&x| {
                op.apply(
                    parse_xpath_number(&doc.string_value(x)),
                    parse_xpath_number(s),
                )
            }),
        },
        Value::NodeSet(_) => unreachable!("handled by caller"),
    }
}

/// Mirrors an operator across the equality/inequality axis: `a op b` with the
/// node-set on the right becomes `b flipped-op a` with the node-set on the
/// left.
fn flip(op: RelOp) -> RelOp {
    match op {
        RelOp::Eq => RelOp::Eq,
        RelOp::Ne => RelOp::Ne,
        RelOp::Lt => RelOp::Gt,
        RelOp::Le => RelOp::Ge,
        RelOp::Gt => RelOp::Lt,
        RelOp::Ge => RelOp::Le,
    }
}

/// Extension methods on [`RelOp`] for the non-numeric comparison modes.
pub trait RelOpExt {
    fn apply_str(self, a: &str, b: &str) -> bool;
    fn apply_bool(self, a: bool, b: bool) -> bool;
}

impl RelOpExt for RelOp {
    fn apply_str(self, a: &str, b: &str) -> bool {
        match self {
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
            // Relational comparison of strings goes through numbers in
            // XPath 1.0.
            _ => self.apply(parse_xpath_number(a), parse_xpath_number(b)),
        }
    }

    fn apply_bool(self, a: bool, b: bool) -> bool {
        match self {
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
            _ => self.apply(if a { 1.0 } else { 0.0 }, if b { 1.0 } else { 0.0 }),
        }
    }
}

/// Parses a string as an XPath number: optional whitespace, optional minus
/// sign, digits with optional fraction.  Anything else is NaN (XPath 1.0
/// §4.4).
pub fn parse_xpath_number(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return f64::NAN;
    }
    let body = t.strip_prefix('-').unwrap_or(t);
    let valid = !body.is_empty()
        && body.chars().all(|c| c.is_ascii_digit() || c == '.')
        && body.chars().filter(|&c| c == '.').count() <= 1
        && body != ".";
    if valid {
        t.parse().unwrap_or(f64::NAN)
    } else {
        f64::NAN
    }
}

/// Converts a number to its XPath string form (XPath 1.0 §4.2): integers
/// print without a decimal point, NaN prints as `NaN`, infinities as
/// `Infinity`/`-Infinity`.
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n == 0.0 {
        "0".to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;

    fn doc() -> Document {
        parse_xml("<r><a>1</a><a>2</a><b>xyz</b><c>2</c></r>").unwrap()
    }

    fn nodes_named(doc: &Document, name: &str) -> Vec<NodeId> {
        doc.all_elements()
            .filter(|&n| doc.name(n) == Some(name))
            .collect()
    }

    #[test]
    fn boolean_conversion() {
        assert!(!Value::empty().to_boolean());
        assert!(Value::NodeSet(vec![NodeId::from_index(0)]).to_boolean());
        assert!(Value::Number(1.5).to_boolean());
        assert!(!Value::Number(0.0).to_boolean());
        assert!(!Value::Number(f64::NAN).to_boolean());
        assert!(Value::Str("x".into()).to_boolean());
        assert!(!Value::Str("".into()).to_boolean());
        assert!(Value::Boolean(true).to_boolean());
    }

    #[test]
    fn number_conversion() {
        let d = doc();
        assert_eq!(Value::Boolean(true).to_number(&d), 1.0);
        assert_eq!(Value::Boolean(false).to_number(&d), 0.0);
        assert_eq!(Value::Str(" 42 ".into()).to_number(&d), 42.0);
        assert_eq!(Value::Str("-1.5".into()).to_number(&d), -1.5);
        assert!(Value::Str("abc".into()).to_number(&d).is_nan());
        assert!(Value::Str("".into()).to_number(&d).is_nan());
        assert!(Value::Str("1.2.3".into()).to_number(&d).is_nan());
        // First node in document order is <a>1</a>.
        let ns = Value::node_set(&d, nodes_named(&d, "a"));
        assert_eq!(ns.to_number(&d), 1.0);
        assert!(Value::empty().to_number(&d).is_nan());
    }

    #[test]
    fn string_conversion() {
        let d = doc();
        assert_eq!(Value::Boolean(true).to_xpath_string(&d), "true");
        assert_eq!(Value::Number(3.0).to_xpath_string(&d), "3");
        assert_eq!(Value::Number(2.5).to_xpath_string(&d), "2.5");
        assert_eq!(Value::Number(f64::NAN).to_xpath_string(&d), "NaN");
        assert_eq!(Value::Number(f64::INFINITY).to_xpath_string(&d), "Infinity");
        assert_eq!(Value::Number(-0.0).to_xpath_string(&d), "0");
        let ns = Value::node_set(&d, nodes_named(&d, "b"));
        assert_eq!(ns.to_xpath_string(&d), "xyz");
        assert_eq!(Value::empty().to_xpath_string(&d), "");
    }

    #[test]
    fn node_set_normalization() {
        let d = doc();
        let mut ns = nodes_named(&d, "a");
        ns.reverse();
        let mut both = ns.clone();
        both.extend(nodes_named(&d, "a"));
        let v = Value::node_set(&d, both);
        match v {
            Value::NodeSet(sorted) => {
                assert_eq!(sorted.len(), 2);
                assert!(d.pre(sorted[0]) < d.pre(sorted[1]));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn nodeset_number_comparison_is_existential() {
        let d = doc();
        let a = Value::node_set(&d, nodes_named(&d, "a")); // values 1, 2
        assert!(a.compare(RelOp::Eq, &Value::Number(2.0), &d));
        assert!(!a.compare(RelOp::Eq, &Value::Number(3.0), &d));
        assert!(a.compare(RelOp::Gt, &Value::Number(1.5), &d));
        assert!(a.compare(RelOp::Lt, &Value::Number(1.5), &d));
        // Both directions are simultaneously true: existential semantics.
        assert!(a.compare(RelOp::Ne, &Value::Number(1.0), &d));
    }

    #[test]
    fn nodeset_scalar_flipped_comparison() {
        let d = doc();
        let a = Value::node_set(&d, nodes_named(&d, "a")); // 1, 2
                                                           // 1.5 < {1,2} : exists node with 1.5 < value -> true (node 2)
        assert!(Value::Number(1.5).compare(RelOp::Lt, &a, &d));
        // 2.5 < {1,2} : false
        assert!(!Value::Number(2.5).compare(RelOp::Lt, &a, &d));
        // "2" = {..} by string value
        assert!(Value::Str("2".into()).compare(RelOp::Eq, &a, &d));
    }

    #[test]
    fn nodeset_nodeset_comparison() {
        let d = doc();
        let a = Value::node_set(&d, nodes_named(&d, "a")); // "1","2"
        let c = Value::node_set(&d, nodes_named(&d, "c")); // "2"
        let b = Value::node_set(&d, nodes_named(&d, "b")); // "xyz"
        assert!(a.compare(RelOp::Eq, &c, &d));
        assert!(!b.compare(RelOp::Eq, &c, &d));
        assert!(a.compare(RelOp::Ne, &c, &d)); // "1" != "2"
        assert!(a.compare(RelOp::Le, &c, &d));
        assert!(!b.compare(RelOp::Lt, &c, &d)); // NaN comparisons are false
        let empty = Value::empty();
        assert!(!a.compare(RelOp::Eq, &empty, &d));
        assert!(!empty.compare(RelOp::Ne, &a, &d));
    }

    #[test]
    fn nodeset_boolean_comparison() {
        let d = doc();
        let a = Value::node_set(&d, nodes_named(&d, "a"));
        assert!(a.compare(RelOp::Eq, &Value::Boolean(true), &d));
        assert!(Value::empty().compare(RelOp::Eq, &Value::Boolean(false), &d));
        assert!(Value::Boolean(true).compare(RelOp::Eq, &a, &d));
    }

    #[test]
    fn scalar_comparisons() {
        let d = doc();
        assert!(Value::Number(2.0).compare(RelOp::Lt, &Value::Number(3.0), &d));
        assert!(Value::Str("a".into()).compare(RelOp::Eq, &Value::Str("a".into()), &d));
        assert!(Value::Str("a".into()).compare(RelOp::Ne, &Value::Str("b".into()), &d));
        // boolean wins the coercion battle for = / !=
        assert!(Value::Boolean(true).compare(RelOp::Eq, &Value::Str("yes".into()), &d));
        assert!(Value::Number(1.0).compare(RelOp::Eq, &Value::Str("1".into()), &d));
        // relational on strings goes through numbers → NaN → false
        assert!(!Value::Str("a".into()).compare(RelOp::Lt, &Value::Str("b".into()), &d));
        assert!(Value::Str("1".into()).compare(RelOp::Lt, &Value::Str("2".into()), &d));
    }

    #[test]
    fn into_nodes_and_expect_nodes() {
        let d = doc();
        let v = Value::node_set(&d, nodes_named(&d, "a"));
        assert_eq!(v.clone().into_nodes().unwrap().len(), 2);
        assert_eq!(v.expect_nodes().len(), 2);
        assert!(Value::Number(1.0).into_nodes().is_err());
    }

    #[test]
    #[should_panic(expected = "expected a node set")]
    fn expect_nodes_panics_on_scalar() {
        Value::Boolean(true).expect_nodes();
    }

    #[test]
    fn parse_xpath_number_rules() {
        assert_eq!(parse_xpath_number("3"), 3.0);
        assert_eq!(parse_xpath_number("-2.5"), -2.5);
        assert_eq!(parse_xpath_number(" 7 "), 7.0);
        assert!(parse_xpath_number("1e5").is_nan()); // no exponent syntax in XPath 1.0
        assert!(parse_xpath_number("--3").is_nan());
        assert!(parse_xpath_number(".").is_nan());
        assert_eq!(parse_xpath_number(".5"), 0.5);
        assert_eq!(parse_xpath_number("5."), 5.0);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::empty().type_name(), "node-set");
        assert_eq!(Value::Boolean(true).type_name(), "boolean");
        assert_eq!(Value::Number(0.0).type_name(), "number");
        assert_eq!(Value::Str(String::new()).type_name(), "string");
    }
}
