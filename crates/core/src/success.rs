//! The Singleton-Success decision procedure (Lemma 5.4, Table 1).
//!
//! The paper proves that pWF (and pXPath) query evaluation is in LOGCFL by
//! exhibiting an NAuxPDA that decides the **Singleton-Success** problem
//! (Definition 5.3): given a document `D`, a query `Q`, a context triple and
//! a candidate value `v`, does `Q` evaluate to `v` (or, for node-set
//! queries, to a set containing the node `v`)?  The machine traverses the
//! query parse tree, *guesses* a context and result value at every node and
//! verifies the guesses against the local consistency conditions of Table 1
//! — crucially **without ever materializing a node set**.
//!
//! [`SingletonSuccess`] is the deterministic simulation of that machine:
//! nondeterministic guesses become exhaustive search with memoization, and
//! every row of Table 1 appears as one arm of the checker
//! (see [`SingletonSuccess::selects`] for the location-path rows and the
//! scalar evaluation for the operator rows).  Following Theorem 5.5, the
//! full node-set result can be recovered by deciding Singleton-Success once
//! per document node ([`SingletonSuccess::node_set`]) — this is also the
//! unit of work that the parallel evaluator distributes across threads.
//!
//! The bounded-negation extension of Theorems 5.9/6.3 is supported: `not(π)`
//! is decided by a loop over the document that verifies no node is selected.

use crate::context::Context;
use crate::error::EvalError;
use crate::functions::{call_function, is_supported};
use crate::stats::EvalStats;
use crate::steps::predicate_holds;
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use xpeval_dom::{AxisSource, Document, NodeId};
use xpeval_syntax::ast::ExprType;
use xpeval_syntax::{Expr, Fragment, LocationPath};

/// The candidate result value of a Singleton-Success instance
/// (Definition 5.3: a single node for node-set queries, `true` for boolean
/// queries, or a number/string).
#[derive(Clone, Debug, PartialEq)]
pub enum SuccessTarget {
    /// Is this node a member of the query's node-set result?
    Node(NodeId),
    /// Does the boolean query evaluate to true?
    True,
    /// Does the number query evaluate to this number?
    Number(f64),
    /// Does the string query evaluate to this string?
    Str(String),
}

/// Functions the paper's Definition 6.1 removes from pXPath; queries using
/// them are rejected by [`SingletonSuccess::new`].
const FORBIDDEN_FUNCTIONS: &[&str] = &[
    "count",
    "sum",
    "string",
    "number",
    "local-name",
    "namespace-uri",
    "name",
    "string-length",
    "normalize-space",
];

/// Deterministic simulation of the Lemma 5.4 NAuxPDA.
///
/// Generic over the document access layer ([`AxisSource`]); with a
/// [`xpeval_dom::PreparedDocument`] the per-step candidate enumeration uses
/// the prepared indexes.
pub struct SingletonSuccess<'d, 'q, S: AxisSource + ?Sized = Document> {
    src: &'d S,
    doc: &'d Document,
    query: &'q Expr,
    /// Memo for `can_reach`: (path identity, step index, from node, target node).
    reach_memo: RefCell<HashMap<(usize, usize, NodeId, NodeId), bool>>,
    /// Memo for boolean condition checks: (expr identity, node, position, size).
    bool_memo: RefCell<HashMap<(usize, NodeId, usize, usize), bool>>,
    /// Decisions actually computed (memo misses).
    decisions: Cell<u64>,
    /// Memo hits across both tables.
    memo_hits: Cell<u64>,
    /// `(step, context node)` candidate enumerations inside `can_reach`.
    steps_applied: Cell<u64>,
}

impl<'d, 'q, S: AxisSource + ?Sized> SingletonSuccess<'d, 'q, S> {
    /// Creates a checker for `query` over `src`.
    ///
    /// The query must lie in the fragment the NAuxPDA of Lemma 5.4 /
    /// Theorem 6.2 handles: single predicates (no iterated predicate
    /// sequences), no forbidden functions, no relational comparison with a
    /// boolean operand.  Negation is allowed (Theorems 5.9/6.3: bounded
    /// negation stays in LOGCFL).
    pub fn new(src: &'d S, query: &'q Expr) -> Result<Self, EvalError> {
        validate(query)?;
        Ok(SingletonSuccess {
            src,
            doc: src.document(),
            query,
            reach_memo: RefCell::new(HashMap::new()),
            bool_memo: RefCell::new(HashMap::new()),
            decisions: Cell::new(0),
            memo_hits: Cell::new(0),
            steps_applied: Cell::new(0),
        })
    }

    /// Work counters accumulated so far: `evaluations` counts decisions
    /// actually computed, `cache_hits` memo-table hits and
    /// `step_context_evaluations` the `(step, context node)` candidate
    /// enumerations of the Table 1 traversal.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            evaluations: self.decisions.get(),
            cache_hits: self.memo_hits.get(),
            step_context_evaluations: self.steps_applied.get(),
            ..EvalStats::default()
        }
    }

    /// Decides the Singleton-Success instance `(D, Q, ctx, target)`.
    pub fn decide(&self, ctx: Context, target: &SuccessTarget) -> Result<bool, EvalError> {
        match target {
            SuccessTarget::Node(v) => self.selects(self.query, ctx, *v),
            SuccessTarget::True => self.eval_boolean(self.query, ctx),
            SuccessTarget::Number(n) => {
                let got = self.eval_scalar(self.query, ctx)?.to_number(self.doc);
                Ok(got == *n || (got.is_nan() && n.is_nan()))
            }
            SuccessTarget::Str(s) => {
                let got = self.eval_scalar(self.query, ctx)?.to_xpath_string(self.doc);
                Ok(&got == s)
            }
        }
    }

    /// Recovers the full node-set result by deciding Singleton-Success once
    /// per candidate node (the loop of Theorem 5.5).
    ///
    /// With a tag index available the candidates are pruned to the nodes
    /// the query's final name test can select at all
    /// ([`crate::steps::result_candidates`]) instead of every document
    /// node; the decision procedure itself is unchanged.
    pub fn node_set(&self, ctx: Context) -> Result<Vec<NodeId>, EvalError> {
        let mut out = Vec::new();
        match crate::steps::result_candidates(self.query, self.src) {
            Some(candidates) => {
                for v in candidates {
                    if self.selects(self.query, ctx, v)? {
                        out.push(v);
                    }
                }
            }
            None => {
                for v in self.doc.all_nodes() {
                    if self.selects(self.query, ctx, v)? {
                        out.push(v);
                    }
                }
            }
        }
        self.doc.sort_document_order(&mut out);
        Ok(out)
    }

    // -- Table 1, node-set rows ---------------------------------------------

    /// Membership test "node `target` is selected by `expr` from context
    /// `ctx`" — the `χ::t`, `/π`, `π1/π2` and `π1|π2` rows of Table 1, plus
    /// the derived set-operator rows: membership in an intersection is a
    /// conjunction of memberships, membership in a difference a conjunction
    /// with a negated membership — both decided without materializing
    /// either operand set.
    pub fn selects(&self, expr: &Expr, ctx: Context, target: NodeId) -> Result<bool, EvalError> {
        match expr {
            Expr::Path(path) => self.path_selects(path, ctx, target),
            Expr::Union(a, b) => Ok(self.selects(a, ctx, target)? || self.selects(b, ctx, target)?),
            Expr::Intersect(a, b) => {
                Ok(self.selects(a, ctx, target)? && self.selects(b, ctx, target)?)
            }
            Expr::Except(a, b) => {
                Ok(self.selects(a, ctx, target)? && !self.selects(b, ctx, target)?)
            }
            other => Err(EvalError::type_error(format!(
                "expression {other} is not node-set typed"
            ))),
        }
    }

    fn path_selects(
        &self,
        path: &LocationPath,
        ctx: Context,
        target: NodeId,
    ) -> Result<bool, EvalError> {
        // Row "/π": the context node is replaced by the root.
        let start = if path.absolute {
            self.doc.root()
        } else {
            ctx.node
        };
        self.can_reach(path, 0, start, target)
    }

    /// Row "π1/π2" of Table 1, iterated: can `target` be reached from `from`
    /// through the remaining steps?  The intermediate node (the paper's
    /// guessed `n2 = r1`) is searched exhaustively with memoization.
    fn can_reach(
        &self,
        path: &LocationPath,
        step_ix: usize,
        from: NodeId,
        target: NodeId,
    ) -> Result<bool, EvalError> {
        if step_ix == path.steps.len() {
            return Ok(from == target);
        }
        let key = (path as *const LocationPath as usize, step_ix, from, target);
        if let Some(&b) = self.reach_memo.borrow().get(&key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return Ok(b);
        }
        self.decisions.set(self.decisions.get() + 1);
        self.steps_applied.set(self.steps_applied.get() + 1);
        let step = &path.steps[step_ix];
        // Row "χ::t[e]": Y is the set of nodes reachable from `from` via
        // χ::t; the predicate is checked with the position of the candidate
        // in Y and |Y| as the context — note that Y is only *iterated*, never
        // stored, mirroring the log-space argument of the paper.
        let candidates = self.src.axis_step(from, step.axis, &step.node_test);
        let size = candidates.len();
        let mut result = false;
        for (idx, &cand) in candidates.iter().enumerate() {
            let position = if step.axis.is_reverse() {
                size - idx
            } else {
                idx + 1
            };
            let mut ok = true;
            for pred in &step.predicates {
                if !self.predicate_holds_at(pred, Context::new(cand, position, size))? {
                    ok = false;
                    break;
                }
            }
            if ok && self.can_reach(path, step_ix + 1, cand, target)? {
                result = true;
                break;
            }
        }
        self.reach_memo.borrow_mut().insert(key, result);
        Ok(result)
    }

    fn predicate_holds_at(&self, pred: &Expr, ctx: Context) -> Result<bool, EvalError> {
        if pred.is_nodeset_typed() {
            return self.exists(pred, ctx);
        }
        // Scalar predicate: numbers select by position (XPath §2.4), other
        // values by boolean conversion.
        let v = self.eval_scalar(pred, ctx)?;
        Ok(predicate_holds(&v, ctx.position))
    }

    /// Existential semantics of a location path in condition position
    /// (footnote 3 of the paper): at least one node must match.
    fn exists(&self, expr: &Expr, ctx: Context) -> Result<bool, EvalError> {
        for v in self.doc.all_nodes() {
            if self.selects(expr, ctx, v)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// First selected node in document order (used when a node-set operand
    /// is coerced to a string inside a scalar function).
    fn first_selected(&self, expr: &Expr, ctx: Context) -> Result<Option<NodeId>, EvalError> {
        let mut best: Option<NodeId> = None;
        for v in self.doc.all_nodes() {
            if self.selects(expr, ctx, v)? {
                best = match best {
                    Some(b) if self.doc.pre(b) <= self.doc.pre(v) => Some(b),
                    _ => Some(v),
                };
            }
        }
        Ok(best)
    }

    // -- Table 1, boolean and scalar rows -----------------------------------

    /// The `boolean(π)`, `e1 and e2`, `e1 or e2` and `e1 RelOp e2` rows,
    /// plus the bounded-negation extension of Theorem 5.9.
    pub fn eval_boolean(&self, expr: &Expr, ctx: Context) -> Result<bool, EvalError> {
        let key = (
            expr as *const Expr as usize,
            ctx.node,
            ctx.position,
            ctx.size,
        );
        if let Some(&b) = self.bool_memo.borrow().get(&key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return Ok(b);
        }
        self.decisions.set(self.decisions.get() + 1);
        let out = match expr {
            Expr::And(a, b) => self.eval_boolean(a, ctx)? && self.eval_boolean(b, ctx)?,
            Expr::Or(a, b) => self.eval_boolean(a, ctx)? || self.eval_boolean(b, ctx)?,
            // Theorem 5.9: not(π) is decided by a loop over dom checking
            // that no node is selected; nested occurrences recurse, with the
            // nesting depth bounded by the query.
            Expr::Not(e) => !self.eval_boolean(e, ctx)?,
            Expr::Path(_) | Expr::Union(_, _) | Expr::Intersect(_, _) | Expr::Except(_, _) => {
                self.exists(expr, ctx)?
            }
            Expr::NodeCompare { op, left, right } => self.node_compare(*op, left, right, ctx)?,
            Expr::Relational { op, left, right } => self.relational(*op, left, right, ctx)?,
            other => self.eval_scalar(other, ctx)?.to_boolean(),
        };
        self.bool_memo.borrow_mut().insert(key, out);
        Ok(out)
    }

    /// `e1 RelOp e2` with existential semantics over node-set operands
    /// (the general `F[[Op]]` principle of Theorem 6.2): a node-set operand
    /// contributes the string value of each selected node, searched by a
    /// loop over the document instead of materializing the set.
    fn relational(
        &self,
        op: xpeval_syntax::RelOp,
        left: &Expr,
        right: &Expr,
        ctx: Context,
    ) -> Result<bool, EvalError> {
        let lvals = self.atomic_values(left, ctx)?;
        let rvals = self.atomic_values(right, ctx)?;
        for l in &lvals {
            for r in &rvals {
                if l.compare(op, r, self.doc) {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// A node comparison `π1 is/<</>> π2`, decided on the first node in
    /// document order of each operand (found by iteration, never by
    /// materializing the sets); an empty operand never compares true.
    fn node_compare(
        &self,
        op: xpeval_syntax::NodeCompOp,
        left: &Expr,
        right: &Expr,
        ctx: Context,
    ) -> Result<bool, EvalError> {
        let (Some(l), Some(r)) = (
            self.first_selected(left, ctx)?,
            self.first_selected(right, ctx)?,
        ) else {
            return Ok(false);
        };
        Ok(op.apply(self.doc.pre(l), self.doc.pre(r)))
    }

    /// The atomic values contributed by an operand of a comparison: a scalar
    /// contributes itself, a node-set operand contributes the string value
    /// of every node it selects.
    fn atomic_values(&self, expr: &Expr, ctx: Context) -> Result<Vec<Value>, EvalError> {
        if expr.is_nodeset_typed() {
            let mut out = Vec::new();
            for v in self.doc.all_nodes() {
                if self.selects(expr, ctx, v)? {
                    out.push(Value::Str(self.doc.string_value(v)));
                }
            }
            Ok(out)
        } else {
            Ok(vec![self.eval_scalar(expr, ctx)?])
        }
    }

    /// Scalar (number / string / boolean) evaluation — the leaf rows
    /// `position()`, `last()`, constants, and the `ArithOp` row of Table 1.
    pub fn eval_scalar(&self, expr: &Expr, ctx: Context) -> Result<Value, EvalError> {
        match expr {
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Literal(s) => Ok(Value::Str(s.clone())),
            Expr::Arithmetic { op, left, right } => {
                let l = self.scalar_number(left, ctx)?;
                let r = self.scalar_number(right, ctx)?;
                Ok(Value::Number(op.apply(l, r)))
            }
            Expr::Neg(e) => Ok(Value::Number(-self.scalar_number(e, ctx)?)),
            Expr::And(_, _)
            | Expr::Or(_, _)
            | Expr::Not(_)
            | Expr::Relational { .. }
            | Expr::NodeCompare { .. } => Ok(Value::Boolean(self.eval_boolean(expr, ctx)?)),
            Expr::Path(_) | Expr::Union(_, _) | Expr::Intersect(_, _) | Expr::Except(_, _) => {
                Err(EvalError::type_error(
                    "node-set expression in scalar position (use selects/exists)",
                ))
            }
            // The AST checker has no bindings channel; variables are only
            // resolvable on the compiled (IR) paths.
            Expr::Variable(name) => Err(EvalError::UnboundVariable { name: name.clone() }),
            Expr::FunctionCall { name, args } => {
                if name == "boolean" && args.len() == 1 && args[0].is_nodeset_typed() {
                    // Table 1 row "boolean(π)".
                    return Ok(Value::Boolean(self.exists(&args[0], ctx)?));
                }
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    if a.is_nodeset_typed() {
                        // Node-set argument to a string/number function:
                        // coerce via the first selected node, found by
                        // iteration rather than materialization.
                        let s = match self.first_selected(a, ctx)? {
                            Some(n) => self.doc.string_value(n),
                            None => String::new(),
                        };
                        values.push(Value::Str(s));
                    } else {
                        values.push(self.eval_scalar(a, ctx)?);
                    }
                }
                call_function(name, values, &ctx, self.doc)
            }
        }
    }

    fn scalar_number(&self, expr: &Expr, ctx: Context) -> Result<f64, EvalError> {
        if expr.is_nodeset_typed() {
            let s = match self.first_selected(expr, ctx)? {
                Some(n) => self.doc.string_value(n),
                None => String::new(),
            };
            return Ok(crate::value::parse_xpath_number(&s));
        }
        Ok(self.eval_scalar(expr, ctx)?.to_number(self.doc))
    }
}

/// Helper trait: static "is this expression node-set typed" test used by the
/// checker to route between the node-set rows and the scalar rows of
/// Table 1.
trait NodeSetTyped {
    fn is_nodeset_typed(&self) -> bool;
}

impl NodeSetTyped for Expr {
    fn is_nodeset_typed(&self) -> bool {
        matches!(
            self,
            Expr::Path(_) | Expr::Union(_, _) | Expr::Intersect(_, _) | Expr::Except(_, _)
        )
    }
}

/// Registry-less admission check (kept for tests; plan lowering uses
/// [`validate_expr_with`] so registered core-safe functions are admitted).
#[cfg(test)]
pub(crate) fn validate_expr(query: &Expr) -> Result<(), EvalError> {
    validate(query)
}

/// Registry-aware variant of [`validate_expr`]: calls to registered
/// functions declaring [`FragmentImpact::CoreSafe`] are admitted alongside
/// the built-ins; `General`-impact registrations are rejected (the whole
/// query has already been degraded to full XPath, which these machines do
/// not cover).
pub(crate) fn validate_expr_with(
    query: &Expr,
    registry: &crate::registry::FunctionRegistry,
) -> Result<(), EvalError> {
    validate_inner(query, registry)
}

/// Validates that a query lies in the fragment covered by the checker
/// (pWF / pXPath, optionally with negation per Theorems 5.9/6.3).
fn validate(query: &Expr) -> Result<(), EvalError> {
    validate_inner(query, crate::registry::FunctionRegistry::empty())
}

/// Registry-aware static type of a relational operand: a registered
/// function's declared return type is authoritative; the AST guess covers
/// everything else (including unknown names, which a later visit rejects
/// with the more precise [`EvalError::UnknownFunction`]).
fn operand_type(e: &Expr, registry: &crate::registry::FunctionRegistry) -> ExprType {
    if let Expr::FunctionCall { name, .. } = e {
        if !is_supported(name) {
            if let Some(f) = registry.lookup(name) {
                return f.signature.return_type();
            }
        }
    }
    e.expr_type()
}

fn validate_inner(
    query: &Expr,
    registry: &crate::registry::FunctionRegistry,
) -> Result<(), EvalError> {
    use crate::registry::FragmentImpact;
    let mut error: Option<EvalError> = None;
    query.visit(&mut |e| {
        if error.is_some() {
            return;
        }
        match e {
            Expr::Path(p) => {
                for step in &p.steps {
                    if step.predicates.len() >= 2 {
                        error = Some(EvalError::fragment(
                            Fragment::PXPath,
                            "iterated predicates [e1][e2] (Definition 6.1(1))",
                        ));
                    }
                }
            }
            Expr::Relational { left, right, .. } => {
                let boolean_operand = matches!(operand_type(left, registry), ExprType::Boolean)
                    || matches!(operand_type(right, registry), ExprType::Boolean);
                if boolean_operand {
                    error = Some(EvalError::fragment(
                        Fragment::PXPath,
                        "a relational comparison with a boolean operand (Definition 6.1(3))",
                    ));
                }
            }
            Expr::FunctionCall { name, .. } => {
                if FORBIDDEN_FUNCTIONS.contains(&name.as_str()) {
                    error = Some(EvalError::fragment(
                        Fragment::PXPath,
                        format!("the {name}() function (Definition 6.1(2))"),
                    ));
                } else if !is_supported(name) {
                    match registry.lookup(name).map(|f| f.signature.fragment_impact()) {
                        Some(FragmentImpact::CoreSafe) => {}
                        Some(FragmentImpact::General) => {
                            error = Some(EvalError::fragment(
                                Fragment::PXPath,
                                format!(
                                    "the registered function {name}() (declared general impact)"
                                ),
                            ));
                        }
                        None => {
                            error = Some(EvalError::UnknownFunction { name: name.clone() });
                        }
                    }
                }
            }
            _ => {}
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpEvaluator;
    use xpeval_dom::parse_xml;
    use xpeval_syntax::parse_query;

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book><paper year="2003"><title>C</title></paper></lib>"#;

    fn checker_agrees_with_dp(xml: &str, query: &str) {
        let doc = parse_xml(xml).unwrap();
        let q = parse_query(query).unwrap();
        let dp = DpEvaluator::new(&doc, &q).evaluate().unwrap();
        let ss = SingletonSuccess::new(&doc, &q).unwrap();
        let ctx = Context::root(&doc);
        match dp {
            Value::NodeSet(expected) => {
                let got = ss.node_set(ctx).unwrap();
                assert_eq!(got, expected, "node-set disagreement on {query}");
                // Spot-check decide() on members and non-members.
                for v in doc.all_nodes() {
                    let is_member = expected.contains(&v);
                    assert_eq!(
                        ss.decide(ctx, &SuccessTarget::Node(v)).unwrap(),
                        is_member,
                        "membership of {v:?} in {query}"
                    );
                }
            }
            Value::Boolean(b) => {
                assert_eq!(ss.decide(ctx, &SuccessTarget::True).unwrap(), b, "{query}");
            }
            Value::Number(n) => {
                assert!(
                    ss.decide(ctx, &SuccessTarget::Number(n)).unwrap(),
                    "{query}"
                );
                assert!(
                    !ss.decide(ctx, &SuccessTarget::Number(n + 1.0)).unwrap(),
                    "{query}"
                );
            }
            Value::Str(s) => {
                assert!(
                    ss.decide(ctx, &SuccessTarget::Str(s.clone())).unwrap(),
                    "{query}"
                );
                assert!(!ss
                    .decide(ctx, &SuccessTarget::Str(format!("{s}x")))
                    .unwrap());
            }
        }
    }

    #[test]
    fn agrees_with_dp_on_pwf_queries() {
        for q in [
            "/lib/book/title",
            "//book[@year = 2003]/title",
            "//book[position() = 2]",
            "//book[position() + 1 = last()]",
            "//book[child::cite]/title",
            "//title | //cite",
            "//book[2]",
            "/lib/*[last()]",
        ] {
            checker_agrees_with_dp(BOOKS, q);
        }
    }

    #[test]
    fn agrees_with_dp_on_scalar_queries() {
        for q in [
            "1 + 2 * 3",
            "position() = 1",
            "concat('a', 'b')",
            "contains('hello', 'ell')",
            "floor(2.5) + ceiling(0.5)",
            "boolean(//cite)",
            "boolean(//nosuch)",
        ] {
            checker_agrees_with_dp(BOOKS, q);
        }
    }

    #[test]
    fn bounded_negation_extension() {
        // Theorem 5.9 / 6.3: negation handled by looping over dom.
        for q in [
            "//book[not(child::cite)]",
            "//book[not(child::cite) and @year = 2003]",
            "//*[not(parent::lib) and not(child::*)]",
            "not(//nosuch)",
            "//book[not(not(child::cite))]",
        ] {
            checker_agrees_with_dp(BOOKS, q);
        }
    }

    #[test]
    fn rejects_constructs_outside_the_fragment() {
        let doc = parse_xml(BOOKS).unwrap();
        for q in [
            "//book[child::cite][position() = 1]", // iterated predicates
            "count(//book)",                       // forbidden function
            "//book[string(title) = 'A']",         // forbidden function
            "//book[(child::cite and child::title) = true()]", // boolean relop operand
            "sum(//book/@year)",
        ] {
            let query = parse_query(q).unwrap();
            let res = SingletonSuccess::new(&doc, &query);
            assert!(res.is_err(), "{q} should have been rejected");
        }
    }

    #[test]
    fn decide_respects_the_context_triple() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("position() = 2").unwrap();
        let ss = SingletonSuccess::new(&doc, &q).unwrap();
        assert!(!ss
            .decide(Context::new(doc.root(), 1, 3), &SuccessTarget::True)
            .unwrap());
        assert!(ss
            .decide(Context::new(doc.root(), 2, 3), &SuccessTarget::True)
            .unwrap());
    }

    #[test]
    fn relative_queries_from_an_inner_context_node() {
        let doc = parse_xml(BOOKS).unwrap();
        let book2 = doc
            .all_elements()
            .filter(|&n| doc.name(n) == Some("book"))
            .nth(1)
            .unwrap();
        let q = parse_query("child::title").unwrap();
        let ss = SingletonSuccess::new(&doc, &q).unwrap();
        let got = ss.node_set(Context::new(book2, 1, 1)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(doc.string_value(got[0]), "B");
    }

    #[test]
    fn nodeset_comparisons_are_existential() {
        checker_agrees_with_dp(BOOKS, "//book[@year = //paper/@year]");
        checker_agrees_with_dp(BOOKS, "//book[@year < 2002]");
        checker_agrees_with_dp(BOOKS, "//book[title = 'B']");
    }

    #[test]
    fn set_operators_and_node_comparisons_agree_with_dp() {
        for q in [
            "//title intersect //book/title",
            "//title except //book/title",
            "(//title | //cite) except //paper/title",
            "//book intersect //paper",
            "//book[child::cite] intersect //book[@year = 2003]",
            "//book is //book",
            "//cite << //paper",
            "//paper >> //cite",
            "//nosuch is //book",
        ] {
            checker_agrees_with_dp(BOOKS, q);
        }
    }

    #[test]
    fn variables_are_unbound_on_the_ast_path() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("$threshold").unwrap();
        let ss = SingletonSuccess::new(&doc, &q).unwrap();
        let err = ss.eval_scalar(&q, Context::root(&doc)).unwrap_err();
        assert!(
            matches!(&err, EvalError::UnboundVariable { name } if name == "threshold"),
            "{err:?}"
        );
    }

    #[test]
    fn registry_aware_validation_admits_core_safe_functions() {
        use crate::registry::{FragmentImpact, FunctionRegistry, FunctionSignature};
        let q = parse_query("//book[double(@year) = 4006]").unwrap();
        assert!(matches!(
            validate_expr(&q),
            Err(EvalError::UnknownFunction { .. })
        ));
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("double", 1, Some(1))
                .returns_number()
                .impact(FragmentImpact::CoreSafe),
            |args, _, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
        );
        assert!(validate_expr_with(&q, &registry).is_ok());
        // A general-impact registration is known but not admitted here.
        let mut general = FunctionRegistry::new();
        general.register(FunctionSignature::new("double", 1, Some(1)), |_, _, _| {
            Ok(Value::Str(String::new()))
        });
        assert!(matches!(
            validate_expr_with(&q, &general),
            Err(EvalError::UnsupportedFragment { .. })
        ));
    }

    #[test]
    fn unknown_functions_are_rejected_up_front() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("frobnicate(1)").unwrap();
        assert!(matches!(
            SingletonSuccess::new(&doc, &q),
            Err(EvalError::UnknownFunction { .. })
        ));
    }
}
