//! Unified work counters for all evaluation strategies.
//!
//! Historically the DP evaluator reported `DpStats` and the naive evaluator
//! `NaiveStats`; every downstream table had to know which evaluator it was
//! talking to.  [`EvalStats`] merges both: each strategy fills the counters
//! that are meaningful for it and leaves the rest at zero, and
//! [`crate::QueryOutput`] carries one `EvalStats` no matter which strategy
//! ran.

use std::ops::{Add, AddAssign};
use xpeval_obs::{Field, FieldValue, MetricSource};

/// Work counters of one evaluation, uniform across strategies.
///
/// | Field | DP (context-value table) | Naive | Linear Core XPath | Singleton-Success | Parallel |
/// |---|---|---|---|---|---|
/// | `evaluations` | computed table entries | every (re-)evaluation | set-at-a-time expression evaluations | decisions computed | Σ worker decisions |
/// | `cache_hits` | memo-table hits | 0 | 0 | memo-table hits | Σ worker memo hits |
/// | `step_context_evaluations` | `(step, node)` applications | `(step, node occurrence)` applications | step applications (all contexts at once) | `(step, node)` candidate enumerations | Σ worker enumerations |
/// | `max_intermediate_list` | 0 | largest intermediate node list | 0 | 0 | 0 |
/// | `table_entries` | final context-value-table size | 0 | 0 | 0 | 0 |
///
/// Every strategy counts its work, so the `EvalStats` in
/// [`crate::QueryOutput`] is never all-zero for a non-trivial query: the
/// paper's polynomial-vs-exponential separations are observable through
/// these counters without wall-clock timing.  The parallel evaluator
/// reports the sum over its worker checkers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of expression-evaluation events.  For the DP evaluator this is
    /// the number of `(subexpression, context)` pairs actually computed
    /// (= total size of all context-value tables); for the naive evaluator
    /// it counts every re-evaluation, with no sharing.
    pub evaluations: u64,
    /// Number of times a previously computed context-value-table entry was
    /// reused (DP evaluator only).
    pub cache_hits: u64,
    /// Number of `(step, context node)` applications of a location step.
    pub step_context_evaluations: u64,
    /// Largest intermediate node-list length observed (naive evaluator only;
    /// this is the quantity that explodes exponentially on the pathological
    /// query families).
    pub max_intermediate_list: usize,
    /// Context-value-table entries held when evaluation finished (DP
    /// evaluator only).
    pub table_entries: usize,
    /// Arena nodes resident in the document the query ran against, when the
    /// storage backend materializes lazily (0 for eager backends).  A gauge,
    /// not a counter: [`EvalStats::merged`] takes the maximum.
    pub nodes_materialized: u64,
}

impl EvalStats {
    /// Sums the counters of two evaluations (max-type counters take the
    /// maximum); useful when aggregating over a batch.
    pub fn merged(self, other: EvalStats) -> EvalStats {
        EvalStats {
            evaluations: self.evaluations + other.evaluations,
            cache_hits: self.cache_hits + other.cache_hits,
            step_context_evaluations: self.step_context_evaluations
                + other.step_context_evaluations,
            max_intermediate_list: self.max_intermediate_list.max(other.max_intermediate_list),
            table_entries: self.table_entries.max(other.table_entries),
            nodes_materialized: self.nodes_materialized.max(other.nodes_materialized),
        }
    }
}

impl MetricSource for EvalStats {
    fn source_name(&self) -> &'static str {
        "eval"
    }

    fn fields(&self) -> Vec<Field> {
        vec![
            Field::new("evaluations", FieldValue::Counter(self.evaluations)),
            Field::new("cache_hits", FieldValue::Counter(self.cache_hits)),
            Field::new(
                "step_contexts",
                FieldValue::Counter(self.step_context_evaluations),
            ),
            Field::new(
                "max_list",
                FieldValue::Gauge(self.max_intermediate_list as i64),
            ),
            Field::new(
                "table_entries",
                FieldValue::Gauge(self.table_entries as i64),
            ),
            Field::new(
                "nodes_materialized",
                FieldValue::Gauge(self.nodes_materialized as i64),
            ),
        ]
    }
}

impl std::fmt::Display for EvalStats {
    /// One-line summary shared with [`MetricSource::summary_line`], e.g.
    /// `evaluations 41, cache_hits 12, step_contexts 80, max_list 0,
    /// table_entries 41, nodes_materialized 0`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary_line())
    }
}

impl Add for EvalStats {
    type Output = EvalStats;
    fn add(self, rhs: EvalStats) -> EvalStats {
        self.merged(rhs)
    }
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, rhs: EvalStats) {
        *self = self.merged(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counts_and_maxes_watermarks() {
        let a = EvalStats {
            evaluations: 3,
            cache_hits: 1,
            step_context_evaluations: 10,
            max_intermediate_list: 7,
            table_entries: 4,
            nodes_materialized: 100,
        };
        let b = EvalStats {
            evaluations: 2,
            cache_hits: 0,
            step_context_evaluations: 5,
            max_intermediate_list: 3,
            table_entries: 9,
            nodes_materialized: 60,
        };
        let m = a + b;
        assert_eq!(m.evaluations, 5);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.step_context_evaluations, 15);
        assert_eq!(m.max_intermediate_list, 7);
        assert_eq!(m.table_entries, 9);
        assert_eq!(m.nodes_materialized, 100);
        let mut c = a;
        c += b;
        assert_eq!(c, m);
    }
}
