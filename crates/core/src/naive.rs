//! The naive re-evaluation baseline.
//!
//! Section 1 of the paper observes that, at the time of writing, "all
//! publicly available XPath engines [...] take time exponential in the sizes
//! of the XPath expressions in the input", because they implement the
//! functional semantics of the W3C documents directly: every location step
//! is applied to every node of the intermediate *node list* independently,
//! without sharing work between duplicate contexts and without collapsing
//! the list into a set between steps.
//!
//! [`NaiveEvaluator`] reproduces exactly this strategy, which makes it the
//! stand-in for the systems measured in the paper's predecessor [GKP,
//! VLDB'02]: on query families such as `//a/b/parent::a/b/parent::a/…` its
//! intermediate lists (and therefore its running time) grow as `k^m` where
//! `k` is the fan-out of the document and `m` the number of repetitions,
//! while the context-value-table evaluator of [`crate::DpEvaluator`] stays
//! polynomial.  The work counters in the unified [`EvalStats`] make this
//! blow-up observable deterministically in tests and benchmarks.

use crate::context::Context;
use crate::error::EvalError;
use crate::functions::call_function;
use crate::stats::EvalStats;
use crate::steps::apply_step;
use crate::value::Value;
use xpeval_dom::{AxisSource, Document, NodeId};
use xpeval_syntax::{Expr, LocationPath};

/// Legacy name for the unified work counters.
pub type NaiveStats = EvalStats;

/// Direct implementation of the XPath 1.0 functional semantics with
/// per-occurrence re-evaluation (the strategy of the engines the paper's
/// introduction criticizes).
pub struct NaiveEvaluator<'d, S: AxisSource + ?Sized = Document> {
    src: &'d S,
    doc: &'d Document,
    stats: EvalStats,
    /// Safety valve for tests and benchmarks: evaluation aborts with an
    /// error once an intermediate list exceeds this length.
    pub list_limit: usize,
}

impl<'d, S: AxisSource + ?Sized> NaiveEvaluator<'d, S> {
    /// Creates a naive evaluator for the given document.
    pub fn new(src: &'d S) -> Self {
        NaiveEvaluator {
            src,
            doc: src.document(),
            stats: EvalStats::default(),
            list_limit: usize::MAX,
        }
    }

    /// Creates a naive evaluator that aborts once an intermediate node list
    /// grows beyond `limit` entries (used by the benchmark harness so that
    /// the exponential runs finish in bounded time).
    pub fn with_list_limit(src: &'d S, limit: usize) -> Self {
        NaiveEvaluator {
            src,
            doc: src.document(),
            stats: EvalStats::default(),
            list_limit: limit,
        }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        self.stats
    }

    /// Evaluates a query in the canonical root context.
    pub fn evaluate(&mut self, query: &Expr) -> Result<Value, EvalError> {
        self.evaluate_with_context(query, Context::root(self.doc))
    }

    /// Evaluates a query in an explicit context.
    pub fn evaluate_with_context(
        &mut self,
        query: &Expr,
        ctx: Context,
    ) -> Result<Value, EvalError> {
        self.eval(query, ctx)
    }

    fn eval(&mut self, expr: &Expr, ctx: Context) -> Result<Value, EvalError> {
        self.stats.evaluations += 1;
        match expr {
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Literal(s) => Ok(Value::Str(s.clone())),
            Expr::Path(path) => {
                let list = self.eval_path_list(path, ctx)?;
                // The final result is presented as a proper node set, as
                // every engine eventually does; the damage of list semantics
                // is in the intermediate steps.
                Ok(Value::node_set(self.doc, list))
            }
            Expr::Union(a, b) => {
                let mut left = self.eval(a, ctx)?.into_nodes()?;
                let right = self.eval(b, ctx)?.into_nodes()?;
                left.extend(right);
                Ok(Value::node_set(self.doc, left))
            }
            Expr::Intersect(a, b) => {
                let left = self.eval(a, ctx)?.into_nodes()?;
                let right = self.eval(b, ctx)?.into_nodes()?;
                Ok(Value::NodeSet(crate::dp::set_intersect(left, &right)))
            }
            Expr::Except(a, b) => {
                let left = self.eval(a, ctx)?.into_nodes()?;
                let right = self.eval(b, ctx)?.into_nodes()?;
                Ok(Value::NodeSet(crate::dp::set_except(left, &right)))
            }
            Expr::NodeCompare { op, left, right } => {
                let l = self.eval(left, ctx)?.into_nodes()?;
                let r = self.eval(right, ctx)?.into_nodes()?;
                Ok(Value::Boolean(crate::dp::node_compare(
                    *op, self.doc, &l, &r,
                )))
            }
            Expr::Variable(name) => Err(EvalError::UnboundVariable { name: name.clone() }),
            Expr::Or(a, b) => {
                let l = self.eval(a, ctx)?.to_boolean();
                let r = self.eval(b, ctx)?.to_boolean();
                Ok(Value::Boolean(l || r))
            }
            Expr::And(a, b) => {
                let l = self.eval(a, ctx)?.to_boolean();
                let r = self.eval(b, ctx)?.to_boolean();
                Ok(Value::Boolean(l && r))
            }
            Expr::Not(e) => Ok(Value::Boolean(!self.eval(e, ctx)?.to_boolean())),
            Expr::Relational { op, left, right } => {
                let l = self.eval(left, ctx)?;
                let r = self.eval(right, ctx)?;
                Ok(Value::Boolean(l.compare(*op, &r, self.doc)))
            }
            Expr::Arithmetic { op, left, right } => {
                let l = self.eval(left, ctx)?.to_number(self.doc);
                let r = self.eval(right, ctx)?.to_number(self.doc);
                Ok(Value::Number(op.apply(l, r)))
            }
            Expr::Neg(e) => {
                let n = self.eval(e, ctx)?.to_number(self.doc);
                Ok(Value::Number(-n))
            }
            Expr::FunctionCall { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, ctx)?);
                }
                call_function(name, values, &ctx, self.doc)
            }
        }
    }

    /// Evaluates a location path with *list* semantics: the intermediate
    /// result is a list of nodes with duplicates preserved, and every step
    /// is applied to every occurrence independently.
    fn eval_path_list(
        &mut self,
        path: &LocationPath,
        ctx: Context,
    ) -> Result<Vec<NodeId>, EvalError> {
        let mut current: Vec<NodeId> = if path.absolute {
            vec![self.doc.root()]
        } else {
            vec![ctx.node]
        };
        for step in &path.steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &node in &current {
                self.stats.step_context_evaluations += 1;
                let src = self.src;
                let mut selected = {
                    let mut eval_pred =
                        |e: &Expr, c: Context| -> Result<Value, EvalError> { self.eval(e, c) };
                    apply_step(src, node, step, &mut eval_pred)?
                };
                next.append(&mut selected);
            }
            self.stats.max_intermediate_list = self.stats.max_intermediate_list.max(next.len());
            if next.len() > self.list_limit {
                return Err(EvalError::unsupported(format!(
                    "naive evaluation aborted: intermediate node list exceeded {} entries",
                    self.list_limit
                )));
            }
            current = next;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpEvaluator;
    use xpeval_dom::parse_xml;
    use xpeval_syntax::parse_query;

    fn eval(xml: &str, query: &str) -> Value {
        let doc = parse_xml(xml).unwrap();
        let q = parse_query(query).unwrap();
        NaiveEvaluator::new(&doc).evaluate(&q).unwrap()
    }

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book><paper year="2003"><title>C</title></paper></lib>"#;

    #[test]
    fn agrees_with_dp_on_standard_queries() {
        let doc = parse_xml(BOOKS).unwrap();
        for q in [
            "/lib/book/title",
            "//title",
            "//book[@year = 2003]/title",
            "//book[position() = 2]",
            "//book[not(child::cite)]",
            "count(//book)",
            "//book/title | //paper/title",
            "string(//book[1]/title)",
            "//book[child::cite or child::title][last()]",
            "//title intersect //book/title",
            "//title except //book/title",
            "//book << //paper",
            "//cite is //book/cite",
        ] {
            let query = parse_query(q).unwrap();
            let naive = NaiveEvaluator::new(&doc).evaluate(&query).unwrap();
            let dp = DpEvaluator::new(&doc, &query).evaluate().unwrap();
            assert_eq!(naive, dp, "disagreement on {q}");
        }
    }

    #[test]
    fn final_results_are_proper_node_sets() {
        // Even though intermediate lists carry duplicates, the final value
        // must be duplicate-free and in document order.
        let v = eval("<a><b/><b/><b/></a>", "//a/b/parent::a/b");
        assert_eq!(v.expect_nodes().len(), 3);
    }

    #[test]
    fn intermediate_lists_grow_exponentially() {
        // The query family from the paper's introduction: with k = 3 b-children,
        // every /b/parent::a repetition multiplies the intermediate list by k.
        let k = 3usize;
        let mut xml = String::from("<a>");
        for _ in 0..k {
            xml.push_str("<b/>");
        }
        xml.push_str("</a>");
        let doc = parse_xml(&xml).unwrap();

        let mut lists = Vec::new();
        for reps in 1..=5 {
            let mut q = String::from("//a");
            for _ in 0..reps {
                q.push_str("/b/parent::a");
            }
            let query = parse_query(&q).unwrap();
            let mut ev = NaiveEvaluator::new(&doc);
            ev.evaluate(&query).unwrap();
            lists.push(ev.stats().max_intermediate_list);
        }
        // max list after r repetitions is k^r (for r = 1 the descendant-or-self
        // expansion of `//` is still the longest list: root + a + k children).
        assert_eq!(lists, vec![5, 9, 27, 81, 243]);
        // ... which is exactly the exponential behaviour the DP evaluator avoids.
        let query =
            parse_query("//a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b/parent::a").unwrap();
        let mut dp = DpEvaluator::new(&doc, &query);
        dp.evaluate().unwrap();
        assert!(dp.stats().step_context_evaluations < 100);
    }

    #[test]
    fn list_limit_aborts_runaway_evaluation() {
        let doc = parse_xml("<a><b/><b/><b/></a>").unwrap();
        let query =
            parse_query("//a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b")
                .unwrap();
        let mut ev = NaiveEvaluator::with_list_limit(&doc, 100);
        let err = ev.evaluate(&query).unwrap_err();
        assert!(matches!(err, EvalError::Unsupported { .. }));
    }

    #[test]
    fn work_counters_track_re_evaluation() {
        let doc = parse_xml("<a><b/><b/><b/></a>").unwrap();
        let query = parse_query("//a/b/parent::a/b/parent::a/b").unwrap();
        let mut naive = NaiveEvaluator::new(&doc);
        naive.evaluate(&query).unwrap();
        let mut dp = DpEvaluator::new(&doc, &query);
        dp.evaluate().unwrap();
        assert!(
            naive.stats().step_context_evaluations > dp.stats().step_context_evaluations,
            "naive {} vs dp {}",
            naive.stats().step_context_evaluations,
            dp.stats().step_context_evaluations
        );
    }

    #[test]
    fn scalar_queries_behave_normally() {
        assert_eq!(eval(BOOKS, "2 + 2"), Value::Number(4.0));
        assert_eq!(eval(BOOKS, "count(//title)"), Value::Number(3.0));
        assert_eq!(eval(BOOKS, "not(//nosuch)"), Value::Boolean(true));
    }
}
