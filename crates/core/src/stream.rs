//! Streaming node-set results.
//!
//! `Value::NodeSet` materializes the full result vector.  For large results
//! — or consumers that only need a prefix — [`NodeStream`] yields the
//! selected nodes **in document order, as they are decided**, without ever
//! allocating the result vector:
//!
//! * under the [`crate::EvalStrategy::CoreXPathLinear`] plan the set-at-a-
//!   time algorithm produces a [`NodeBitSet`]; the stream walks the
//!   document-order table and yields the set bits lazily,
//! * under the [`crate::EvalStrategy::SingletonSuccess`] and
//!   [`crate::EvalStrategy::Parallel`] plans each candidate node's
//!   membership is an independent Singleton-Success decision
//!   (Definition 5.3), so the stream *decides as it advances*: consuming
//!   only the first `k` matches only decides the candidates up to the
//!   `k`-th match — this is the Theorem 5.5 loop turned into an iterator,
//! * the remaining strategies have no incremental formulation; the stream
//!   falls back to a materialized result (still yielded in document order).
//!
//! Obtain a stream from [`crate::CompiledQuery::run_streaming`] /
//! [`crate::CompiledQuery::run_streaming_prepared`], or push-style via the
//! visitor form [`crate::CompiledQuery::run_visit`].

use crate::corexpath::NodeBitSet;
use crate::error::EvalError;
use std::borrow::Cow;
use xpeval_dom::NodeId;

/// How a [`NodeStream`] produces its nodes; reported by
/// [`NodeStream::mode`] so tests and callers can assert on laziness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamMode {
    /// Lazy walk over a set-at-a-time result bitset (linear plan): no
    /// result vector exists at any point.
    Bitset,
    /// Per-candidate Singleton-Success decisions made on demand: work is
    /// proportional to the candidates actually examined.
    Decide,
    /// The strategy had no incremental formulation; the result was
    /// materialized before streaming.
    Materialized,
}

/// The membership oracle of a [`StreamMode::Decide`] stream.
type DecideFn<'s> = Box<dyn FnMut(NodeId) -> Result<bool, EvalError> + 's>;

enum Inner<'s> {
    Bits {
        bits: NodeBitSet,
        order: Cow<'s, [NodeId]>,
        ix: usize,
    },
    Decide {
        candidates: Cow<'s, [NodeId]>,
        decide: DecideFn<'s>,
        ix: usize,
    },
    Materialized(std::vec::IntoIter<NodeId>),
}

/// An iterator over a query's node-set result in document order.
///
/// Yields `Result` items because membership decisions can fail mid-stream
/// (for the decide-as-you-go modes); once an error is yielded the stream is
/// exhausted.
pub struct NodeStream<'s> {
    inner: Inner<'s>,
    scanned: usize,
}

impl<'s> NodeStream<'s> {
    pub(crate) fn from_bits(bits: NodeBitSet, order: Cow<'s, [NodeId]>) -> Self {
        NodeStream {
            inner: Inner::Bits { bits, order, ix: 0 },
            scanned: 0,
        }
    }

    pub(crate) fn from_decide(candidates: Cow<'s, [NodeId]>, decide: DecideFn<'s>) -> Self {
        NodeStream {
            inner: Inner::Decide {
                candidates,
                decide,
                ix: 0,
            },
            scanned: 0,
        }
    }

    pub(crate) fn from_vec(nodes: Vec<NodeId>) -> Self {
        NodeStream {
            inner: Inner::Materialized(nodes.into_iter()),
            scanned: 0,
        }
    }

    /// How this stream produces its nodes.
    pub fn mode(&self) -> StreamMode {
        match self.inner {
            Inner::Bits { .. } => StreamMode::Bitset,
            Inner::Decide { .. } => StreamMode::Decide,
            Inner::Materialized(_) => StreamMode::Materialized,
        }
    }

    /// Number of candidate nodes examined so far.  For a
    /// [`StreamMode::Decide`] stream this is the laziness witness: after
    /// consuming only `k` matches it is strictly less than the document
    /// size whenever matches remain.
    pub fn nodes_scanned(&self) -> usize {
        self.scanned
    }

    /// Drains the stream into a vector (document order, no duplicates) —
    /// the bridge back to the materialized API.
    pub fn collect_nodes(self) -> Result<Vec<NodeId>, EvalError> {
        self.collect()
    }
}

impl Iterator for NodeStream<'_> {
    type Item = Result<NodeId, EvalError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            Inner::Bits { bits, order, ix } => {
                while *ix < order.len() {
                    let node = order[*ix];
                    *ix += 1;
                    self.scanned += 1;
                    if bits.contains(node) {
                        return Some(Ok(node));
                    }
                }
                None
            }
            Inner::Decide {
                candidates,
                decide,
                ix,
            } => {
                while *ix < candidates.len() {
                    let node = candidates[*ix];
                    *ix += 1;
                    self.scanned += 1;
                    match decide(node) {
                        Ok(true) => return Some(Ok(node)),
                        Ok(false) => {}
                        Err(e) => {
                            // Poison the stream: further `next` calls see an
                            // exhausted candidate list.
                            *ix = candidates.len();
                            return Some(Err(e));
                        }
                    }
                }
                None
            }
            Inner::Materialized(it) => {
                let node = it.next()?;
                self.scanned += 1;
                Some(Ok(node))
            }
        }
    }
}

impl std::fmt::Debug for NodeStream<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStream")
            .field("mode", &self.mode())
            .field("nodes_scanned", &self.scanned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(ixs: &[usize]) -> Vec<NodeId> {
        ixs.iter().copied().map(NodeId::from_index).collect()
    }

    #[test]
    fn bitset_stream_yields_members_in_order() {
        let mut bits = NodeBitSet::empty(6);
        bits.insert(NodeId::from_index(1));
        bits.insert(NodeId::from_index(4));
        let order = ids(&[0, 1, 2, 3, 4, 5]);
        let stream = NodeStream::from_bits(bits, Cow::Owned(order));
        assert_eq!(stream.mode(), StreamMode::Bitset);
        let got: Vec<NodeId> = stream.map(Result::unwrap).collect();
        assert_eq!(got, ids(&[1, 4]));
    }

    #[test]
    fn decide_stream_is_lazy() {
        let candidates = ids(&[0, 1, 2, 3, 4, 5]);
        let mut stream = NodeStream::from_decide(
            Cow::Owned(candidates),
            Box::new(|n: NodeId| Ok(n.index().is_multiple_of(2))),
        );
        assert_eq!(stream.mode(), StreamMode::Decide);
        assert_eq!(stream.next().unwrap().unwrap(), NodeId::from_index(0));
        assert_eq!(stream.next().unwrap().unwrap(), NodeId::from_index(2));
        // Only candidates 0..=2 have been examined.
        assert_eq!(stream.nodes_scanned(), 3);
    }

    #[test]
    fn decide_errors_poison_the_stream() {
        let candidates = ids(&[0, 1, 2]);
        let mut stream = NodeStream::from_decide(
            Cow::Owned(candidates),
            Box::new(|n: NodeId| {
                if n.index() == 1 {
                    Err(EvalError::type_error("boom"))
                } else {
                    Ok(true)
                }
            }),
        );
        assert!(stream.next().unwrap().is_ok());
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none());
    }

    #[test]
    fn materialized_stream_passthrough() {
        let stream = NodeStream::from_vec(ids(&[3, 5]));
        assert_eq!(stream.mode(), StreamMode::Materialized);
        let got: Vec<NodeId> = stream.map(Result::unwrap).collect();
        assert_eq!(got, ids(&[3, 5]));
    }
}
