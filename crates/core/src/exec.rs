//! Executors for the flat plan IR.
//!
//! Each machine here is the [`crate::ir::PlanIr`] counterpart of one of the
//! AST evaluators, with identical observable semantics — same values, same
//! error variants, same work-counter protocol:
//!
//! | IR machine | AST counterpart | strategy |
//! |---|---|---|
//! | `IrEvaluator` (memoized) | [`crate::DpEvaluator`] | `ContextValueTable` |
//! | `IrEvaluator` (eager) | [`crate::NaiveEvaluator`] | `Naive` |
//! | `IrLinear` | [`crate::CoreXPathEvaluator`] | `CoreXPathLinear` |
//! | `IrSingletonSuccess` | [`crate::SingletonSuccess`] | `SingletonSuccess` / `Parallel` |
//!
//! What the IR machines do *not* redo at run time is the point: fragment
//! admission and Definition 6.1 validation are precomputed verdicts
//! ([`PlanIr::linear_check`] / [`PlanIr::ss_check`]), positional picks are
//! pre-recognized per step, and name tests arrive pre-resolved to global
//! [`xpeval_dom::TagId`]s, so the hot loops run without a single string
//! hash or AST pointer chase.
//!
//! `execute_ir` is the strategy dispatch funnel the compiled-query run
//! paths go through ([`crate::CompiledQuery::run_with_context`] and
//! friends); the `&Expr` entry points of [`crate::Engine`] keep using the
//! AST funnel in [`crate::compile`].

use crate::bindings::Bindings;
use crate::context::{Context, ContextKey};
use crate::corexpath::{CoreXPathEvaluator, NodeBitSet};
use crate::engine::EvalStrategy;
use crate::error::EvalError;
use crate::functions::call_function;
use crate::ir::{OpId, OpKind, PlanIr, StepIr};
use crate::registry::FunctionRegistry;
use crate::stats::EvalStats;
use crate::steps::predicate_holds;
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::Instant;
use xpeval_dom::{AxisSource, Document, NodeId, NodeTest};
use xpeval_obs::OpTrace;
use xpeval_syntax::ast::ExprType;
use xpeval_syntax::Expr;

/// Per-evaluation environment threaded through the IR machines: the
/// registered functions visible to `Call` opcodes whose name is not a
/// built-in, the external variable bindings visible to `Variable`
/// opcodes, and the telemetry hook.  Deliberately `Copy` — the parallel
/// strategy hands the same environment to every worker (handlers are
/// `Send + Sync` by the [`crate::registry::FunctionHandler`] bound, and
/// [`OpTrace`] is atomic, so workers record into one trace concurrently).
#[derive(Clone, Copy)]
pub(crate) struct EvalEnv<'e> {
    pub registry: &'e FunctionRegistry,
    pub bindings: &'e Bindings,
    /// Per-opcode trace accumulation cells when this evaluation is
    /// sampled; `None` when telemetry is off or the query was not
    /// sampled.  Every recording site guards on this `Option` — the
    /// disabled path costs exactly one predictable branch, no allocation
    /// and no lock.
    pub trace: Option<&'e OpTrace>,
}

#[cfg(test)]
impl EvalEnv<'static> {
    /// The empty environment: built-ins only, no variable bindings, no
    /// telemetry.  Production entry points build their environment from the
    /// plan's registry ([`crate::compile`]); tests use this shorthand.
    pub fn base() -> Self {
        EvalEnv {
            registry: FunctionRegistry::empty(),
            bindings: Bindings::empty(),
            trace: None,
        }
    }
}

/// The candidate width a traced op span reports for a computed value:
/// node-set cardinality for node sets, 1 for scalars, 0 for errors.
fn value_width(out: &Result<Value, EvalError>) -> u64 {
    match out {
        Ok(Value::NodeSet(nodes)) => nodes.len() as u64,
        Ok(_) => 1,
        Err(_) => 0,
    }
}

impl<'e> EvalEnv<'e> {
    /// Dispatches a function call: built-ins first (they cannot be
    /// shadowed), then the registry.  Registered handlers are guarded by
    /// their signature's arity check even at run time, so a handler never
    /// observes an argument count its signature rejects.
    fn call(
        &self,
        name: &str,
        args: Vec<Value>,
        ctx: &Context,
        doc: &Document,
    ) -> Result<Value, EvalError> {
        if crate::functions::is_supported(name) {
            return call_function(name, args, ctx, doc);
        }
        match self.registry.lookup(name) {
            Some(f) => {
                if !f.signature.accepts_arity(args.len()) {
                    return Err(EvalError::WrongArity {
                        name: name.to_string(),
                        expected: f.signature.arity_description(),
                        got: args.len(),
                    });
                }
                (f.handler)(&args, ctx, doc)
            }
            None => Err(EvalError::UnknownFunction {
                name: name.to_string(),
            }),
        }
    }

    /// Resolves a `$name` reference against the bindings.
    fn variable(&self, name: &str) -> Result<Value, EvalError> {
        self.bindings
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable {
                name: name.to_string(),
            })
    }
}

/// Dispatches one evaluation of a lowered plan to a strategy — the IR twin
/// of [`crate::compile::execute`].  The AST is still passed alongside: the
/// one corner the IR does not cover bit-for-bit (a *scalar* expression
/// handed to the linear strategy, whose rejection message renders the
/// original expression) falls back to the AST evaluator.
pub(crate) fn execute_ir<S: AxisSource + ?Sized>(
    strategy: EvalStrategy,
    src: &S,
    expr: &Expr,
    ir: &PlanIr,
    ctx: Context,
    env: EvalEnv<'_>,
) -> Result<(Value, EvalStats), EvalError> {
    match strategy {
        EvalStrategy::ContextValueTable => {
            let mut ev = IrEvaluator::memoized(src, ir, env);
            let value = ev.eval(ir.root(), ctx)?;
            Ok((value, ev.stats()))
        }
        EvalStrategy::Naive => {
            let mut ev = IrEvaluator::eager(src, ir, env);
            let value = ev.eval(ir.root(), ctx)?;
            Ok((value, ev.stats()))
        }
        EvalStrategy::CoreXPathLinear => {
            ir.linear_check()?;
            if ir.op(ir.root()).kind.is_nodeset() {
                let ev = IrLinear::new(src, ir, env.trace);
                let nodes = ev.evaluate_from(ir.root(), &[ctx.node])?;
                Ok((Value::NodeSet(nodes), ev.stats()))
            } else {
                // Non-node-set root inside Core XPath: the AST machine
                // produces the exact historical rejection text.
                let ev = CoreXPathEvaluator::new(src);
                let nodes = ev.evaluate_from(expr, &[ctx.node])?;
                Ok((Value::NodeSet(nodes), ev.stats()))
            }
        }
        EvalStrategy::Parallel { threads } => parallel_ir(src, ir, threads.max(1), ctx, env),
        EvalStrategy::SingletonSuccess => {
            let checker = IrSingletonSuccess::new(src, ir, env)?;
            let root = ir.root();
            let value = match ir.op(root).ty {
                ExprType::NodeSet => Value::NodeSet(checker.node_set(ctx)?),
                ExprType::Boolean => Value::Boolean(checker.eval_boolean(root, ctx)?),
                _ => checker.eval_scalar(root, ctx)?,
            };
            Ok((value, checker.stats()))
        }
    }
}

/// The recursive tree-walk executor, in two modes sharing one step loop:
///
/// * **memoized** — the context-value-table dynamic program of
///   [`crate::DpEvaluator`]: every `(opcode, context-key)` value is computed
///   once, paths use set semantics (sort + dedup between steps), `and`/`or`
///   short-circuit.
/// * **eager** — the naive baseline of [`crate::NaiveEvaluator`]: every
///   occurrence re-evaluates, paths use list semantics with the
///   max-intermediate-list watermark, `and`/`or` evaluate both sides.
pub(crate) struct IrEvaluator<'d, 'q, S: AxisSource + ?Sized = Document> {
    src: &'d S,
    doc: &'d Document,
    ir: &'q PlanIr,
    env: EvalEnv<'q>,
    memoized: bool,
    memo: HashMap<(OpId, ContextKey), Value>,
    stats: EvalStats,
    list_limit: usize,
}

impl<'d, 'q, S: AxisSource + ?Sized> IrEvaluator<'d, 'q, S> {
    /// Context-value-table mode (the `ContextValueTable` strategy).
    pub fn memoized(src: &'d S, ir: &'q PlanIr, env: EvalEnv<'q>) -> Self {
        Self::new(src, ir, env, true)
    }

    /// Naive re-evaluation mode (the `Naive` strategy).
    pub fn eager(src: &'d S, ir: &'q PlanIr, env: EvalEnv<'q>) -> Self {
        Self::new(src, ir, env, false)
    }

    fn new(src: &'d S, ir: &'q PlanIr, env: EvalEnv<'q>, memoized: bool) -> Self {
        IrEvaluator {
            src,
            doc: src.document(),
            ir,
            env,
            memoized,
            memo: HashMap::new(),
            stats: EvalStats::default(),
            list_limit: usize::MAX,
        }
    }

    /// Work counters accumulated so far (cumulative across calls, exactly
    /// like the AST evaluators when shared over a batch).
    pub fn stats(&self) -> EvalStats {
        if self.memoized {
            EvalStats {
                table_entries: self.memo.len(),
                ..self.stats
            }
        } else {
            self.stats
        }
    }

    /// Evaluates one opcode in a context.
    pub fn eval(&mut self, id: OpId, ctx: Context) -> Result<Value, EvalError> {
        let Some(trace) = self.env.trace else {
            return self.eval_inner(id, ctx);
        };
        let start = Instant::now();
        let out = self.eval_inner(id, ctx);
        trace.record(id, 1, value_width(&out), start.elapsed().as_nanos() as u64);
        out
    }

    fn eval_inner(&mut self, id: OpId, ctx: Context) -> Result<Value, EvalError> {
        if self.memoized {
            let key = (id, ContextKey::for_context(ctx, self.ir.op(id).sensitive));
            if let Some(v) = self.memo.get(&key) {
                self.stats.cache_hits += 1;
                return Ok(v.clone());
            }
            self.stats.evaluations += 1;
            let value = self.eval_op(id, ctx)?;
            self.memo.insert(key, value.clone());
            Ok(value)
        } else {
            self.stats.evaluations += 1;
            self.eval_op(id, ctx)
        }
    }

    fn eval_op(&mut self, id: OpId, ctx: Context) -> Result<Value, EvalError> {
        let ir = self.ir;
        match &ir.op(id).kind {
            OpKind::Number(n) => Ok(Value::Number(*n)),
            OpKind::Literal(s) => Ok(Value::Str(s.clone())),
            OpKind::Path { absolute, steps } => self.eval_path(*absolute, *steps, ctx),
            OpKind::Union(a, b) => {
                let mut left = self.eval(*a, ctx)?.into_nodes()?;
                let right = self.eval(*b, ctx)?.into_nodes()?;
                left.extend(right);
                Ok(Value::node_set(self.doc, left))
            }
            OpKind::Intersect(a, b) => {
                let left = self.eval(*a, ctx)?.into_nodes()?;
                let right = self.eval(*b, ctx)?.into_nodes()?;
                Ok(Value::NodeSet(crate::dp::set_intersect(left, &right)))
            }
            OpKind::Except(a, b) => {
                let left = self.eval(*a, ctx)?.into_nodes()?;
                let right = self.eval(*b, ctx)?.into_nodes()?;
                Ok(Value::NodeSet(crate::dp::set_except(left, &right)))
            }
            OpKind::NodeCompare { op, left, right } => {
                let l = self.eval(*left, ctx)?.into_nodes()?;
                let r = self.eval(*right, ctx)?.into_nodes()?;
                Ok(Value::Boolean(crate::dp::node_compare(
                    *op, self.doc, &l, &r,
                )))
            }
            OpKind::Variable(name) => self.env.variable(name),
            OpKind::Or(a, b) => {
                if self.memoized {
                    if self.eval(*a, ctx)?.to_boolean() {
                        return Ok(Value::Boolean(true));
                    }
                    Ok(Value::Boolean(self.eval(*b, ctx)?.to_boolean()))
                } else {
                    let l = self.eval(*a, ctx)?.to_boolean();
                    let r = self.eval(*b, ctx)?.to_boolean();
                    Ok(Value::Boolean(l || r))
                }
            }
            OpKind::And(a, b) => {
                if self.memoized {
                    if !self.eval(*a, ctx)?.to_boolean() {
                        return Ok(Value::Boolean(false));
                    }
                    Ok(Value::Boolean(self.eval(*b, ctx)?.to_boolean()))
                } else {
                    let l = self.eval(*a, ctx)?.to_boolean();
                    let r = self.eval(*b, ctx)?.to_boolean();
                    Ok(Value::Boolean(l && r))
                }
            }
            OpKind::Not(e) => Ok(Value::Boolean(!self.eval(*e, ctx)?.to_boolean())),
            OpKind::Relational { op, left, right } => {
                let l = self.eval(*left, ctx)?;
                let r = self.eval(*right, ctx)?;
                Ok(Value::Boolean(l.compare(*op, &r, self.doc)))
            }
            OpKind::Arithmetic { op, left, right } => {
                let l = self.eval(*left, ctx)?.to_number(self.doc);
                let r = self.eval(*right, ctx)?.to_number(self.doc);
                Ok(Value::Number(op.apply(l, r)))
            }
            OpKind::Neg(e) => {
                let n = self.eval(*e, ctx)?.to_number(self.doc);
                Ok(Value::Number(-n))
            }
            OpKind::Call { name, args } => {
                let arg_ids = ir.call_args(*args);
                let mut values = Vec::with_capacity(arg_ids.len());
                for &a in arg_ids {
                    values.push(self.eval(a, ctx)?);
                }
                self.env.call(name, values, &ctx, self.doc)
            }
        }
    }

    fn eval_path(
        &mut self,
        absolute: bool,
        range: (u32, u32),
        ctx: Context,
    ) -> Result<Value, EvalError> {
        let ir = self.ir;
        let mut current: Vec<NodeId> = if absolute {
            vec![self.doc.root()]
        } else {
            vec![ctx.node]
        };
        for step in ir.path_steps(range) {
            let preds = ir.step_preds(step);
            let mut next: Vec<NodeId> = Vec::new();
            for &node in &current {
                self.stats.step_context_evaluations += 1;
                let mut selected = self.apply_step(node, step, preds)?;
                next.append(&mut selected);
            }
            if self.memoized {
                // Set semantics: document order, no duplicates.
                self.doc.sort_document_order(&mut next);
            } else {
                // List semantics: duplicates preserved, watermark recorded.
                self.stats.max_intermediate_list = self.stats.max_intermediate_list.max(next.len());
                if next.len() > self.list_limit {
                    return Err(EvalError::unsupported(format!(
                        "naive evaluation aborted: intermediate node list exceeded {} entries",
                        self.list_limit
                    )));
                }
            }
            current = next;
        }
        if self.memoized {
            Ok(Value::NodeSet(current))
        } else {
            Ok(Value::node_set(self.doc, current))
        }
    }

    /// One location step from one context node — the IR mirror of
    /// [`crate::steps::apply_step`], with the positional pick already
    /// recognized at lowering.
    fn apply_step(
        &mut self,
        from: NodeId,
        step: &StepIr,
        preds: &[OpId],
    ) -> Result<Vec<NodeId>, EvalError> {
        let mut candidates: Vec<NodeId>;
        let mut remaining = preds;
        if let Some(pick) = step.pick {
            match self.src.positional_child_step(from, &step.test, pick) {
                Some(picked) => {
                    candidates = picked;
                    remaining = &preds[1..];
                }
                None => candidates = self.src.axis_step(from, step.axis, &step.test),
            }
        } else {
            candidates = self.src.axis_step(from, step.axis, &step.test);
        }
        for &pred in remaining {
            candidates = self.filter(&candidates, step.axis.is_reverse(), pred)?;
        }
        Ok(candidates)
    }

    fn filter(
        &mut self,
        candidates: &[NodeId],
        reverse_axis: bool,
        pred: OpId,
    ) -> Result<Vec<NodeId>, EvalError> {
        let size = candidates.len();
        let mut kept = Vec::with_capacity(size);
        for (idx, &node) in candidates.iter().enumerate() {
            let position = if reverse_axis { size - idx } else { idx + 1 };
            let value = self.eval(pred, Context::new(node, position, size))?;
            if predicate_holds(&value, position) {
                kept.push(node);
            }
        }
        Ok(kept)
    }
}

/// Set-at-a-time executor over the IR — the [`crate::CoreXPathEvaluator`]
/// algorithms (forward images, backwards `sat` through inverse axes) reading
/// lowered steps.  The bitset primitives are borrowed from the AST machine
/// (`axis_image`, `test_set`); only the expression walk is replaced.
pub(crate) struct IrLinear<'d, 'q, S: AxisSource + ?Sized = Document> {
    core: CoreXPathEvaluator<'d, S>,
    doc: &'d Document,
    ir: &'q PlanIr,
    n: usize,
    trace: Option<&'q OpTrace>,
    evaluations: Cell<u64>,
    steps_applied: Cell<u64>,
}

impl<'d, 'q, S: AxisSource + ?Sized> IrLinear<'d, 'q, S> {
    pub fn new(src: &'d S, ir: &'q PlanIr, trace: Option<&'q OpTrace>) -> Self {
        let doc = src.document();
        IrLinear {
            core: CoreXPathEvaluator::new(src),
            doc,
            ir,
            n: doc.len(),
            trace,
            evaluations: Cell::new(0),
            steps_applied: Cell::new(0),
        }
    }

    pub fn stats(&self) -> EvalStats {
        EvalStats {
            evaluations: self.evaluations.get(),
            step_context_evaluations: self.steps_applied.get(),
            ..EvalStats::default()
        }
    }

    pub fn evaluate_from(
        &self,
        root: OpId,
        context_nodes: &[NodeId],
    ) -> Result<Vec<NodeId>, EvalError> {
        let mut start = NodeBitSet::empty(self.n);
        for &c in context_nodes {
            start.insert(c);
        }
        let result = self.eval_nodeset(root, &start)?;
        let mut nodes: Vec<NodeId> = result.iter_nodes().collect();
        self.doc.sort_document_order(&mut nodes);
        Ok(nodes)
    }

    fn eval_nodeset(&self, id: OpId, from: &NodeBitSet) -> Result<NodeBitSet, EvalError> {
        let Some(trace) = self.trace else {
            return self.eval_nodeset_inner(id, from);
        };
        let start = Instant::now();
        let out = self.eval_nodeset_inner(id, from);
        let width = out.as_ref().map_or(0, |s| s.count() as u64);
        trace.record(
            id,
            from.count() as u64,
            width,
            start.elapsed().as_nanos() as u64,
        );
        out
    }

    fn eval_nodeset_inner(&self, id: OpId, from: &NodeBitSet) -> Result<NodeBitSet, EvalError> {
        self.evaluations.set(self.evaluations.get() + 1);
        match &self.ir.op(id).kind {
            OpKind::Path { absolute, steps } => self.eval_path(*absolute, *steps, from),
            OpKind::Union(a, b) => {
                let mut left = self.eval_nodeset(*a, from)?;
                let right = self.eval_nodeset(*b, from)?;
                left.union_with(&right);
                Ok(left)
            }
            OpKind::Intersect(a, b) => {
                let mut left = self.eval_nodeset(*a, from)?;
                let right = self.eval_nodeset(*b, from)?;
                left.intersect_with(&right);
                Ok(left)
            }
            OpKind::Except(a, b) => {
                // A \ B as A ∩ complement(B): the set operators stay native
                // bitset operations, like everything else in this machine.
                let mut left = self.eval_nodeset(*a, from)?;
                let mut right = self.eval_nodeset(*b, from)?;
                right.complement();
                left.intersect_with(&right);
                Ok(left)
            }
            _ => Err(EvalError::fragment(
                xpeval_syntax::Fragment::CoreXPath,
                format!(
                    "non-path expression {} in node-set position",
                    self.ir.display_op(id)
                ),
            )),
        }
    }

    fn eval_path(
        &self,
        absolute: bool,
        range: (u32, u32),
        from: &NodeBitSet,
    ) -> Result<NodeBitSet, EvalError> {
        let mut current = if absolute {
            NodeBitSet::singleton(self.n, self.doc.root())
        } else {
            from.clone()
        };
        for step in self.ir.path_steps(range) {
            current = self.apply_step_forward(step, &current)?;
        }
        Ok(current)
    }

    fn apply_step_forward(
        &self,
        step: &StepIr,
        from: &NodeBitSet,
    ) -> Result<NodeBitSet, EvalError> {
        self.steps_applied.set(self.steps_applied.get() + 1);
        let mut image = self.core.axis_image(step.axis, from);
        image.intersect_with(&self.core.test_set(&step.test, step.axis));
        for &pred in self.ir.step_preds(step) {
            image.intersect_with(&self.sat(pred)?);
        }
        Ok(image)
    }

    fn sat(&self, id: OpId) -> Result<NodeBitSet, EvalError> {
        let Some(trace) = self.trace else {
            return self.sat_inner(id);
        };
        let start = Instant::now();
        let out = self.sat_inner(id);
        let width = out.as_ref().map_or(0, |s| s.count() as u64);
        // A `sat` set is context-free (computed over the whole document),
        // so the span's candidates-in is 0 by convention.
        trace.record(id, 0, width, start.elapsed().as_nanos() as u64);
        out
    }

    fn sat_inner(&self, id: OpId) -> Result<NodeBitSet, EvalError> {
        self.evaluations.set(self.evaluations.get() + 1);
        match &self.ir.op(id).kind {
            OpKind::And(a, b) => {
                let mut l = self.sat(*a)?;
                l.intersect_with(&self.sat(*b)?);
                Ok(l)
            }
            OpKind::Or(a, b) | OpKind::Union(a, b) => {
                let mut l = self.sat(*a)?;
                l.union_with(&self.sat(*b)?);
                Ok(l)
            }
            OpKind::Not(e) => {
                let mut s = self.sat(*e)?;
                s.complement();
                Ok(s)
            }
            OpKind::Path { absolute, steps } => self.sat_path(*absolute, *steps),
            _ => Err(EvalError::fragment(
                xpeval_syntax::Fragment::CoreXPath,
                format!("condition {}", self.ir.display_op(id)),
            )),
        }
    }

    fn sat_path(&self, absolute: bool, range: (u32, u32)) -> Result<NodeBitSet, EvalError> {
        let mut suffix_ok = NodeBitSet::full(self.n);
        for step in self.ir.path_steps(range).iter().rev() {
            self.steps_applied.set(self.steps_applied.get() + 1);
            let mut target = self.core.test_set(&step.test, step.axis);
            for &pred in self.ir.step_preds(step) {
                target.intersect_with(&self.sat(pred)?);
            }
            target.intersect_with(&suffix_ok);
            suffix_ok = self.core.axis_image(step.axis.inverse(), &target);
        }
        if absolute {
            if suffix_ok.contains(self.doc.root()) {
                Ok(NodeBitSet::full(self.n))
            } else {
                Ok(NodeBitSet::empty(self.n))
            }
        } else {
            Ok(suffix_ok)
        }
    }
}

/// Deterministic simulation of the Lemma 5.4 NAuxPDA over the IR — the
/// [`crate::SingletonSuccess`] checker with the Definition 6.1 validation
/// replaced by the precomputed [`PlanIr::ss_check`] verdict.  The reach memo
/// keys on the *arena index* of a step (globally unique per lowered path),
/// which replaces the AST version's pointer-identity keys.
pub(crate) struct IrSingletonSuccess<'d, 'q, S: AxisSource + ?Sized = Document> {
    src: &'d S,
    doc: &'d Document,
    ir: &'q PlanIr,
    env: EvalEnv<'q>,
    reach_memo: RefCell<HashMap<(u32, NodeId, NodeId), bool>>,
    bool_memo: RefCell<HashMap<(OpId, NodeId, usize, usize), bool>>,
    decisions: Cell<u64>,
    memo_hits: Cell<u64>,
    steps_applied: Cell<u64>,
}

impl<'d, 'q, S: AxisSource + ?Sized> IrSingletonSuccess<'d, 'q, S> {
    pub fn new(src: &'d S, ir: &'q PlanIr, env: EvalEnv<'q>) -> Result<Self, EvalError> {
        ir.ss_check()?;
        Ok(IrSingletonSuccess {
            src,
            doc: src.document(),
            ir,
            env,
            reach_memo: RefCell::new(HashMap::new()),
            bool_memo: RefCell::new(HashMap::new()),
            decisions: Cell::new(0),
            memo_hits: Cell::new(0),
            steps_applied: Cell::new(0),
        })
    }

    pub fn stats(&self) -> EvalStats {
        EvalStats {
            evaluations: self.decisions.get(),
            cache_hits: self.memo_hits.get(),
            step_context_evaluations: self.steps_applied.get(),
            ..EvalStats::default()
        }
    }

    /// Recovers the node-set result by deciding membership once per
    /// candidate (Theorem 5.5), pruned by the plan's final-step tests when
    /// the source has a tag index.
    pub fn node_set(&self, ctx: Context) -> Result<Vec<NodeId>, EvalError> {
        let root = self.ir.root();
        let mut out = Vec::new();
        match ir_result_candidates(self.ir, self.src) {
            Some(candidates) => {
                for v in candidates {
                    if self.selects(root, ctx, v)? {
                        out.push(v);
                    }
                }
            }
            None => {
                for v in self.doc.all_nodes() {
                    if self.selects(root, ctx, v)? {
                        out.push(v);
                    }
                }
            }
        }
        self.doc.sort_document_order(&mut out);
        Ok(out)
    }

    /// Membership test "node `target` is selected by opcode `id` from
    /// context `ctx`".
    pub fn selects(&self, id: OpId, ctx: Context, target: NodeId) -> Result<bool, EvalError> {
        let Some(trace) = self.env.trace else {
            return self.selects_inner(id, ctx, target);
        };
        let start = Instant::now();
        let out = self.selects_inner(id, ctx, target);
        // One membership decision: one candidate in, 0 or 1 selected out —
        // summed over candidates the root op's out-count is the result size.
        let selected = matches!(out, Ok(true)) as u64;
        trace.record(id, 1, selected, start.elapsed().as_nanos() as u64);
        out
    }

    fn selects_inner(&self, id: OpId, ctx: Context, target: NodeId) -> Result<bool, EvalError> {
        match &self.ir.op(id).kind {
            OpKind::Path { absolute, steps } => {
                let start = if *absolute { self.doc.root() } else { ctx.node };
                self.can_reach(*steps, 0, start, target)
            }
            OpKind::Union(a, b) => {
                Ok(self.selects(*a, ctx, target)? || self.selects(*b, ctx, target)?)
            }
            // The set operators stay membership tests: `target` is in the
            // intersection (difference) exactly when both (only the left)
            // membership checks succeed.
            OpKind::Intersect(a, b) => {
                Ok(self.selects(*a, ctx, target)? && self.selects(*b, ctx, target)?)
            }
            OpKind::Except(a, b) => {
                Ok(self.selects(*a, ctx, target)? && !self.selects(*b, ctx, target)?)
            }
            _ => Err(EvalError::type_error(format!(
                "expression {} is not node-set typed",
                self.ir.display_op(id)
            ))),
        }
    }

    fn can_reach(
        &self,
        range: (u32, u32),
        k: u32,
        from: NodeId,
        target: NodeId,
    ) -> Result<bool, EvalError> {
        if k == range.1 {
            return Ok(from == target);
        }
        let abs_ix = range.0 + k;
        let key = (abs_ix, from, target);
        if let Some(&b) = self.reach_memo.borrow().get(&key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return Ok(b);
        }
        self.decisions.set(self.decisions.get() + 1);
        self.steps_applied.set(self.steps_applied.get() + 1);
        let step = &self.ir.steps()[abs_ix as usize];
        let preds = self.ir.step_preds(step);
        let candidates = self.src.axis_step(from, step.axis, &step.test);
        let size = candidates.len();
        let mut result = false;
        for (idx, &cand) in candidates.iter().enumerate() {
            let position = if step.axis.is_reverse() {
                size - idx
            } else {
                idx + 1
            };
            let mut ok = true;
            for &pred in preds {
                if !self.predicate_holds_at(pred, Context::new(cand, position, size))? {
                    ok = false;
                    break;
                }
            }
            if ok && self.can_reach(range, k + 1, cand, target)? {
                result = true;
                break;
            }
        }
        self.reach_memo.borrow_mut().insert(key, result);
        Ok(result)
    }

    fn predicate_holds_at(&self, pred: OpId, ctx: Context) -> Result<bool, EvalError> {
        if self.ir.op(pred).kind.is_nodeset() {
            return self.exists(pred, ctx);
        }
        let v = self.eval_scalar(pred, ctx)?;
        Ok(predicate_holds(&v, ctx.position))
    }

    fn exists(&self, id: OpId, ctx: Context) -> Result<bool, EvalError> {
        for v in self.doc.all_nodes() {
            if self.selects(id, ctx, v)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn first_selected(&self, id: OpId, ctx: Context) -> Result<Option<NodeId>, EvalError> {
        let mut best: Option<NodeId> = None;
        for v in self.doc.all_nodes() {
            if self.selects(id, ctx, v)? {
                best = match best {
                    Some(b) if self.doc.pre(b) <= self.doc.pre(v) => Some(b),
                    _ => Some(v),
                };
            }
        }
        Ok(best)
    }

    pub fn eval_boolean(&self, id: OpId, ctx: Context) -> Result<bool, EvalError> {
        let Some(trace) = self.env.trace else {
            return self.eval_boolean_inner(id, ctx);
        };
        let start = Instant::now();
        let out = self.eval_boolean_inner(id, ctx);
        let truthy = matches!(out, Ok(true)) as u64;
        trace.record(id, 1, truthy, start.elapsed().as_nanos() as u64);
        out
    }

    fn eval_boolean_inner(&self, id: OpId, ctx: Context) -> Result<bool, EvalError> {
        let key = (id, ctx.node, ctx.position, ctx.size);
        if let Some(&b) = self.bool_memo.borrow().get(&key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return Ok(b);
        }
        self.decisions.set(self.decisions.get() + 1);
        let out = match &self.ir.op(id).kind {
            OpKind::And(a, b) => self.eval_boolean(*a, ctx)? && self.eval_boolean(*b, ctx)?,
            OpKind::Or(a, b) => self.eval_boolean(*a, ctx)? || self.eval_boolean(*b, ctx)?,
            OpKind::Not(e) => !self.eval_boolean(*e, ctx)?,
            OpKind::Path { .. }
            | OpKind::Union(_, _)
            | OpKind::Intersect(_, _)
            | OpKind::Except(_, _) => self.exists(id, ctx)?,
            OpKind::Relational { op, left, right } => self.relational(*op, *left, *right, ctx)?,
            OpKind::NodeCompare { op, left, right } => {
                self.node_compare(*op, *left, *right, ctx)?
            }
            _ => self.eval_scalar(id, ctx)?.to_boolean(),
        };
        self.bool_memo.borrow_mut().insert(key, out);
        Ok(out)
    }

    fn relational(
        &self,
        op: xpeval_syntax::RelOp,
        left: OpId,
        right: OpId,
        ctx: Context,
    ) -> Result<bool, EvalError> {
        let lvals = self.atomic_values(left, ctx)?;
        let rvals = self.atomic_values(right, ctx)?;
        for l in &lvals {
            for r in &rvals {
                if l.compare(op, r, self.doc) {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Node comparison without materializing either operand: the engine's
    /// `is`/`<<`/`>>` semantics compare the *first* node (in document
    /// order) of each side, which [`Self::first_selected`] recovers one
    /// membership test at a time.  An empty side makes the comparison
    /// false.
    fn node_compare(
        &self,
        op: xpeval_syntax::NodeCompOp,
        left: OpId,
        right: OpId,
        ctx: Context,
    ) -> Result<bool, EvalError> {
        let (Some(l), Some(r)) = (
            self.first_selected(left, ctx)?,
            self.first_selected(right, ctx)?,
        ) else {
            return Ok(false);
        };
        Ok(op.apply(self.doc.pre(l), self.doc.pre(r)))
    }

    fn atomic_values(&self, id: OpId, ctx: Context) -> Result<Vec<Value>, EvalError> {
        if self.ir.op(id).kind.is_nodeset() {
            let mut out = Vec::new();
            for v in self.doc.all_nodes() {
                if self.selects(id, ctx, v)? {
                    out.push(Value::Str(self.doc.string_value(v)));
                }
            }
            Ok(out)
        } else {
            Ok(vec![self.eval_scalar(id, ctx)?])
        }
    }

    pub fn eval_scalar(&self, id: OpId, ctx: Context) -> Result<Value, EvalError> {
        match &self.ir.op(id).kind {
            OpKind::Number(n) => Ok(Value::Number(*n)),
            OpKind::Literal(s) => Ok(Value::Str(s.clone())),
            OpKind::Arithmetic { op, left, right } => {
                let l = self.scalar_number(*left, ctx)?;
                let r = self.scalar_number(*right, ctx)?;
                Ok(Value::Number(op.apply(l, r)))
            }
            OpKind::Neg(e) => Ok(Value::Number(-self.scalar_number(*e, ctx)?)),
            OpKind::And(_, _)
            | OpKind::Or(_, _)
            | OpKind::Not(_)
            | OpKind::Relational { .. }
            | OpKind::NodeCompare { .. } => Ok(Value::Boolean(self.eval_boolean(id, ctx)?)),
            OpKind::Path { .. }
            | OpKind::Union(_, _)
            | OpKind::Intersect(_, _)
            | OpKind::Except(_, _) => Err(EvalError::type_error(
                "node-set expression in scalar position (use selects/exists)",
            )),
            OpKind::Variable(name) => self.env.variable(name),
            OpKind::Call { name, args } => {
                let arg_ids = self.ir.call_args(*args);
                if name == "boolean"
                    && arg_ids.len() == 1
                    && self.ir.op(arg_ids[0]).kind.is_nodeset()
                {
                    return Ok(Value::Boolean(self.exists(arg_ids[0], ctx)?));
                }
                let mut values = Vec::with_capacity(arg_ids.len());
                for &a in arg_ids {
                    if self.ir.op(a).kind.is_nodeset() {
                        let s = match self.first_selected(a, ctx)? {
                            Some(n) => self.doc.string_value(n),
                            None => String::new(),
                        };
                        values.push(Value::Str(s));
                    } else {
                        values.push(self.eval_scalar(a, ctx)?);
                    }
                }
                self.env.call(name, values, &ctx, self.doc)
            }
        }
    }

    fn scalar_number(&self, id: OpId, ctx: Context) -> Result<f64, EvalError> {
        if self.ir.op(id).kind.is_nodeset() {
            let s = match self.first_selected(id, ctx)? {
                Some(n) => self.doc.string_value(n),
                None => String::new(),
            };
            return Ok(crate::value::parse_xpath_number(&s));
        }
        Ok(self.eval_scalar(id, ctx)?.to_number(self.doc))
    }
}

/// The IR form of [`crate::steps::result_candidates`]: the candidate
/// universe bounded by the plan's final-step tests, preferring the
/// pre-interned global tag id over the string lookup when the source
/// answers it.
fn ir_result_candidates<S: AxisSource + ?Sized>(ir: &PlanIr, src: &S) -> Option<Vec<NodeId>> {
    let tests = ir.final_step_tests()?;
    let mut out = Vec::new();
    for test in tests {
        let elements = match test {
            NodeTest::Resolved { name, id: Some(id) } => src
                .elements_by_tag(*id)
                .or_else(|| src.elements_named(name))?,
            NodeTest::Resolved { name, id: None } => src.elements_named(name)?,
            NodeTest::Name(name) => src.elements_named(name)?,
            _ => return None,
        };
        out.extend_from_slice(elements);
    }
    src.document().sort_document_order(&mut out);
    Some(out)
}

/// The Theorem 5.5 loop over the IR — [`crate::ParallelEvaluator`] with
/// per-worker [`IrSingletonSuccess`] checkers.  Constructing a worker is
/// nearly free: the Definition 6.1 validation is the plan's precomputed
/// verdict instead of a fresh AST walk per thread.
pub(crate) fn parallel_ir<S: AxisSource + ?Sized>(
    src: &S,
    ir: &PlanIr,
    threads: usize,
    ctx: Context,
    env: EvalEnv<'_>,
) -> Result<(Value, EvalStats), EvalError> {
    let checker = IrSingletonSuccess::new(src, ir, env)?;
    let root = ir.root();
    match ir.op(root).ty {
        ExprType::NodeSet => {
            drop(checker);
            let (nodes, stats) = parallel_node_set(src, ir, threads, ctx, env)?;
            Ok((Value::NodeSet(nodes), stats))
        }
        ExprType::Boolean => {
            let value = Value::Boolean(checker.eval_boolean(root, ctx)?);
            Ok((value, checker.stats()))
        }
        ExprType::Number | ExprType::Str => {
            let value = checker.eval_scalar(root, ctx)?;
            Ok((value, checker.stats()))
        }
    }
}

fn parallel_node_set<S: AxisSource + ?Sized>(
    src: &S,
    ir: &PlanIr,
    threads: usize,
    ctx: Context,
    env: EvalEnv<'_>,
) -> Result<(Vec<NodeId>, EvalStats), EvalError> {
    let doc = src.document();
    let candidates: Vec<NodeId> =
        ir_result_candidates(ir, src).unwrap_or_else(|| doc.all_nodes().collect());
    if threads <= 1 || candidates.len() < 2 {
        let checker = IrSingletonSuccess::new(src, ir, env)?;
        let nodes = checker.node_set(ctx)?;
        return Ok((nodes, checker.stats()));
    }

    let chunk_size = candidates.len().div_ceil(threads);
    let root = ir.root();
    let results: Result<Vec<(Vec<NodeId>, EvalStats)>, EvalError> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in candidates.chunks(chunk_size) {
            handles.push(
                scope.spawn(move || -> Result<(Vec<NodeId>, EvalStats), EvalError> {
                    // Each worker owns independent memo tables, mirroring the
                    // independent NAuxPDA runs of the membership proof.  The
                    // environment is shared: handlers are Send + Sync.
                    let checker = IrSingletonSuccess::new(src, ir, env)?;
                    let mut selected = Vec::new();
                    for &v in chunk {
                        if checker.selects(root, ctx, v)? {
                            selected.push(v);
                        }
                    }
                    Ok((selected, checker.stats()))
                }),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut out: Vec<NodeId> = Vec::new();
    let mut stats = EvalStats::default();
    for (selected, worker_stats) in results? {
        out.extend(selected);
        stats += worker_stats;
    }
    doc.sort_document_order(&mut out);
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::execute;
    use crate::ir::PlanIr;
    use std::sync::Arc;
    use xpeval_dom::{parse_xml, PreparedDocument};
    use xpeval_syntax::{classify, parse_query};

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book><paper year="2003"><title>C</title></paper></lib>"#;
    const TREE: &str =
        "<r><a><b><c/></b><b/><d/></a><a><b><c/></b><d/><b><c/></b></a><e><a><b/></a></e></r>";

    const STRATEGIES: [EvalStrategy; 5] = [
        EvalStrategy::ContextValueTable,
        EvalStrategy::Naive,
        EvalStrategy::CoreXPathLinear,
        EvalStrategy::Parallel { threads: 3 },
        EvalStrategy::SingletonSuccess,
    ];

    const QUERIES: [&str; 27] = [
        "/lib/book/title",
        "//title",
        "//a/b",
        "//book[@year = 2003]/title",
        "//book[position() = 2]",
        "//book[1]/title",
        "//book[last()]",
        "//book[position() + 1 = last()]",
        "//book[not(child::cite)]",
        "//b[parent::a and not(descendant::c)]",
        "//a[child::b or child::d]/child::b",
        "//title | //cite",
        "/descendant::a/child::b[descendant::c and not(following-sibling::d)]",
        "//c/preceding::b",
        "//b/following::d",
        "count(//book)",
        "string(//book[1]/title)",
        "boolean(//cite)",
        "not(//nosuch)",
        "1 + 2 * 3",
        "concat('x', string(count(//title)))",
        "//book[title = 'B']",
        "//title intersect //book/title",
        "(//title | //cite) except //paper/title",
        "//b except //a/b",
        "//book << //paper",
        "//cite is //book/cite",
    ];

    fn lower(src: &str) -> (Expr, Arc<PlanIr>) {
        let expr = parse_query(src).unwrap();
        let report = classify(&expr);
        let ir = PlanIr::lower(&expr, &report);
        (expr, ir)
    }

    /// Every strategy produces the same value (or rejects with the same
    /// error variant) through the IR funnel as through the AST funnel, on
    /// both a plain and a prepared document.
    #[test]
    fn ir_agrees_with_ast_across_strategies_and_sources() {
        for xml in [BOOKS, TREE] {
            let doc = parse_xml(xml).unwrap();
            let prepared = PreparedDocument::new(doc.clone());
            let ctx = Context::root(&doc);
            for q in QUERIES {
                let (expr, ir) = lower(q);
                for strategy in STRATEGIES {
                    let ast = execute(strategy, &doc, &expr, ctx);
                    let via_ir = execute_ir(strategy, &doc, &expr, &ir, ctx, EvalEnv::base());
                    match (&ast, &via_ir) {
                        (Ok((a, _)), Ok((b, _))) => {
                            assert_eq!(a, b, "{q} via {strategy:?} on Document")
                        }
                        (Err(ea), Err(eb)) => assert_eq!(
                            std::mem::discriminant(ea),
                            std::mem::discriminant(eb),
                            "{q} via {strategy:?}: {ea:?} vs {eb:?}"
                        ),
                        other => panic!("{q} via {strategy:?}: {other:?}"),
                    }
                    let ast_p = execute(strategy, &prepared, &expr, ctx);
                    let ir_p = execute_ir(strategy, &prepared, &expr, &ir, ctx, EvalEnv::base());
                    match (&ast_p, &ir_p) {
                        (Ok((a, _)), Ok((b, _))) => {
                            assert_eq!(a, b, "{q} via {strategy:?} on Prepared")
                        }
                        (Err(ea), Err(eb)) => assert_eq!(
                            std::mem::discriminant(ea),
                            std::mem::discriminant(eb),
                            "{q} via {strategy:?} prepared: {ea:?} vs {eb:?}"
                        ),
                        other => panic!("{q} via {strategy:?} prepared: {other:?}"),
                    }
                    // IR evaluation is source-agnostic: plain and prepared
                    // answers agree with each other too.
                    if let (Ok((a, _)), Ok((b, _))) = (&via_ir, &ir_p) {
                        assert_eq!(a, b, "{q} via {strategy:?}: Document vs Prepared");
                    }
                }
            }
        }
    }

    #[test]
    fn memoized_mode_shares_tables_like_dp() {
        let xml = "<r><a><b/></a><a><b/></a><a><b/></a></r>";
        let doc = parse_xml(xml).unwrap();
        let (_, ir) = lower("//b/ancestor::*[child::b]");
        let mut ev = IrEvaluator::memoized(&doc, &ir, EvalEnv::base());
        ev.eval(ir.root(), Context::root(&doc)).unwrap();
        let stats = ev.stats();
        assert!(stats.cache_hits > 0, "expected cache hits, got {stats:?}");
        assert!(stats.table_entries > 0);
    }

    #[test]
    fn eager_mode_reports_list_growth_like_naive() {
        let doc = parse_xml("<a><b/><b/><b/></a>").unwrap();
        let (_, ir) = lower("//a/b/parent::a/b/parent::a/b");
        let mut ev = IrEvaluator::eager(&doc, &ir, EvalEnv::base());
        ev.eval(ir.root(), Context::root(&doc)).unwrap();
        let eager = ev.stats();
        assert!(eager.max_intermediate_list >= 27, "{eager:?}");
        let mut memo = IrEvaluator::memoized(&doc, &ir, EvalEnv::base());
        memo.eval(ir.root(), Context::root(&doc)).unwrap();
        assert!(
            memo.stats().step_context_evaluations < eager.step_context_evaluations,
            "memoized {} vs eager {}",
            memo.stats().step_context_evaluations,
            eager.step_context_evaluations
        );
    }

    #[test]
    fn fused_plans_evaluate_identically() {
        // `//a/b` fuses to descendant::a/descendant::b; all strategies must
        // agree with the unfused AST on list- and set-semantics alike.
        let doc = parse_xml(TREE).unwrap();
        let ctx = Context::root(&doc);
        let (expr, ir) = lower("//a//b");
        assert_eq!(ir.fused_steps(), 2);
        for strategy in STRATEGIES {
            let (ast, _) = execute(strategy, &doc, &expr, ctx).unwrap();
            let (via_ir, _) = execute_ir(strategy, &doc, &expr, &ir, ctx, EvalEnv::base()).unwrap();
            assert_eq!(ast, via_ir, "{strategy:?}");
        }
    }

    #[test]
    fn positional_picks_hit_the_prepared_index() {
        let doc = parse_xml(BOOKS).unwrap();
        let prepared = PreparedDocument::new(doc.clone());
        let (_, ir) = lower("/lib/book[2]/title");
        let mut ev = IrEvaluator::memoized(&prepared, &ir, EvalEnv::base());
        let v = ev.eval(ir.root(), Context::root(&doc)).unwrap();
        let nodes = v.expect_nodes();
        assert_eq!(nodes.len(), 1);
        assert_eq!(doc.string_value(nodes[0]), "B");
    }

    #[test]
    fn linear_rejections_survive_precomputation() {
        let doc = parse_xml(BOOKS).unwrap();
        let ctx = Context::root(&doc);
        let (expr, ir) = lower("//book[position() = 2]");
        let err = execute_ir(
            EvalStrategy::CoreXPathLinear,
            &doc,
            &expr,
            &ir,
            ctx,
            EvalEnv::base(),
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::UnsupportedFragment { .. }));
        // Identical message to the AST rejection.
        let ast_err = execute(EvalStrategy::CoreXPathLinear, &doc, &expr, ctx).unwrap_err();
        assert_eq!(err, ast_err);
    }

    #[test]
    fn ss_rejections_survive_precomputation() {
        let doc = parse_xml(BOOKS).unwrap();
        let ctx = Context::root(&doc);
        let (expr, ir) = lower("count(//book)");
        for strategy in [
            EvalStrategy::SingletonSuccess,
            EvalStrategy::Parallel { threads: 2 },
        ] {
            let err = execute_ir(strategy, &doc, &expr, &ir, ctx, EvalEnv::base()).unwrap_err();
            let ast_err = execute(strategy, &doc, &expr, ctx).unwrap_err();
            assert_eq!(err, ast_err, "{strategy:?}");
        }
    }

    #[test]
    fn bindings_and_registered_functions_flow_through_the_ir() {
        use crate::registry::{FragmentImpact, FunctionSignature};
        let doc = parse_xml(BOOKS).unwrap();
        let ctx = Context::root(&doc);
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("double", 1, Some(1))
                .returns_number()
                .impact(FragmentImpact::CoreSafe),
            |args, _, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
        );
        let bindings = Bindings::new().with_number("year", 2003.0);
        let env = EvalEnv {
            registry: &registry,
            bindings: &bindings,
            trace: None,
        };

        // Variables resolve from the bindings on the tree-walk machines...
        let expr = parse_query("//book[@year = $year]/title").unwrap();
        let report = classify(&expr);
        let ir = PlanIr::lower_with_registry(&expr, &report, &registry);
        for strategy in [EvalStrategy::ContextValueTable, EvalStrategy::Naive] {
            let (v, _) = execute_ir(strategy, &doc, &expr, &ir, ctx, env).unwrap();
            let nodes = v.expect_nodes();
            assert_eq!(nodes.len(), 1, "{strategy:?}");
            assert_eq!(doc.string_value(nodes[0]), "B", "{strategy:?}");
        }
        // ...and are an error under the empty environment.
        let err = execute_ir(
            EvalStrategy::ContextValueTable,
            &doc,
            &expr,
            &ir,
            ctx,
            EvalEnv::base(),
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable { .. }), "{err:?}");

        // A core-safe registered function runs on every admitted machine,
        // including the Singleton-Success workers of the parallel strategy.
        let expr = parse_query("//book[double(@year) = 4006]/title").unwrap();
        let report = classify(&expr);
        let ir = PlanIr::lower_with_registry(&expr, &report, &registry);
        for strategy in [
            EvalStrategy::ContextValueTable,
            EvalStrategy::Naive,
            EvalStrategy::SingletonSuccess,
            EvalStrategy::Parallel { threads: 2 },
        ] {
            let (v, _) = execute_ir(strategy, &doc, &expr, &ir, ctx, env).unwrap();
            let nodes = v.expect_nodes();
            assert_eq!(nodes.len(), 1, "{strategy:?}");
            assert_eq!(doc.string_value(nodes[0]), "B", "{strategy:?}");
        }
        // Without the registration the same plan reports the call unknown.
        let err = execute_ir(
            EvalStrategy::ContextValueTable,
            &doc,
            &expr,
            &ir,
            ctx,
            EvalEnv::base(),
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::UnknownFunction { .. }), "{err:?}");
    }
}
