//! Unified engine facade over the evaluation strategies.
//!
//! Downstream code (examples, benches, integration tests) talks to a single
//! [`Engine`] and picks an [`EvalStrategy`]; the engine dispatches to the
//! matching evaluator and reports which fragment the query belongs to, so
//! callers can follow the paper's guidance: linear-time set-at-a-time
//! evaluation for Core XPath, parallel evaluation for pWF/pXPath, and the
//! polynomial context-value-table algorithm for everything else.

use crate::context::Context;
use crate::corexpath::CoreXPathEvaluator;
use crate::dp::DpEvaluator;
use crate::error::EvalError;
use crate::naive::NaiveEvaluator;
use crate::parallel::ParallelEvaluator;
use crate::success::SingletonSuccess;
use crate::value::Value;
use xpeval_dom::Document;
use xpeval_syntax::{classify, Expr, FragmentReport};

/// The evaluation strategies implemented by this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalStrategy {
    /// The context-value-table dynamic program (Proposition 2.7): polynomial
    /// combined complexity for all of XPath 1.0.  This is the default.
    ContextValueTable,
    /// Direct re-evaluation semantics (the exponential baseline of the
    /// paper's introduction).
    Naive,
    /// The O(|D|·|Q|) set-at-a-time algorithm; only accepts Core XPath.
    CoreXPathLinear,
    /// Data-parallel Singleton-Success evaluation for pWF/pXPath
    /// (Theorems 5.5/6.2, Remark 5.6) with the given number of threads.
    Parallel { threads: usize },
    /// Sequential Singleton-Success evaluation (Lemma 5.4 / Theorem 5.5).
    SingletonSuccess,
}

impl Default for EvalStrategy {
    fn default() -> Self {
        EvalStrategy::ContextValueTable
    }
}

/// Facade dispatching queries to an evaluation strategy.
#[derive(Clone, Copy, Debug, Default)]
pub struct Engine {
    strategy: EvalStrategy,
}

impl Engine {
    /// Creates an engine with the given strategy.
    pub fn new(strategy: EvalStrategy) -> Self {
        Engine { strategy }
    }

    /// The strategy this engine uses.
    pub fn strategy(&self) -> EvalStrategy {
        self.strategy
    }

    /// Classifies the query according to Figure 1 of the paper.
    pub fn classify(&self, query: &Expr) -> FragmentReport {
        classify(query)
    }

    /// Picks the strategy the paper would recommend for a query: linear
    /// set-at-a-time evaluation for Core XPath, parallel evaluation for the
    /// LOGCFL fragments, the DP algorithm otherwise.
    pub fn recommended_for(query: &Expr, threads: usize) -> Engine {
        use xpeval_syntax::Fragment::*;
        let report = classify(query);
        let strategy = match report.fragment {
            PF | PositiveCoreXPath | CoreXPath => EvalStrategy::CoreXPathLinear,
            PWF | PXPath => EvalStrategy::Parallel { threads },
            _ => EvalStrategy::ContextValueTable,
        };
        Engine::new(strategy)
    }

    /// Evaluates a query against a document from the canonical root context.
    pub fn evaluate(&self, doc: &Document, query: &Expr) -> Result<Value, EvalError> {
        self.evaluate_with_context(doc, query, Context::root(doc))
    }

    /// Evaluates a query from an explicit context triple.
    pub fn evaluate_with_context(
        &self,
        doc: &Document,
        query: &Expr,
        ctx: Context,
    ) -> Result<Value, EvalError> {
        match self.strategy {
            EvalStrategy::ContextValueTable => {
                DpEvaluator::new(doc, query).evaluate_with_context(ctx)
            }
            EvalStrategy::Naive => NaiveEvaluator::new(doc).evaluate_with_context(query, ctx),
            EvalStrategy::CoreXPathLinear => {
                let ev = CoreXPathEvaluator::new(doc);
                let nodes = ev.evaluate_from(query, &[ctx.node])?;
                Ok(Value::NodeSet(nodes))
            }
            EvalStrategy::Parallel { threads } => {
                ParallelEvaluator::new(doc, threads).evaluate_with_context(query, ctx)
            }
            EvalStrategy::SingletonSuccess => {
                let checker = SingletonSuccess::new(doc, query)?;
                use xpeval_syntax::ast::ExprType;
                match query.expr_type() {
                    ExprType::NodeSet => Ok(Value::NodeSet(checker.node_set(ctx)?)),
                    ExprType::Boolean => Ok(Value::Boolean(checker.eval_boolean(query, ctx)?)),
                    _ => checker.eval_scalar(query, ctx),
                }
            }
        }
    }

    /// Parses and evaluates a query given as a string; convenience for
    /// examples and tests.
    pub fn evaluate_str(&self, doc: &Document, query: &str) -> Result<Value, EvalError> {
        let parsed = xpeval_syntax::parse_query(query)
            .map_err(|e| EvalError::unsupported(format!("parse error: {e}")))?;
        self.evaluate(doc, &parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;
    use xpeval_syntax::{parse_query, Fragment};

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book></lib>"#;

    #[test]
    fn default_strategy_is_the_dp_algorithm() {
        assert_eq!(Engine::default().strategy(), EvalStrategy::ContextValueTable);
    }

    #[test]
    fn all_strategies_agree_on_a_core_query() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("/lib/book[child::cite]/title").unwrap();
        let reference = Engine::new(EvalStrategy::ContextValueTable).evaluate(&doc, &q).unwrap();
        for strategy in [
            EvalStrategy::Naive,
            EvalStrategy::CoreXPathLinear,
            EvalStrategy::Parallel { threads: 2 },
            EvalStrategy::SingletonSuccess,
        ] {
            let got = Engine::new(strategy).evaluate(&doc, &q).unwrap();
            assert_eq!(got, reference, "{strategy:?}");
        }
    }

    #[test]
    fn recommendation_follows_the_paper() {
        let threads = 4;
        let q = parse_query("/a/b/c").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::CoreXPathLinear
        );
        let q = parse_query("//a[not(child::b)]").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::CoreXPathLinear
        );
        let q = parse_query("//a[position() = last()]").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::Parallel { threads }
        );
        let q = parse_query("//a[@id = 3]").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::Parallel { threads }
        );
        let q = parse_query("count(//a) > 2").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::ContextValueTable
        );
    }

    #[test]
    fn classify_is_exposed() {
        let q = parse_query("//a[not(child::b)]").unwrap();
        let report = Engine::default().classify(&q);
        assert_eq!(report.fragment, Fragment::CoreXPath);
    }

    #[test]
    fn evaluate_str_convenience() {
        let doc = parse_xml(BOOKS).unwrap();
        let v = Engine::default().evaluate_str(&doc, "count(//book)").unwrap();
        assert_eq!(v, Value::Number(2.0));
        assert!(Engine::default().evaluate_str(&doc, "not valid xpath ///").is_err());
    }

    #[test]
    fn fragment_errors_propagate() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("//book[position() = 1]").unwrap();
        let res = Engine::new(EvalStrategy::CoreXPathLinear).evaluate(&doc, &q);
        assert!(matches!(res, Err(EvalError::UnsupportedFragment { .. })));
    }
}
