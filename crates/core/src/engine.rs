//! The evaluate-many half of the query pipeline: a configured engine with a
//! plan cache.
//!
//! [`Engine`] is the serving façade over the compile-once pipeline of
//! [`crate::compile`].  It is configured through [`EngineBuilder`] (strategy
//! override, worker threads, plan-cache capacity), compiles query strings
//! into [`CompiledQuery`] plans through a bounded LRU
//! [`PlanCache`](crate::cache::PlanCache), and
//! offers batch entry points ([`Engine::evaluate_many`],
//! [`Engine::evaluate_batch`]) next to the classic one-shot calls.
//!
//! The one-shot calls are thin wrappers: `evaluate_str` is exactly
//! `compile()` + [`CompiledQuery::run`], and `evaluate` is the same minus
//! the parse.  All five evaluation strategies are reachable through the
//! compiled form; the engine adds only configuration and caching on top.

use crate::bindings::Bindings;
use crate::cache::{CacheStats, DocumentCache, ShardedPlanCache};
use crate::compile::{
    default_threads, recommended_strategy, recommended_strategy_for_source, CompileOptions,
    CompiledQuery, QueryOutput,
};
use crate::context::Context;
use crate::error::EvalError;
use crate::registry::{FunctionRegistry, FunctionSignature};
use crate::value::Value;
use std::sync::Arc;
use xpeval_dom::{Document, PreparedDocument};
use xpeval_obs::Telemetry;
use xpeval_syntax::{classify, Expr, FragmentReport};

/// The evaluation strategies implemented by this crate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalStrategy {
    /// The context-value-table dynamic program (Proposition 2.7): polynomial
    /// combined complexity for all of XPath 1.0.  This is the default.
    #[default]
    ContextValueTable,
    /// Direct re-evaluation semantics (the exponential baseline of the
    /// paper's introduction).
    Naive,
    /// The O(|D|·|Q|) set-at-a-time algorithm; only accepts Core XPath.
    CoreXPathLinear,
    /// Data-parallel Singleton-Success evaluation for pWF/pXPath
    /// (Theorems 5.5/6.2, Remark 5.6) with the given number of threads.
    Parallel { threads: usize },
    /// Sequential Singleton-Success evaluation (Lemma 5.4 / Theorem 5.5).
    SingletonSuccess,
}

/// Configures and builds an [`Engine`].
///
/// ```
/// use xpeval_core::{Engine, EvalStrategy};
///
/// let engine = Engine::builder()
///     .threads(2)
///     .plan_cache_capacity(256)
///     .build();
/// # let _ = engine;
/// ```
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    strategy: Option<EvalStrategy>,
    threads: usize,
    cache_capacity: usize,
    document_cache_capacity: usize,
    registry: FunctionRegistry,
    telemetry: Option<Arc<Telemetry>>,
}

impl EngineBuilder {
    /// Default configuration: automatic per-query strategy selection, all
    /// available threads, a 128-plan cache, an 8-document index cache, no
    /// registered functions.
    pub fn new() -> Self {
        EngineBuilder {
            strategy: None,
            threads: default_threads(),
            cache_capacity: 128,
            document_cache_capacity: 8,
            registry: FunctionRegistry::new(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle to the engine being built: every plan
    /// the engine compiles records query counts and latency histograms
    /// into the handle's registry, and the handle's sampler picks runs to
    /// trace per opcode (see [`CompiledQuery::with_telemetry`]).  Without
    /// a handle (the default) the evaluation hot paths stay entirely
    /// telemetry-free.
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Fixes the evaluation strategy for every query, overriding the
    /// per-fragment recommendation.
    pub fn strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Restores automatic strategy selection (the default): each query gets
    /// the algorithm the paper recommends for its fragment.
    pub fn auto_strategy(mut self) -> Self {
        self.strategy = None;
        self
    }

    /// Worker threads for the parallel evaluator (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Plan-cache capacity in entries; 0 disables the cache.  Capacities of
    /// 16 and above are sharded by key hash
    /// ([`crate::cache::PLAN_CACHE_SHARDS`] ways) so concurrent compiles do
    /// not serialize on one mutex.  Eviction is then per shard: the
    /// capacity bound holds globally, but a shard receiving an uneven share
    /// of hot keys can evict while other shards have room — size the cache
    /// with headroom (or below 16 for exact global LRU) if the working set
    /// sits exactly at capacity.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Document-index cache capacity in prepared documents; 0 disables the
    /// cache (every [`Engine::prepare`] call rebuilds the indexes).
    pub fn document_cache_capacity(mut self, capacity: usize) -> Self {
        self.document_cache_capacity = capacity;
        self
    }

    /// Registers a user-defined function with the engine being built.  Every
    /// query compiled through the engine sees the registration: its
    /// signature is validated at compile time and its declared
    /// [`FragmentImpact`](crate::registry::FragmentImpact) participates in
    /// strategy selection.
    ///
    /// # Panics
    ///
    /// Panics if the name shadows a built-in function (see
    /// [`FunctionRegistry::register`]).
    ///
    /// ```
    /// use xpeval_core::{Engine, FragmentImpact, FunctionSignature, Value};
    ///
    /// let engine = Engine::builder()
    ///     .register_function(
    ///         FunctionSignature::new("double", 1, Some(1))
    ///             .returns_number()
    ///             .impact(FragmentImpact::CoreSafe),
    ///         |args, _ctx, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
    ///     )
    ///     .build();
    /// let doc = xpeval_dom::parse_xml("<a n='21'/>").unwrap();
    /// assert_eq!(
    ///     engine.evaluate_str(&doc, "double(/a/@n)").unwrap(),
    ///     Value::Number(42.0)
    /// );
    /// ```
    pub fn register_function<F>(mut self, signature: FunctionSignature, handler: F) -> Self
    where
        F: Fn(&[Value], &Context, &Document) -> Result<Value, EvalError> + Send + Sync + 'static,
    {
        self.registry.register(signature, handler);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Engine {
        let registry = if self.registry.is_empty() {
            FunctionRegistry::empty_shared()
        } else {
            Arc::new(self.registry)
        };
        Engine {
            inner: Arc::new(EngineInner {
                strategy: self.strategy,
                threads: self.threads,
                cache: ShardedPlanCache::new(self.cache_capacity),
                documents: DocumentCache::new(self.document_cache_capacity),
                registry,
                telemetry: self.telemetry,
            }),
        }
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder::new()
    }
}

/// Facade dispatching queries to an evaluation strategy through the
/// compile-once pipeline.
///
/// `Engine` is a cheap-to-clone *handle*: the plan cache and the document
/// cache live behind an [`Arc`], so clones share them.  A worker pool can
/// hand every worker its own `Engine` clone and a query compiled through
/// any of them is a cache hit for all — this is the surface the async
/// serving layer (`xpeval-serve`) builds on.  All entry points take
/// `&self`; the engine is `Send + Sync`.
#[derive(Clone, Debug)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

#[derive(Debug)]
struct EngineInner {
    /// `None` = pick the recommended strategy per query.
    strategy: Option<EvalStrategy>,
    threads: usize,
    cache: ShardedPlanCache,
    documents: DocumentCache,
    /// User-registered functions, shared by every plan this engine compiles.
    registry: Arc<FunctionRegistry>,
    /// Telemetry handle attached to every plan this engine compiles;
    /// `None` keeps the run paths telemetry-free.
    telemetry: Option<Arc<Telemetry>>,
}

impl Default for Engine {
    /// An engine fixed to the default strategy
    /// ([`EvalStrategy::ContextValueTable`]).
    fn default() -> Self {
        Engine::new(EvalStrategy::default())
    }
}

impl Engine {
    /// Creates an engine with a fixed strategy and default cache/threads.
    pub fn new(strategy: EvalStrategy) -> Self {
        EngineBuilder::new().strategy(strategy).build()
    }

    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The strategy this engine forces, or the default when it selects per
    /// query.
    pub fn strategy(&self) -> EvalStrategy {
        self.inner.strategy.unwrap_or_default()
    }

    /// Classifies the query according to Figure 1 of the paper.
    pub fn classify(&self, query: &Expr) -> FragmentReport {
        classify(query)
    }

    /// Picks the strategy the paper would recommend for a query: linear
    /// set-at-a-time evaluation for Core XPath, parallel evaluation for the
    /// LOGCFL fragments, the DP algorithm otherwise.
    pub fn recommended_for(query: &Expr, threads: usize) -> Engine {
        let report = classify(query);
        Engine::new(recommended_strategy(&report, threads.max(1)))
    }

    /// The function registry this engine compiles queries against.
    pub fn registry(&self) -> &Arc<FunctionRegistry> {
        &self.inner.registry
    }

    fn compile_options(&self, normalize: bool) -> CompileOptions {
        CompileOptions {
            strategy: self.inner.strategy,
            threads: self.inner.threads,
            normalize,
            registry: Arc::clone(&self.inner.registry),
        }
    }

    /// Compiles a query string under this engine's configuration, through
    /// the plan cache: a repeated source string is answered without
    /// re-parsing or re-classifying.
    pub fn compile(&self, source: &str) -> Result<Arc<CompiledQuery>, EvalError> {
        if let Some(hit) = self.inner.cache.get(source) {
            return Ok(hit);
        }
        let compiled = CompiledQuery::compile_with(source, &self.compile_options(true))?;
        let plan = Arc::new(self.attach_telemetry(compiled));
        self.inner
            .cache
            .insert(source.to_string(), Arc::clone(&plan));
        Ok(plan)
    }

    /// Compiles an already-parsed expression under this engine's
    /// configuration (not cached: there is no string key).  The AST is taken
    /// as-is, without normalization, so the evaluation behaves exactly like
    /// the classic `evaluate(&doc, &expr)` always did.
    pub fn compile_expr(&self, expr: &Expr) -> CompiledQuery {
        self.attach_telemetry(CompiledQuery::from_expr_with(
            expr.clone(),
            &self.compile_options(false),
        ))
    }

    /// The telemetry handle attached at build time, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.inner.telemetry.as_ref()
    }

    fn attach_telemetry(&self, plan: CompiledQuery) -> CompiledQuery {
        match &self.inner.telemetry {
            Some(telemetry) => plan.with_telemetry(Arc::clone(telemetry)),
            None => plan,
        }
    }

    /// Evaluates a query against a document from the canonical root context.
    pub fn evaluate(&self, doc: &Document, query: &Expr) -> Result<Value, EvalError> {
        self.evaluate_with_context(doc, query, Context::root(doc))
    }

    /// Evaluates a query from an explicit context triple.
    ///
    /// Dispatches through the same strategy funnel as
    /// [`CompiledQuery::run`], but skips building a `CompiledQuery` (no AST
    /// clone, no source rendering): callers holding an `&Expr` and
    /// evaluating it repeatedly should not pay per-call compilation —
    /// compile once via [`Engine::compile_expr`] if they want the plan
    /// object itself.
    pub fn evaluate_with_context(
        &self,
        doc: &Document,
        query: &Expr,
        ctx: Context,
    ) -> Result<Value, EvalError> {
        let strategy = match self.inner.strategy {
            Some(s) => s,
            None => recommended_strategy(&classify(query), self.inner.threads),
        };
        crate::compile::execute(strategy, doc, query, ctx).map(|(value, _)| value)
    }

    /// Parses (through the plan cache) and evaluates a query string,
    /// returning just the value.
    pub fn evaluate_str(&self, doc: &Document, query: &str) -> Result<Value, EvalError> {
        Ok(self.compile(query)?.run(doc)?.value)
    }

    /// Parses (through the plan cache) and evaluates a query string,
    /// returning the full [`QueryOutput`] — value, work counters and
    /// fragment.
    pub fn query_str(&self, doc: &Document, query: &str) -> Result<QueryOutput, EvalError> {
        self.compile(query)?.run(doc)
    }

    /// Batch entry point: evaluates one compiled query over many contexts
    /// (see [`CompiledQuery::run_many`] for the table-sharing guarantee).
    ///
    /// The plan carries its own strategy and thread count: engine
    /// configuration applies at *compile* time, so compile the query
    /// through [`Engine::compile`] to run batches under this engine's
    /// settings.
    pub fn evaluate_many(
        &self,
        doc: &Document,
        query: &CompiledQuery,
        contexts: &[Context],
    ) -> Result<Vec<QueryOutput>, EvalError> {
        query.run_many(doc, contexts)
    }

    /// Batch entry point: evaluates many compiled queries against one
    /// document from the root context.  Results are per-query so one
    /// failing query does not poison the batch.  As with
    /// [`Engine::evaluate_many`], each plan carries its own strategy;
    /// engine configuration applies when the queries are compiled.
    pub fn evaluate_batch(
        &self,
        doc: &Document,
        queries: &[&CompiledQuery],
    ) -> Vec<Result<QueryOutput, EvalError>> {
        queries.iter().map(|q| q.run(doc)).collect()
    }

    /// Prepares a document's axis indexes through the engine's document
    /// cache: repeated calls on the same `Arc<Document>` return the cached
    /// [`PreparedDocument`] — the document-side analogue of
    /// [`Engine::compile`].
    ///
    /// Entries are keyed by the `Arc` allocation address — usable only
    /// because the cache itself keeps each document alive (see
    /// [`crate::cache::DocKey`] for the address-reuse hazard).  Layers that
    /// name and replace documents (a catalog) should route through
    /// [`Engine::prepare_keyed`] with their own stable id instead.
    pub fn prepare(&self, doc: &Arc<Document>) -> Arc<PreparedDocument> {
        self.inner.documents.get_or_prepare(doc)
    }

    /// Prepares a document under a caller-assigned stable key (e.g. a
    /// catalog `DocId`), through the engine's document cache.  Unlike
    /// [`Engine::prepare`], the key survives document replacement: passing
    /// a different document under the same key drops the stale index and
    /// rebuilds, never serving the old one.
    pub fn prepare_keyed(&self, key: u64, doc: &Arc<Document>) -> Arc<PreparedDocument> {
        self.inner.documents.get_or_prepare_keyed(key, doc)
    }

    /// Publishes an already-prepared document under a stable key,
    /// unconditionally replacing the key's entry (O(1), no index build).
    /// The commit half of [`Engine::prepare_keyed`] for callers that
    /// serialize installation under their own lock — see
    /// [`crate::cache::DocumentCache::insert_keyed`].
    pub fn cache_keyed(&self, key: u64, prepared: &Arc<PreparedDocument>) {
        self.inner.documents.insert_keyed(key, prepared);
    }

    /// Drops the document-cache entry under a stable key (no-op when
    /// absent); returns whether one was removed.  Call when the key is
    /// retired — e.g. a catalog removing or evicting the document — so
    /// the dead index does not stay pinned until LRU pressure finds it.
    pub fn discard_keyed(&self, key: u64) -> bool {
        self.inner.documents.remove_keyed(key)
    }

    /// Evaluates a query against a prepared document from the canonical
    /// root context.  With automatic strategy selection the document's node
    /// count and the tag-index selectivity of the query participate in the
    /// choice ([`recommended_strategy_for_source`]).
    pub fn evaluate_prepared(
        &self,
        doc: &PreparedDocument,
        query: &Expr,
    ) -> Result<Value, EvalError> {
        let strategy = match self.inner.strategy {
            Some(s) => s,
            None => {
                recommended_strategy_for_source(&classify(query), self.inner.threads, query, doc)
            }
        };
        let ctx = Context::root(doc.document());
        crate::compile::execute(strategy, doc, query, ctx).map(|(value, _)| value)
    }

    /// Parses (through the plan cache) and evaluates a query string against
    /// a prepared document, returning just the value.
    pub fn evaluate_str_prepared(
        &self,
        doc: &PreparedDocument,
        query: &str,
    ) -> Result<Value, EvalError> {
        Ok(self.compile(query)?.run_prepared(doc)?.value)
    }

    /// Parses (through the plan cache) and evaluates a query string against
    /// a prepared document, returning the full [`QueryOutput`].
    pub fn query_str_prepared(
        &self,
        doc: &PreparedDocument,
        query: &str,
    ) -> Result<QueryOutput, EvalError> {
        self.compile(query)?.run_prepared(doc)
    }

    /// Batch entry point over a prepared document: evaluates one compiled
    /// query over many contexts (see [`CompiledQuery::run_many_prepared`]).
    pub fn evaluate_many_prepared(
        &self,
        doc: &PreparedDocument,
        query: &CompiledQuery,
        contexts: &[Context],
    ) -> Result<Vec<QueryOutput>, EvalError> {
        query.run_many_prepared(doc, contexts)
    }

    /// Batch entry point over a prepared document: evaluates many compiled
    /// queries against it from the root context, sharing the prepared
    /// indexes across the whole batch.
    pub fn evaluate_batch_prepared(
        &self,
        doc: &PreparedDocument,
        queries: &[&CompiledQuery],
    ) -> Vec<Result<QueryOutput, EvalError>> {
        queries.iter().map(|q| q.run_prepared(doc)).collect()
    }

    /// Parses (through the plan cache) and evaluates a query string with
    /// external variable bindings for its `$name` references.  The plan
    /// cache key is the source string alone: sixty-four different binding
    /// sets against one query are one compile and sixty-three cache hits.
    pub fn evaluate_str_bound(
        &self,
        doc: &Document,
        query: &str,
        bindings: &Bindings,
    ) -> Result<Value, EvalError> {
        Ok(self.compile(query)?.run_bound(doc, bindings)?.value)
    }

    /// [`Engine::query_str`] with external variable bindings.
    pub fn query_str_bound(
        &self,
        doc: &Document,
        query: &str,
        bindings: &Bindings,
    ) -> Result<QueryOutput, EvalError> {
        self.compile(query)?.run_bound(doc, bindings)
    }

    /// [`Engine::evaluate_str_prepared`] with external variable bindings.
    pub fn evaluate_str_prepared_bound(
        &self,
        doc: &PreparedDocument,
        query: &str,
        bindings: &Bindings,
    ) -> Result<Value, EvalError> {
        Ok(self
            .compile(query)?
            .run_prepared_bound(doc, bindings)?
            .value)
    }

    /// [`Engine::query_str_prepared`] with external variable bindings.
    pub fn query_str_prepared_bound(
        &self,
        doc: &PreparedDocument,
        query: &str,
        bindings: &Bindings,
    ) -> Result<QueryOutput, EvalError> {
        self.compile(query)?.run_prepared_bound(doc, bindings)
    }

    /// [`Engine::evaluate_batch_prepared`] with one binding set shared by
    /// the whole batch.  Queries without variables ignore the bindings, so
    /// mixed batches are fine.
    pub fn evaluate_batch_prepared_bound(
        &self,
        doc: &PreparedDocument,
        queries: &[&CompiledQuery],
        bindings: &Bindings,
    ) -> Vec<Result<QueryOutput, EvalError>> {
        queries
            .iter()
            .map(|q| q.run_prepared_bound(doc, bindings))
            .collect()
    }

    /// Counters of the plan cache, aggregate and per shard.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Counters of the document-index cache.
    pub fn document_cache_stats(&self) -> CacheStats {
        self.inner.documents.stats()
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear_plan_cache(&self) {
        self.inner.cache.clear();
    }

    /// Drops every cached prepared document (counters are kept).
    pub fn clear_document_cache(&self) {
        self.inner.documents.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;
    use xpeval_syntax::{parse_query, Fragment};

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book></lib>"#;

    #[test]
    fn default_strategy_is_the_dp_algorithm() {
        assert_eq!(
            Engine::default().strategy(),
            EvalStrategy::ContextValueTable
        );
    }

    #[test]
    fn all_strategies_agree_on_a_core_query() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("/lib/book[child::cite]/title").unwrap();
        let reference = Engine::new(EvalStrategy::ContextValueTable)
            .evaluate(&doc, &q)
            .unwrap();
        for strategy in [
            EvalStrategy::Naive,
            EvalStrategy::CoreXPathLinear,
            EvalStrategy::Parallel { threads: 2 },
            EvalStrategy::SingletonSuccess,
        ] {
            let got = Engine::new(strategy).evaluate(&doc, &q).unwrap();
            assert_eq!(got, reference, "{strategy:?}");
        }
    }

    #[test]
    fn recommendation_follows_the_paper() {
        let threads = 4;
        let q = parse_query("/a/b/c").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::CoreXPathLinear
        );
        let q = parse_query("//a[not(child::b)]").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::CoreXPathLinear
        );
        let q = parse_query("//a[position() = last()]").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::Parallel { threads }
        );
        let q = parse_query("//a[@id = 3]").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::Parallel { threads }
        );
        let q = parse_query("count(//a) > 2").unwrap();
        assert_eq!(
            Engine::recommended_for(&q, threads).strategy(),
            EvalStrategy::ContextValueTable
        );
    }

    #[test]
    fn classify_is_exposed() {
        let q = parse_query("//a[not(child::b)]").unwrap();
        let report = Engine::default().classify(&q);
        assert_eq!(report.fragment, Fragment::CoreXPath);
    }

    #[test]
    fn evaluate_str_convenience() {
        let doc = parse_xml(BOOKS).unwrap();
        let v = Engine::default()
            .evaluate_str(&doc, "count(//book)")
            .unwrap();
        assert_eq!(v, Value::Number(2.0));
        assert!(Engine::default()
            .evaluate_str(&doc, "not valid xpath ///")
            .is_err());
    }

    #[test]
    fn parse_failures_are_parse_errors() {
        let doc = parse_xml(BOOKS).unwrap();
        let err = Engine::default().evaluate_str(&doc, "//book[").unwrap_err();
        assert!(matches!(err, EvalError::Parse { .. }), "{err:?}");
    }

    #[test]
    fn fragment_errors_propagate() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("//book[position() = 1]").unwrap();
        let res = Engine::new(EvalStrategy::CoreXPathLinear).evaluate(&doc, &q);
        assert!(matches!(res, Err(EvalError::UnsupportedFragment { .. })));
    }

    #[test]
    fn repeated_strings_hit_the_plan_cache() {
        let doc = parse_xml(BOOKS).unwrap();
        let engine = Engine::builder().build();
        for _ in 0..3 {
            engine.evaluate_str(&doc, "count(//book)").unwrap();
        }
        let s = engine.cache_stats();
        assert_eq!(s.misses, 1, "{s:?}");
        assert_eq!(s.hits, 2, "{s:?}");
        assert_eq!(s.len, 1, "{s:?}");
    }

    #[test]
    fn builder_configuration_is_respected() {
        let engine = Engine::builder()
            .strategy(EvalStrategy::Naive)
            .threads(2)
            .plan_cache_capacity(1)
            .build();
        assert_eq!(engine.strategy(), EvalStrategy::Naive);
        let plan = engine.compile("//a").unwrap();
        assert_eq!(plan.strategy(), EvalStrategy::Naive);
        // Capacity 1: the second distinct query evicts the first.
        engine.compile("//b").unwrap();
        let s = engine.cache_stats();
        assert_eq!(s.capacity, 1);
        assert_eq!(s.len, 1);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn auto_strategy_engine_picks_per_query_plans() {
        let engine = Engine::builder().threads(2).build();
        assert_eq!(
            engine.compile("/a/b").unwrap().strategy(),
            EvalStrategy::CoreXPathLinear
        );
        assert_eq!(
            engine.compile("//a[position() = 1]").unwrap().strategy(),
            EvalStrategy::Parallel { threads: 2 }
        );
        assert_eq!(
            engine.compile("count(//a) > 1").unwrap().strategy(),
            EvalStrategy::ContextValueTable
        );
    }

    #[test]
    fn prepare_is_memoized_per_document() {
        let doc = Arc::new(parse_xml(BOOKS).unwrap());
        let engine = Engine::builder().build();
        let p1 = engine.prepare(&doc);
        let p2 = engine.prepare(&doc);
        assert!(Arc::ptr_eq(&p1, &p2));
        let stats = engine.document_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        // A different document is a fresh miss.
        let other = Arc::new(parse_xml("<x/>").unwrap());
        engine.prepare(&other);
        assert_eq!(engine.document_cache_stats().misses, 2);
        engine.clear_document_cache();
        assert_eq!(engine.document_cache_stats().len, 0);
    }

    #[test]
    fn prepare_keyed_rebuilds_on_replacement() {
        let engine = Engine::builder().build();
        let v1 = Arc::new(parse_xml(BOOKS).unwrap());
        let p1 = engine.prepare_keyed(42, &v1);
        assert!(Arc::ptr_eq(&p1, &engine.prepare_keyed(42, &v1)));
        let v2 = Arc::new(parse_xml("<lib/>").unwrap());
        let p2 = engine.prepare_keyed(42, &v2);
        assert!(Arc::ptr_eq(p2.shared_document(), &v2));
        assert_eq!(engine.document_cache_stats().len, 1);
    }

    #[test]
    fn prepared_entry_points_agree_with_plain_ones() {
        let doc = Arc::new(parse_xml(BOOKS).unwrap());
        let engine = Engine::builder().threads(2).build();
        let prepared = engine.prepare(&doc);
        for q in [
            "/lib/book/title",
            "//book[@year = 2003]/title",
            "count(//book)",
            "//book[position() = last()]",
        ] {
            let plain = engine.evaluate_str(&doc, q).unwrap();
            assert_eq!(engine.evaluate_str_prepared(&prepared, q).unwrap(), plain);
            let expr = parse_query(q).unwrap();
            assert_eq!(engine.evaluate_prepared(&prepared, &expr).unwrap(), plain);
            let out = engine.query_str_prepared(&prepared, q).unwrap();
            assert_eq!(out.value, plain);
        }

        let plans: Vec<_> = ["//book", "count(//title)"]
            .iter()
            .map(|q| engine.compile(q).unwrap())
            .collect();
        let refs: Vec<&CompiledQuery> = plans.iter().map(|p| p.as_ref()).collect();
        let batch = engine.evaluate_batch_prepared(&prepared, &refs);
        assert_eq!(batch[0].as_ref().unwrap().value.expect_nodes().len(), 2);
        assert_eq!(batch[1].as_ref().unwrap().value, Value::Number(2.0));

        let contexts: Vec<Context> = doc.all_elements().map(|n| Context::new(n, 1, 1)).collect();
        let q = engine.compile("count(child::*)").unwrap();
        let plain = engine.evaluate_many(&doc, &q, &contexts).unwrap();
        let fast = engine
            .evaluate_many_prepared(&prepared, &q, &contexts)
            .unwrap();
        for (a, b) in plain.iter().zip(&fast) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn default_plan_cache_is_sharded_with_observable_shards() {
        let engine = Engine::builder().build(); // capacity 128 → 8 shards
        for i in 0..20 {
            engine.compile(&format!("//a[child::t{i}]")).unwrap();
        }
        let s = engine.cache_stats();
        assert_eq!(s.capacity, 128);
        assert_eq!(s.per_shard.len(), crate::cache::PLAN_CACHE_SHARDS);
        assert_eq!(s.per_shard.iter().map(|p| p.len).sum::<usize>(), 20);
        assert!(s.per_shard.iter().filter(|p| p.len > 0).count() > 1);
    }

    #[test]
    fn clones_share_the_plan_and_document_caches() {
        let doc = Arc::new(parse_xml(BOOKS).unwrap());
        let engine = Engine::builder().build();
        let clone = engine.clone();

        // A plan compiled through the clone is a cache hit on the original.
        clone.evaluate_str(&doc, "count(//book)").unwrap();
        engine.evaluate_str(&doc, "count(//book)").unwrap();
        let s = engine.cache_stats();
        assert_eq!((s.misses, s.hits), (1, 1), "{s:?}");

        // Same for the document cache.
        let p1 = clone.prepare(&doc);
        let p2 = engine.prepare(&doc);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(engine.document_cache_stats().hits, 1);
    }

    #[test]
    fn cache_stats_display_is_a_single_summary_line() {
        let engine = Engine::builder().build();
        engine.compile("//a").unwrap();
        engine.compile("//a").unwrap();
        let line = engine.cache_stats().to_string();
        assert!(line.contains("hits 1/2 (50.0%)"), "{line}");
        assert!(line.contains("shards 8"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn registered_functions_flow_through_the_engine() {
        use crate::registry::FragmentImpact;
        let doc = parse_xml(BOOKS).unwrap();
        let engine = Engine::builder()
            .threads(2)
            .register_function(
                FunctionSignature::new("double", 1, Some(1))
                    .returns_number()
                    .impact(FragmentImpact::CoreSafe),
                |args, _, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
            )
            .build();
        assert_eq!(engine.registry().len(), 1);
        let v = engine
            .evaluate_str(&doc, "//book[double(@year) = 4006]/title")
            .unwrap();
        assert_eq!(doc.string_value(v.expect_nodes()[0]), "B");
        // Core-safe registration keeps the linear-bound parallel plan.
        let plan = engine
            .compile("//book[double(@year) = 4006]/title")
            .unwrap();
        assert!(matches!(plan.strategy(), EvalStrategy::Parallel { .. }));
        // Compile-time arity validation applies to registered names too.
        let err = engine.compile("double(1, 2)").unwrap_err();
        assert!(matches!(err, EvalError::WrongArity { .. }), "{err:?}");
        // An engine without the registration rejects the name at compile.
        let err = Engine::builder().build().compile("double(1)").unwrap_err();
        assert!(matches!(err, EvalError::UnknownFunction { .. }), "{err:?}");
    }

    #[test]
    fn one_plan_serves_many_bindings_without_cache_misses() {
        let doc = Arc::new(parse_xml(BOOKS).unwrap());
        let engine = Engine::builder().build();
        let prepared = engine.prepare(&doc);
        let query = "//book[@year = $year]/title";
        let mut non_empty = 0;
        for year in 0..64 {
            let b = Bindings::new().with_number("year", 1990.0 + year as f64);
            let out = engine.query_str_bound(&doc, query, &b).unwrap();
            assert_eq!(
                engine
                    .evaluate_str_prepared_bound(&prepared, query, &b)
                    .unwrap(),
                out.value
            );
            if !out.value.clone().expect_nodes().is_empty() {
                non_empty += 1;
            }
        }
        assert_eq!(non_empty, 2, "years 2001 and 2003 match");
        // Binding values never enter the plan-cache key: one miss compiles
        // the query, every later parameterization is a hit.
        let s = engine.cache_stats();
        assert_eq!(s.misses, 1, "{s:?}");
        assert_eq!(s.hits, 127, "{s:?}");
        assert_eq!(s.len, 1, "{s:?}");

        // Unbound evaluation of the same cached plan errors eagerly.
        let err = engine.evaluate_str(&doc, query).unwrap_err();
        assert!(matches!(err, EvalError::UnboundVariable { .. }), "{err:?}");
    }

    #[test]
    fn bound_batches_share_one_binding_set() {
        let doc = Arc::new(parse_xml(BOOKS).unwrap());
        let engine = Engine::builder().build();
        let prepared = engine.prepare(&doc);
        let with_var = engine.compile("count(//book[@year = $year])").unwrap();
        let without = engine.compile("count(//book)").unwrap();
        let b = Bindings::new().with_number("year", 2003.0);
        let results = engine.evaluate_batch_prepared_bound(&prepared, &[&with_var, &without], &b);
        assert_eq!(results[0].as_ref().unwrap().value, Value::Number(1.0));
        assert_eq!(results[1].as_ref().unwrap().value, Value::Number(2.0));
        // A missing binding fails only the query that needs it.
        let results = engine.evaluate_batch_prepared_bound(
            &prepared,
            &[&with_var, &without],
            &Bindings::new(),
        );
        assert!(matches!(results[0], Err(EvalError::UnboundVariable { .. })));
        assert!(results[1].is_ok());
    }

    #[test]
    fn batch_entry_points() {
        let doc = parse_xml(BOOKS).unwrap();
        let engine = Engine::builder().build();
        let q1 = engine.compile("count(//book)").unwrap();
        let q2 = engine.compile("//book[child::cite]/title").unwrap();
        let bad = CompiledQuery::compile("//book[position() = 1]")
            .unwrap()
            .with_strategy(EvalStrategy::CoreXPathLinear);
        let results = engine.evaluate_batch(&doc, &[&q1, &q2, &bad]);
        assert_eq!(results[0].as_ref().unwrap().value, Value::Number(2.0));
        assert_eq!(results[1].as_ref().unwrap().value.expect_nodes().len(), 1);
        assert!(
            results[2].is_err(),
            "unsupported fragment must not poison the batch"
        );

        let contexts: Vec<Context> = doc.all_elements().map(|n| Context::new(n, 1, 1)).collect();
        let q = engine.compile("count(child::*)").unwrap();
        let outs = engine.evaluate_many(&doc, &q, &contexts).unwrap();
        assert_eq!(outs.len(), contexts.len());
    }
}
