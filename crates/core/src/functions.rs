//! The XPath 1.0 core function library (§4 of the recommendation).
//!
//! All evaluators share this implementation: they evaluate the argument
//! expressions with their own strategy and then delegate to
//! [`call_function`].  `not(..)` never reaches this module because the
//! parser represents it as a dedicated AST node.

use crate::context::Context;
use crate::error::EvalError;
use crate::value::Value;
use xpeval_dom::Document;

/// Names of the functions implemented by [`call_function`].
pub const SUPPORTED_FUNCTIONS: &[&str] = &[
    "position",
    "last",
    "count",
    "sum",
    "true",
    "false",
    "boolean",
    "number",
    "string",
    "concat",
    "contains",
    "starts-with",
    "substring",
    "substring-before",
    "substring-after",
    "string-length",
    "normalize-space",
    "translate",
    "name",
    "local-name",
    "floor",
    "ceiling",
    "round",
];

/// Whether a function name is known to the engine (including `not`, which is
/// handled structurally).
pub fn is_supported(name: &str) -> bool {
    name == "not" || SUPPORTED_FUNCTIONS.contains(&name)
}

/// Compile-time arity signature of a built-in function:
/// `(min_args, max_args)` with `None` meaning unbounded.  Mirrors the
/// runtime checks inside [`call_function`] so the compiler can reject a
/// wrong-arity call before any document is touched.  Returns `None` for
/// names that are not built-ins (the registry then gets a say).
pub fn builtin_signature(name: &str) -> Option<(usize, Option<usize>)> {
    Some(match name {
        "position" | "last" | "true" | "false" => (0, Some(0)),
        "count" | "sum" | "boolean" | "floor" | "ceiling" | "round" | "not" => (1, Some(1)),
        "number" | "string" | "string-length" | "normalize-space" | "name" | "local-name" => {
            (0, Some(1))
        }
        "contains" | "starts-with" | "substring-before" | "substring-after" => (2, Some(2)),
        "substring" => (2, Some(3)),
        "translate" => (3, Some(3)),
        "concat" => (2, None),
        _ => return None,
    })
}

fn arity_error(name: &str, expected: &str, got: usize) -> EvalError {
    EvalError::WrongArity {
        name: name.to_string(),
        expected: expected.to_string(),
        got,
    }
}

/// Evaluates a call to a core-library function over already-evaluated
/// argument values.
pub fn call_function(
    name: &str,
    args: Vec<Value>,
    ctx: &Context,
    doc: &Document,
) -> Result<Value, EvalError> {
    match name {
        "position" => {
            expect_arity(name, &args, 0)?;
            Ok(Value::Number(ctx.position as f64))
        }
        "last" => {
            expect_arity(name, &args, 0)?;
            Ok(Value::Number(ctx.size as f64))
        }
        "true" => {
            expect_arity(name, &args, 0)?;
            Ok(Value::Boolean(true))
        }
        "false" => {
            expect_arity(name, &args, 0)?;
            Ok(Value::Boolean(false))
        }
        "count" => {
            expect_arity(name, &args, 1)?;
            let nodes = args.into_iter().next().unwrap().into_nodes()?;
            Ok(Value::Number(nodes.len() as f64))
        }
        "sum" => {
            expect_arity(name, &args, 1)?;
            let nodes = args.into_iter().next().unwrap().into_nodes()?;
            let total: f64 = nodes
                .iter()
                .map(|&n| crate::value::parse_xpath_number(&doc.string_value(n)))
                .sum();
            Ok(Value::Number(total))
        }
        "boolean" => {
            expect_arity(name, &args, 1)?;
            Ok(Value::Boolean(args[0].to_boolean()))
        }
        "number" => {
            let v = optional_arg(name, args, ctx, doc)?;
            Ok(Value::Number(v.to_number(doc)))
        }
        "string" => {
            let v = optional_arg(name, args, ctx, doc)?;
            Ok(Value::Str(v.to_xpath_string(doc)))
        }
        "concat" => {
            if args.len() < 2 {
                return Err(arity_error(name, "2 or more", args.len()));
            }
            let mut out = String::new();
            for a in &args {
                out.push_str(&a.to_xpath_string(doc));
            }
            Ok(Value::Str(out))
        }
        "contains" => {
            expect_arity(name, &args, 2)?;
            let hay = args[0].to_xpath_string(doc);
            let needle = args[1].to_xpath_string(doc);
            Ok(Value::Boolean(hay.contains(&needle)))
        }
        "starts-with" => {
            expect_arity(name, &args, 2)?;
            let hay = args[0].to_xpath_string(doc);
            let prefix = args[1].to_xpath_string(doc);
            Ok(Value::Boolean(hay.starts_with(&prefix)))
        }
        "substring-before" => {
            expect_arity(name, &args, 2)?;
            let hay = args[0].to_xpath_string(doc);
            let sep = args[1].to_xpath_string(doc);
            Ok(Value::Str(
                hay.split_once(&sep)
                    .map(|(a, _)| a.to_string())
                    .unwrap_or_default(),
            ))
        }
        "substring-after" => {
            expect_arity(name, &args, 2)?;
            let hay = args[0].to_xpath_string(doc);
            let sep = args[1].to_xpath_string(doc);
            Ok(Value::Str(
                hay.split_once(&sep)
                    .map(|(_, b)| b.to_string())
                    .unwrap_or_default(),
            ))
        }
        "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(arity_error(name, "2 or 3", args.len()));
            }
            let s = args[0].to_xpath_string(doc);
            let chars: Vec<char> = s.chars().collect();
            let start = args[1].to_number(doc);
            let len = args.get(2).map(|v| v.to_number(doc));
            Ok(Value::Str(xpath_substring(&chars, start, len)))
        }
        "string-length" => {
            let v = optional_arg(name, args, ctx, doc)?;
            Ok(Value::Number(v.to_xpath_string(doc).chars().count() as f64))
        }
        "normalize-space" => {
            let v = optional_arg(name, args, ctx, doc)?;
            let s = v.to_xpath_string(doc);
            Ok(Value::Str(
                s.split_whitespace().collect::<Vec<_>>().join(" "),
            ))
        }
        "translate" => {
            expect_arity(name, &args, 3)?;
            let s = args[0].to_xpath_string(doc);
            let from: Vec<char> = args[1].to_xpath_string(doc).chars().collect();
            let to: Vec<char> = args[2].to_xpath_string(doc).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Value::Str(out))
        }
        "name" | "local-name" => {
            if args.len() > 1 {
                return Err(arity_error(name, "0 or 1", args.len()));
            }
            let node = match args.into_iter().next() {
                Some(v) => v.into_nodes()?.first().copied(),
                None => Some(ctx.node),
            };
            let s = node
                .and_then(|n| doc.name(n).map(str::to_string))
                .unwrap_or_default();
            Ok(Value::Str(s))
        }
        "floor" => {
            expect_arity(name, &args, 1)?;
            Ok(Value::Number(args[0].to_number(doc).floor()))
        }
        "ceiling" => {
            expect_arity(name, &args, 1)?;
            Ok(Value::Number(args[0].to_number(doc).ceil()))
        }
        "round" => {
            expect_arity(name, &args, 1)?;
            let n = args[0].to_number(doc);
            // XPath round(): round half up (towards +infinity).
            Ok(Value::Number((n + 0.5).floor()))
        }
        _ => Err(EvalError::UnknownFunction {
            name: name.to_string(),
        }),
    }
}

fn expect_arity(name: &str, args: &[Value], n: usize) -> Result<(), EvalError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(arity_error(name, &n.to_string(), args.len()))
    }
}

/// For functions whose single optional argument defaults to a node set
/// containing only the context node.
fn optional_arg(
    name: &str,
    args: Vec<Value>,
    ctx: &Context,
    _doc: &Document,
) -> Result<Value, EvalError> {
    match args.len() {
        0 => Ok(Value::NodeSet(vec![ctx.node])),
        1 => Ok(args.into_iter().next().unwrap()),
        n => Err(arity_error(name, "0 or 1", n)),
    }
}

/// `substring()` with XPath's rounding-based index rules (§4.2), which give
/// the famous `substring("12345", 1.5, 2.6) = "234"` behaviour.
fn xpath_substring(chars: &[char], start: f64, len: Option<f64>) -> String {
    let round = |x: f64| (x + 0.5).floor();
    let start_r = round(start);
    if start_r.is_nan() {
        return String::new();
    }
    let end = match len {
        Some(l) => {
            let e = start_r + round(l);
            if e.is_nan() {
                return String::new();
            }
            e
        }
        None => f64::INFINITY,
    };
    chars
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let pos = (*i + 1) as f64;
            pos >= start_r && pos < end
        })
        .map(|(_, c)| *c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;

    fn setup() -> (Document, Context) {
        let doc = parse_xml("<r><a>1</a><a>2</a><b> spaced  text </b></r>").unwrap();
        let ctx = Context::root(&doc);
        (doc, ctx)
    }

    fn call(name: &str, args: Vec<Value>) -> Value {
        let (doc, ctx) = setup();
        call_function(name, args, &ctx, &doc).unwrap()
    }

    #[test]
    fn position_and_last_read_the_context() {
        let (doc, _) = setup();
        let ctx = Context::new(doc.root(), 3, 9);
        assert_eq!(
            call_function("position", vec![], &ctx, &doc).unwrap(),
            Value::Number(3.0)
        );
        assert_eq!(
            call_function("last", vec![], &ctx, &doc).unwrap(),
            Value::Number(9.0)
        );
    }

    #[test]
    fn count_and_sum() {
        let (doc, ctx) = setup();
        let a_nodes: Vec<_> = doc
            .all_elements()
            .filter(|&n| doc.name(n) == Some("a"))
            .collect();
        let v = call_function(
            "count",
            vec![Value::node_set(&doc, a_nodes.clone())],
            &ctx,
            &doc,
        )
        .unwrap();
        assert_eq!(v, Value::Number(2.0));
        let v = call_function("sum", vec![Value::node_set(&doc, a_nodes)], &ctx, &doc).unwrap();
        assert_eq!(v, Value::Number(3.0));
        assert!(call_function("count", vec![Value::Number(1.0)], &ctx, &doc).is_err());
    }

    #[test]
    fn boolean_number_string() {
        assert_eq!(
            call("boolean", vec![Value::Str("x".into())]),
            Value::Boolean(true)
        );
        assert_eq!(
            call("number", vec![Value::Str("42".into())]),
            Value::Number(42.0)
        );
        assert_eq!(
            call("string", vec![Value::Number(7.0)]),
            Value::Str("7".into())
        );
        assert_eq!(call("true", vec![]), Value::Boolean(true));
        assert_eq!(call("false", vec![]), Value::Boolean(false));
    }

    #[test]
    fn string_functions() {
        assert_eq!(
            call(
                "concat",
                vec![
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                    Value::Number(1.0)
                ]
            ),
            Value::Str("ab1".into())
        );
        assert_eq!(
            call(
                "contains",
                vec![Value::Str("hello".into()), Value::Str("ell".into())]
            ),
            Value::Boolean(true)
        );
        assert_eq!(
            call(
                "starts-with",
                vec![Value::Str("hello".into()), Value::Str("he".into())]
            ),
            Value::Boolean(true)
        );
        assert_eq!(
            call(
                "substring-before",
                vec![Value::Str("1999/04/01".into()), Value::Str("/".into())]
            ),
            Value::Str("1999".into())
        );
        assert_eq!(
            call(
                "substring-after",
                vec![Value::Str("1999/04/01".into()), Value::Str("/".into())]
            ),
            Value::Str("04/01".into())
        );
        assert_eq!(
            call("string-length", vec![Value::Str("abcd".into())]),
            Value::Number(4.0)
        );
        assert_eq!(
            call("normalize-space", vec![Value::Str("  a  b \n c ".into())]),
            Value::Str("a b c".into())
        );
        assert_eq!(
            call(
                "translate",
                vec![
                    Value::Str("bar".into()),
                    Value::Str("abc".into()),
                    Value::Str("ABC".into())
                ]
            ),
            Value::Str("BAr".into())
        );
        assert_eq!(
            call(
                "translate",
                vec![
                    Value::Str("--aaa--".into()),
                    Value::Str("abc-".into()),
                    Value::Str("ABC".into())
                ]
            ),
            Value::Str("AAA".into())
        );
    }

    #[test]
    fn substring_rounding_rules() {
        assert_eq!(
            call(
                "substring",
                vec![
                    Value::Str("12345".into()),
                    Value::Number(2.0),
                    Value::Number(3.0)
                ]
            ),
            Value::Str("234".into())
        );
        assert_eq!(
            call(
                "substring",
                vec![
                    Value::Str("12345".into()),
                    Value::Number(1.5),
                    Value::Number(2.6)
                ]
            ),
            Value::Str("234".into())
        );
        assert_eq!(
            call(
                "substring",
                vec![
                    Value::Str("12345".into()),
                    Value::Number(0.0),
                    Value::Number(3.0)
                ]
            ),
            Value::Str("12".into())
        );
        assert_eq!(
            call(
                "substring",
                vec![Value::Str("12345".into()), Value::Number(2.0)]
            ),
            Value::Str("2345".into())
        );
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(call("floor", vec![Value::Number(2.7)]), Value::Number(2.0));
        assert_eq!(
            call("ceiling", vec![Value::Number(2.1)]),
            Value::Number(3.0)
        );
        assert_eq!(call("round", vec![Value::Number(2.5)]), Value::Number(3.0));
        assert_eq!(
            call("round", vec![Value::Number(-2.5)]),
            Value::Number(-2.0)
        );
    }

    #[test]
    fn name_functions() {
        let (doc, ctx) = setup();
        let b: Vec<_> = doc
            .all_elements()
            .filter(|&n| doc.name(n) == Some("b"))
            .collect();
        let v = call_function("name", vec![Value::node_set(&doc, b)], &ctx, &doc).unwrap();
        assert_eq!(v, Value::Str("b".into()));
        // Defaults to the context node (the root, which has no name).
        let v = call_function("name", vec![], &ctx, &doc).unwrap();
        assert_eq!(v, Value::Str(String::new()));
        let v = call_function("local-name", vec![Value::empty()], &ctx, &doc).unwrap();
        assert_eq!(v, Value::Str(String::new()));
    }

    #[test]
    fn defaulting_functions_use_context_node() {
        let (doc, _) = setup();
        let b = doc
            .all_elements()
            .find(|&n| doc.name(n) == Some("b"))
            .unwrap();
        let ctx = Context::new(b, 1, 1);
        let v = call_function("string", vec![], &ctx, &doc).unwrap();
        assert_eq!(v, Value::Str(" spaced  text ".into()));
        let v = call_function("normalize-space", vec![], &ctx, &doc).unwrap();
        assert_eq!(v, Value::Str("spaced text".into()));
        let v = call_function("string-length", vec![], &ctx, &doc).unwrap();
        assert_eq!(v, Value::Number(14.0));
    }

    #[test]
    fn arity_errors() {
        let (doc, ctx) = setup();
        assert!(call_function("position", vec![Value::Number(1.0)], &ctx, &doc).is_err());
        assert!(call_function("concat", vec![Value::Str("a".into())], &ctx, &doc).is_err());
        assert!(call_function("contains", vec![Value::Str("a".into())], &ctx, &doc).is_err());
        assert!(call_function("substring", vec![Value::Str("a".into())], &ctx, &doc).is_err());
        assert!(call_function("nosuchfn", vec![], &ctx, &doc).is_err());
    }

    #[test]
    fn supported_list_is_consistent() {
        let (doc, ctx) = setup();
        assert!(is_supported("not"));
        for &name in SUPPORTED_FUNCTIONS {
            assert!(is_supported(name));
            // Calling with an absurd arity must yield a WrongArity or a
            // sensible value, never UnknownFunction.
            let r = call_function(name, vec![Value::Number(1.0); 7], &ctx, &doc);
            assert!(
                !matches!(r, Err(EvalError::UnknownFunction { .. })),
                "{name} reported unknown"
            );
        }
        assert!(!is_supported("id"));
    }

    #[test]
    fn builtin_signatures_cover_exactly_the_supported_set() {
        assert!(builtin_signature("not").is_some());
        assert!(builtin_signature("id").is_none());
        for &name in SUPPORTED_FUNCTIONS {
            let (min, max) = builtin_signature(name)
                .unwrap_or_else(|| panic!("{name} missing a compile-time signature"));
            if let Some(max) = max {
                assert!(min <= max, "{name}");
            }
            // Calling with `min` arguments must never be a WrongArity error.
            let (doc, ctx) = setup();
            let r = call_function(name, vec![Value::Str("a".into()); min], &ctx, &doc);
            assert!(
                !matches!(r, Err(EvalError::WrongArity { .. })),
                "{name} rejects its own minimum arity"
            );
        }
    }
}
