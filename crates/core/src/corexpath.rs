//! Linear-time evaluator for Core XPath.
//!
//! Proposition 2.7 of the paper: Core XPath queries can be evaluated in time
//! `O(|D| · |Q|)`.  The algorithm (from Gottlob & Koch's VLDB'02 paper) works
//! *set-at-a-time*: node sets are bitsets over the document, every location
//! step is a single image computation under the axis relation (O(|D|) per
//! step), and conditions are evaluated bottom-up as the set of nodes at
//! which they hold — negation is simply bitset complement, which is why this
//! evaluator handles full Core XPath including `not(..)`.
//!
//! The trick that avoids quadratic behaviour for predicates is to evaluate
//! the relative paths inside conditions *backwards* through inverse axes:
//! `sat(χ1::t1/χ2::t2/…)` — the set of nodes from which the path matches at
//! least one node — is computed right-to-left with one inverse-axis image
//! per step.

use crate::error::EvalError;
use crate::stats::EvalStats;
use std::borrow::Cow;
use std::cell::Cell;
use xpeval_dom::{Axis, AxisSource, Document, NodeId, NodeTest};
use xpeval_syntax::{classify, Expr, Fragment, LocationPath, Step};

/// A set of document nodes represented as a bitset over arena indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeBitSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeBitSet {
    /// Empty set over a universe of `len` nodes.
    pub fn empty(len: usize) -> Self {
        NodeBitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Full set over a universe of `len` nodes.
    pub fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for i in 0..len {
            s.insert_index(i);
        }
        s
    }

    /// Singleton set.
    pub fn singleton(len: usize, node: NodeId) -> Self {
        let mut s = Self::empty(len);
        s.insert(node);
        s
    }

    #[inline]
    fn insert_index(&mut self, ix: usize) {
        self.words[ix / 64] |= 1 << (ix % 64);
    }

    /// Inserts a node.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        self.insert_index(node.index());
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let ix = node.index();
        ix < self.len && (self.words[ix / 64] >> (ix % 64)) & 1 == 1
    }

    /// Number of nodes in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no node is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeBitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeBitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place complement relative to the universe.
    pub fn complement(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        // Clear bits beyond the universe.
        let excess = self.words.len() * 64 - self.len;
        if excess > 0 {
            let last = self.words.len() - 1;
            self.words[last] &= u64::MAX >> excess;
        }
    }

    /// The member nodes in arena-index order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len)
            .filter(|&i| (self.words[i / 64] >> (i % 64)) & 1 == 1)
            .map(NodeId::from_index)
    }
}

/// Set-at-a-time Core XPath evaluator.
///
/// Generic over the document access layer: a plain [`Document`] rebuilds
/// the document-order table per evaluator and scans for name tests, a
/// [`xpeval_dom::PreparedDocument`] borrows its precomputed order and
/// answers name tests from the tag index.
pub struct CoreXPathEvaluator<'d, S: AxisSource + ?Sized = Document> {
    src: &'d S,
    doc: &'d Document,
    /// Document order (pre order) listing of all nodes; borrowed from the
    /// prepared index when available.
    order: Cow<'d, [NodeId]>,
    n: usize,
    /// Condition/node-set expressions evaluated (set-at-a-time, so one per
    /// expression node per evaluation).
    evaluations: Cell<u64>,
    /// Location-step applications (one axis image per step, forward or
    /// inverse).
    steps_applied: Cell<u64>,
}

impl<'d, S: AxisSource + ?Sized> CoreXPathEvaluator<'d, S> {
    /// Creates an evaluator for the given document.
    pub fn new(src: &'d S) -> Self {
        let doc = src.document();
        let order = src.document_order();
        let n = doc.len();
        CoreXPathEvaluator {
            src,
            doc,
            order,
            n,
            evaluations: Cell::new(0),
            steps_applied: Cell::new(0),
        }
    }

    /// Work counters accumulated so far: `evaluations` counts set-at-a-time
    /// expression evaluations, `step_context_evaluations` counts location
    /// step applications (each handling all contexts at once).
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            evaluations: self.evaluations.get(),
            step_context_evaluations: self.steps_applied.get(),
            ..EvalStats::default()
        }
    }

    /// Evaluates a Core XPath query starting from the root context and
    /// returns the selected nodes in document order.
    ///
    /// Returns [`EvalError::UnsupportedFragment`] if the query is not in
    /// Core XPath (Definition 2.5).
    pub fn evaluate_query(&self, query: &Expr) -> Result<Vec<NodeId>, EvalError> {
        self.evaluate_from(query, &[self.doc.root()])
    }

    /// Evaluates a Core XPath query from an explicit set of context nodes.
    pub fn evaluate_from(
        &self,
        query: &Expr,
        context_nodes: &[NodeId],
    ) -> Result<Vec<NodeId>, EvalError> {
        let result = self.evaluate_bits(query, context_nodes)?;
        let mut nodes: Vec<NodeId> = result.iter_nodes().collect();
        self.doc.sort_document_order(&mut nodes);
        Ok(nodes)
    }

    /// Evaluates a Core XPath query from explicit context nodes, returning
    /// the raw result **bitset** instead of a materialized vector — the
    /// entry point of the streaming API ([`crate::NodeStream`]).
    pub fn evaluate_bits(
        &self,
        query: &Expr,
        context_nodes: &[NodeId],
    ) -> Result<NodeBitSet, EvalError> {
        self.check_fragment(query)?;
        let mut start = NodeBitSet::empty(self.n);
        for &c in context_nodes {
            start.insert(c);
        }
        self.eval_nodeset(query, &start)
    }

    /// Computes the set of nodes at which a Core XPath condition holds
    /// (`{v : v ∈ [[e]]}` in the notation of the paper's Theorem 3.2 proof).
    pub fn satisfying_nodes(&self, condition: &Expr) -> Result<Vec<NodeId>, EvalError> {
        self.check_fragment(condition)?;
        let sat = self.sat(condition)?;
        let mut nodes: Vec<NodeId> = sat.iter_nodes().collect();
        self.doc.sort_document_order(&mut nodes);
        Ok(nodes)
    }

    fn check_fragment(&self, query: &Expr) -> Result<(), EvalError> {
        let report = classify(query);
        if report.fragment > Fragment::CoreXPath {
            return Err(EvalError::fragment(
                Fragment::CoreXPath,
                format!("a {} construct", report.fragment),
            ));
        }
        Ok(())
    }

    /// Forward evaluation of a node-set expression from a set of context nodes.
    fn eval_nodeset(&self, expr: &Expr, from: &NodeBitSet) -> Result<NodeBitSet, EvalError> {
        self.evaluations.set(self.evaluations.get() + 1);
        match expr {
            Expr::Path(path) => self.eval_path(path, from),
            Expr::Union(a, b) => {
                let mut left = self.eval_nodeset(a, from)?;
                let right = self.eval_nodeset(b, from)?;
                left.union_with(&right);
                Ok(left)
            }
            // The set operators are native bitset operations here — this is
            // the evaluator where `intersect`/`except` are closest to free.
            Expr::Intersect(a, b) => {
                let mut left = self.eval_nodeset(a, from)?;
                let right = self.eval_nodeset(b, from)?;
                left.intersect_with(&right);
                Ok(left)
            }
            Expr::Except(a, b) => {
                let mut left = self.eval_nodeset(a, from)?;
                let mut right = self.eval_nodeset(b, from)?;
                right.complement();
                left.intersect_with(&right);
                Ok(left)
            }
            other => Err(EvalError::fragment(
                Fragment::CoreXPath,
                format!("non-path expression {other} in node-set position"),
            )),
        }
    }

    fn eval_path(&self, path: &LocationPath, from: &NodeBitSet) -> Result<NodeBitSet, EvalError> {
        let mut current = if path.absolute {
            NodeBitSet::singleton(self.n, self.doc.root())
        } else {
            from.clone()
        };
        for step in &path.steps {
            current = self.apply_step_forward(step, &current)?;
        }
        Ok(current)
    }

    /// One forward step: image under the axis, intersected with the node
    /// test and with the satisfaction set of every predicate.
    fn apply_step_forward(&self, step: &Step, from: &NodeBitSet) -> Result<NodeBitSet, EvalError> {
        self.steps_applied.set(self.steps_applied.get() + 1);
        let mut image = self.axis_image(step.axis, from);
        image.intersect_with(&self.test_set(&step.node_test, step.axis));
        for pred in &step.predicates {
            image.intersect_with(&self.sat(pred)?);
        }
        Ok(image)
    }

    /// The satisfaction set of a Core XPath condition: all nodes `v` such
    /// that the condition holds with `v` as the context node.
    fn sat(&self, expr: &Expr) -> Result<NodeBitSet, EvalError> {
        self.evaluations.set(self.evaluations.get() + 1);
        match expr {
            Expr::And(a, b) => {
                let mut l = self.sat(a)?;
                l.intersect_with(&self.sat(b)?);
                Ok(l)
            }
            Expr::Or(a, b) => {
                let mut l = self.sat(a)?;
                l.union_with(&self.sat(b)?);
                Ok(l)
            }
            Expr::Not(e) => {
                let mut s = self.sat(e)?;
                s.complement();
                Ok(s)
            }
            Expr::Union(a, b) => {
                let mut l = self.sat(a)?;
                l.union_with(&self.sat(b)?);
                Ok(l)
            }
            Expr::Path(path) => self.sat_path(path),
            other => Err(EvalError::fragment(
                Fragment::CoreXPath,
                format!("condition {other}"),
            )),
        }
    }

    /// `sat(π)` for a location path condition: the set of context nodes from
    /// which the path selects at least one node.  Computed right-to-left
    /// through inverse axes in O(|D| · #steps).
    fn sat_path(&self, path: &LocationPath) -> Result<NodeBitSet, EvalError> {
        // Nodes that satisfy the suffix starting at step i, i.e. from which
        // steps[i..] select something.  Start with the full universe (empty
        // suffix is always satisfied) and walk backwards.
        let mut suffix_ok = NodeBitSet::full(self.n);
        for step in path.steps.iter().rev() {
            self.steps_applied.set(self.steps_applied.get() + 1);
            // Nodes that match this step's node test and predicates and
            // already satisfy the remaining suffix...
            let mut target = self.test_set(&step.node_test, step.axis);
            for pred in &step.predicates {
                target.intersect_with(&self.sat(pred)?);
            }
            target.intersect_with(&suffix_ok);
            // ...and the nodes from which such a target is reachable via the
            // axis: the image of the target under the inverse axis.
            suffix_ok = self.axis_image(step.axis.inverse(), &target);
        }
        if path.absolute {
            // An absolute path does not depend on the context node: it holds
            // at every node or at none, depending on whether the root
            // satisfies the suffix.
            if suffix_ok.contains(self.doc.root()) {
                Ok(NodeBitSet::full(self.n))
            } else {
                Ok(NodeBitSet::empty(self.n))
            }
        } else {
            Ok(suffix_ok)
        }
    }

    /// All nodes matching a node test (taking the axis' principal node type
    /// into account).
    pub(crate) fn test_set(&self, test: &NodeTest, axis: Axis) -> NodeBitSet {
        // Indexed fast path: a tag-name test on an element-principal axis
        // is exactly the tag index — no per-node string comparison.  A
        // pre-resolved test skips even the one string hash.
        if !axis.principal_is_attribute() {
            let indexed = match test {
                NodeTest::Name(name) => Some(self.src.elements_named(name)),
                NodeTest::Resolved { id: Some(id), .. } => Some(self.src.elements_by_tag(*id)),
                // Resolved-absent still carries the name so evaluation stays
                // correct on sources other than the one it resolved against.
                NodeTest::Resolved { name, id: None } => Some(self.src.elements_named(name)),
                _ => None,
            };
            if let Some(Some(elements)) = indexed {
                let mut s = NodeBitSet::empty(self.n);
                for &node in elements {
                    s.insert(node);
                }
                return s;
            }
        }
        let mut s = NodeBitSet::empty(self.n);
        for node in self.doc.all_nodes() {
            if self.doc.matches_on_axis(node, test, axis) {
                s.insert(node);
            }
        }
        s
    }

    /// Image of a node set under an axis relation, computed in O(|D|).
    pub fn axis_image(&self, axis: Axis, s: &NodeBitSet) -> NodeBitSet {
        let doc = self.doc;
        let mut out = NodeBitSet::empty(self.n);
        match axis {
            Axis::SelfAxis => out = s.clone(),
            Axis::Child => {
                for node in s.iter_nodes() {
                    let mut c = doc.first_child(node);
                    while let Some(ch) = c {
                        out.insert(ch);
                        c = doc.next_sibling(ch);
                    }
                }
            }
            Axis::Parent => {
                for node in s.iter_nodes() {
                    if let Some(p) = doc.parent(node) {
                        out.insert(p);
                    }
                }
            }
            Axis::Attribute => {
                for node in s.iter_nodes() {
                    for &a in doc.attributes(node) {
                        out.insert(a);
                    }
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                // Preorder sweep: a node is in the image iff its parent is in
                // S or already in the image.
                for &node in self.order.iter() {
                    if let Some(p) = doc.parent(node) {
                        if s.contains(p) || out.contains(p) {
                            out.insert(node);
                        }
                    }
                }
                if axis == Axis::DescendantOrSelf {
                    out.union_with(s);
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                // Reverse preorder sweep: a node is in the image iff one of
                // its children is in S or in the image.
                for &node in self.order.iter().rev() {
                    if let Some(p) = doc.parent(node) {
                        if s.contains(node) || out.contains(node) {
                            out.insert(p);
                        }
                    }
                }
                if axis == Axis::AncestorOrSelf {
                    out.union_with(s);
                }
            }
            Axis::FollowingSibling => {
                // Document-order sweep along sibling chains.
                for &node in self.order.iter() {
                    if let Some(prev) = doc.prev_sibling(node) {
                        if s.contains(prev) || out.contains(prev) {
                            out.insert(node);
                        }
                    }
                }
            }
            Axis::PrecedingSibling => {
                for &node in self.order.iter().rev() {
                    if let Some(next) = doc.next_sibling(node) {
                        if s.contains(next) || out.contains(next) {
                            out.insert(node);
                        }
                    }
                }
            }
            Axis::Following => {
                // v is following of some u ∈ S iff pre(v) >= min over u of
                // the end of u's subtree interval (the pre of the first node
                // after the subtree).  The prepared index answers the
                // interval end in O(1); the fallback walks sibling/parent
                // links.
                let mut min_start = u32::MAX;
                for u in s.iter_nodes() {
                    if doc.kind(u).is_attribute() {
                        continue;
                    }
                    min_start = min_start.min(self.subtree_end_of(u));
                }
                if min_start != u32::MAX {
                    // Preorder keys are gapped, so locate the complement
                    // range in the document-order table by binary search.
                    let lo = self.order.partition_point(|&m| doc.pre(m) < min_start);
                    for &node in &self.order[lo..] {
                        if !doc.kind(node).is_attribute() {
                            out.insert(node);
                        }
                    }
                }
            }
            Axis::Preceding => {
                // v precedes some u ∈ S iff u is following of v, i.e. iff
                // the end of v's subtree interval is <= max over u of pre(u).
                // Only nodes with pre < max_pre can satisfy that, so the
                // sweep is one range scan of the document order.
                let mut max_pre = None;
                for u in s.iter_nodes() {
                    if doc.kind(u).is_attribute() {
                        continue;
                    }
                    max_pre = Some(max_pre.map_or(doc.pre(u), |m: u32| m.max(doc.pre(u))));
                }
                if let Some(max_pre) = max_pre {
                    let hi = self.order.partition_point(|&m| doc.pre(m) < max_pre);
                    for &node in &self.order[..hi] {
                        if doc.kind(node).is_attribute() {
                            continue;
                        }
                        if self.subtree_end_of(node) <= max_pre {
                            out.insert(node);
                        }
                    }
                }
            }
        }
        out
    }

    /// Exclusive end of `n`'s preorder subtree interval in key space: from
    /// the prepared index when available, otherwise the preorder key of the
    /// first node after the subtree (no node's key falls in the gap between
    /// a subtree's exit key and that node, so both bounds separate the same
    /// node sets; `u32::MAX` when nothing follows).
    fn subtree_end_of(&self, n: NodeId) -> u32 {
        if let Some((_, end)) = self.src.subtree_interval(n) {
            return end;
        }
        first_following(self.doc, n).map_or(u32::MAX, |f| self.doc.pre(f))
    }
}

/// First node following the whole subtree of `n` in document order.
fn first_following(doc: &Document, n: NodeId) -> Option<NodeId> {
    let mut cur = n;
    loop {
        if let Some(s) = doc.next_sibling(cur) {
            return Some(s);
        }
        cur = doc.parent(cur)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::DpEvaluator;
    use xpeval_dom::parse_xml;
    use xpeval_syntax::parse_query;

    const DOC: &str =
        "<r><a><b><c/></b><b/><d/></a><a><b><c/></b><d/><b><c/></b></a><e><a><b/></a></e></r>";

    fn agree(xml: &str, query: &str) {
        let doc = parse_xml(xml).unwrap();
        let q = parse_query(query).unwrap();
        let core = CoreXPathEvaluator::new(&doc).evaluate_query(&q).unwrap();
        let dp = DpEvaluator::new(&doc, &q)
            .evaluate()
            .unwrap()
            .into_nodes()
            .unwrap();
        assert_eq!(core, dp, "disagreement on {query}");
    }

    #[test]
    fn bitset_operations() {
        let mut s = NodeBitSet::empty(130);
        assert!(s.is_empty());
        s.insert(NodeId::from_index(0));
        s.insert(NodeId::from_index(64));
        s.insert(NodeId::from_index(129));
        assert_eq!(s.count(), 3);
        assert!(s.contains(NodeId::from_index(64)));
        assert!(!s.contains(NodeId::from_index(63)));
        let mut t = NodeBitSet::empty(130);
        t.insert(NodeId::from_index(1));
        t.insert(NodeId::from_index(64));
        let mut u = s.clone();
        u.union_with(&t);
        assert_eq!(u.count(), 4);
        let mut i = s.clone();
        i.intersect_with(&t);
        assert_eq!(i.count(), 1);
        let mut c = s.clone();
        c.complement();
        assert_eq!(c.count(), 130 - 3);
        let full = NodeBitSet::full(130);
        assert_eq!(full.count(), 130);
        assert_eq!(
            NodeBitSet::singleton(130, NodeId::from_index(5))
                .iter_nodes()
                .collect::<Vec<_>>(),
            vec![NodeId::from_index(5)]
        );
    }

    #[test]
    fn agrees_with_dp_on_core_queries() {
        for q in [
            "/descendant::a/child::b",
            "/descendant::a/child::b[descendant::c]",
            "/descendant::a/child::b[descendant::c and not(following-sibling::d)]",
            "//a[not(child::d)]",
            "//b[parent::a and not(descendant::c)]",
            "//a/ancestor-or-self::*",
            "//c/preceding::b",
            "//b/following::d",
            "//b/following-sibling::*",
            "//d/preceding-sibling::b",
            "//a[child::b or child::d]/child::b",
            "/r/e/a | //d",
            "//*[not(descendant::c) and not(self::c)]",
            "//a[not(not(child::b))]",
        ] {
            agree(DOC, q);
        }
    }

    #[test]
    fn agrees_with_dp_on_deeper_document() {
        let xml = "<x><y><z><x><y/></x></z></y><z><x/></z></x>";
        for q in [
            "//x[ancestor::z]",
            "//y[not(ancestor::y)]",
            "//z[descendant::y or parent::x]",
            "/x/z/x",
            "//x[following::z]",
            "//z[preceding::y]",
        ] {
            agree(xml, q);
        }
    }

    #[test]
    fn satisfying_nodes_matches_definition() {
        // [[child::b]] = set of nodes with at least one b child.
        let doc = parse_xml(DOC).unwrap();
        let cond = parse_query("child::b").unwrap();
        let ev = CoreXPathEvaluator::new(&doc);
        let sat = ev.satisfying_nodes(&cond).unwrap();
        let expected: Vec<NodeId> = doc
            .all_nodes()
            .filter(|&n| doc.count_children_named(n, "b") > 0)
            .collect();
        assert_eq!(sat, expected);
        // not(child::b) is the complement.
        let cond = parse_query("not(child::b)").unwrap();
        let nsat = ev.satisfying_nodes(&cond).unwrap();
        assert_eq!(nsat.len(), doc.len() - expected.len());
    }

    #[test]
    fn absolute_paths_in_conditions() {
        let doc = parse_xml(DOC).unwrap();
        let ev = CoreXPathEvaluator::new(&doc);
        // The absolute condition /descendant::c holds at *every* node
        // because the document does contain a c.
        let sat = ev
            .satisfying_nodes(&parse_query("/descendant::c").unwrap())
            .unwrap();
        assert_eq!(sat.len(), doc.len());
        let sat = ev
            .satisfying_nodes(&parse_query("/descendant::nosuch").unwrap())
            .unwrap();
        assert!(sat.is_empty());
        // And it can be used inside predicates.
        agree(DOC, "//a[/descendant::c]");
        agree(DOC, "//a[not(/descendant::nosuch)]");
    }

    #[test]
    fn set_operators_run_on_bitsets() {
        for q in [
            "//b intersect //a/b",
            "//b except //a/b",
            "//b[child::c] intersect //a/b",
            "(//b | //d) except //a[child::d]/b",
            "//c except //nosuch",
            "//nosuch intersect //b",
        ] {
            agree(DOC, q);
        }
    }

    #[test]
    fn rejects_non_core_queries() {
        let doc = parse_xml(DOC).unwrap();
        let ev = CoreXPathEvaluator::new(&doc);
        for q in [
            "//a[position() = 2]",
            "count(//a)",
            "//a[@id = 1]",
            "//a[1]",
        ] {
            let query = parse_query(q).unwrap();
            assert!(
                matches!(
                    ev.evaluate_query(&query),
                    Err(EvalError::UnsupportedFragment { .. })
                ),
                "{q} should be rejected"
            );
        }
    }

    #[test]
    fn evaluate_from_arbitrary_context_nodes() {
        let doc = parse_xml(DOC).unwrap();
        let ev = CoreXPathEvaluator::new(&doc);
        let first_a = doc
            .all_elements()
            .find(|&n| doc.name(n) == Some("a"))
            .unwrap();
        let q = parse_query("child::b").unwrap();
        let res = ev.evaluate_from(&q, &[first_a]).unwrap();
        assert_eq!(res.len(), 2);
        // From both a's simultaneously.
        let all_a: Vec<NodeId> = doc
            .all_elements()
            .filter(|&n| doc.name(n) == Some("a"))
            .collect();
        let res = ev.evaluate_from(&q, &all_a).unwrap();
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn work_scales_linearly_with_document_size() {
        // Build chains of increasing size and check the evaluator's result
        // on a fixed query; this is a correctness smoke test for large inputs
        // (the timing claim is exercised by the Criterion bench).
        for n in [10usize, 100, 1000] {
            // Deep chains are built with the (iterative) builder; the
            // recursive XML parser is only meant for modestly nested inputs.
            let mut b = xpeval_dom::DocumentBuilder::new();
            b.open_element("r");
            for _ in 0..n {
                b.open_element("a");
                b.leaf_element("b");
            }
            b.leaf_element("c");
            let doc = b.finish();
            let q = parse_query("//a[child::b and not(child::c)]").unwrap();
            let ev = CoreXPathEvaluator::new(&doc);
            let res = ev.evaluate_query(&q).unwrap();
            assert_eq!(res.len(), n - 1);
        }
    }
}
