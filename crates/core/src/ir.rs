//! The flat plan IR every compiled query lowers into.
//!
//! [`crate::CompiledQuery`] used to hand the normalized AST to whichever
//! evaluator the plan selected; every strategy then re-walked `Box`-linked
//! expression nodes, re-recognized positional predicates, re-validated its
//! fragment and re-hashed name-test strings per step.  [`PlanIr`] does all
//! of that once, at compile time:
//!
//! * the expression tree is flattened into an arena of [`OpIr`] opcodes
//!   addressed by dense [`OpId`]s (children before parents, the root last),
//!   with location steps, predicate lists and function arguments stored in
//!   side arenas — evaluation walks indices, not pointers;
//! * every name test on an element-principal axis is resolved to a
//!   **workspace-global** [`xpeval_dom::TagId`] ([`xpeval_dom::intern`]), so
//!   the lowered test is valid against *every* document: an indexed source
//!   translates the global id to its local tag table (absent → empty set), an
//!   unindexed source falls back to the string the test still carries.  This
//!   is what makes one lowered plan shareable across equal documents;
//! * per-step metadata is precomputed: the leading positional pick of a
//!   child step ([`xpeval_dom::PositionalPick`]), a static
//!   [`StepSelectivity`] hint, and the `//`-expansion fusion
//!   (`descendant-or-self::node()/child::t` → `descendant::t`, applied only
//!   when neither step carries predicates, where it is list- and
//!   set-semantics preserving);
//! * per-opcode static analysis survives lowering: the [`Fragment`] that
//!   admitted each subexpression, its static `ExprType`, and the
//!   position-sensitivity bit the context-value tables key on;
//! * the per-strategy admission checks are precomputed verdicts:
//!   [`PlanIr::linear_check`] (Core XPath, Definition 2.5) and
//!   [`PlanIr::ss_check`] (pWF/pXPath, Definition 6.1) are stored
//!   `Result`s, so dispatch fails fast without re-classifying.
//!
//! The executors live in [`crate::exec`].

use crate::error::EvalError;
use crate::registry::FunctionRegistry;
use std::sync::Arc;
use xpeval_dom::{Axis, NodeTest, PositionalPick};
use xpeval_syntax::{
    classify, ArithOp, Expr, Fragment, FragmentReport, LocationPath, NodeCompOp, RelOp, Step,
};

/// Index of an [`OpIr`] in the plan's opcode arena.
pub type OpId = u32;

/// Static selectivity hint of a lowered step, read off the axis, the node
/// test and the positional pick — no document required.  Executors use it to
/// size frontier buffers; introspection surfaces it per step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepSelectivity {
    /// At most one node per context: `self::`/`parent::` steps and child
    /// steps answered by a positional pick.
    Singleton,
    /// Name-bounded: a tag-name test, answerable from a tag index.
    Named,
    /// Unbounded axis enumeration (`*`, `node()`, `text()`).
    Scan,
}

/// One lowered location step `axis::test[preds...]`.
#[derive(Clone, Debug, PartialEq)]
pub struct StepIr {
    /// The axis (after `//`-fusion this can be an axis the surface syntax
    /// never wrote, e.g. `descendant` for a fused `//t`).
    pub axis: Axis,
    /// The node test.  Name tests on element-principal axes are lowered to
    /// [`NodeTest::Resolved`] with the **global** interned id; the name is
    /// kept alongside so unindexed sources still match by string.
    pub test: NodeTest,
    /// Precomputed leading positional pick (`child::t[k]`, `[last()]` and
    /// the `position() =` spellings — the [`crate::steps`] recognition, run
    /// once here instead of per evaluation).  When the source answers the
    /// pick from an index, the first predicate is skipped at runtime.
    pub pick: Option<PositionalPick>,
    /// `(start, len)` range of predicate [`OpId`]s in [`PlanIr::preds`].
    preds: (u32, u32),
    /// Static selectivity hint.
    pub selectivity: StepSelectivity,
    /// True when this step is the fusion of a pred-less
    /// `descendant-or-self::node()` with the pred-less step that followed it.
    pub fused: bool,
}

/// A lowered opcode: the operator [`OpKind`] plus the static analysis that
/// survives lowering.
#[derive(Clone, Debug, PartialEq)]
pub struct OpIr {
    /// The operator.
    pub kind: OpKind,
    /// Least fragment of Figure 1 that admits this subexpression — the
    /// classification does not stop at the query root.
    pub fragment: Fragment,
    /// Static XPath 1.0 type.
    pub ty: xpeval_syntax::ast::ExprType,
    /// Does the value, for a fixed context node, depend on the context
    /// position/size?  Decides the context-value-table key width
    /// ([`crate::context::ContextKey`]).
    pub sensitive: bool,
}

/// The flat operator set, mirroring [`Expr`] with arena indices in place of
/// boxed children.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Literal(String),
    /// A location path; `steps` is a `(start, len)` range in
    /// [`PlanIr::steps`].
    Path { absolute: bool, steps: (u32, u32) },
    /// `π1 | π2`.
    Union(OpId, OpId),
    /// `π1 intersect π2` (XPath 2.0 node-set intersection).
    Intersect(OpId, OpId),
    /// `π1 except π2` (XPath 2.0 node-set difference).
    Except(OpId, OpId),
    /// Node comparison `e1 is e2` / `e1 << e2` / `e1 >> e2`, decided on the
    /// first node in document order of each operand.
    NodeCompare {
        /// The comparison operator.
        op: NodeCompOp,
        /// Left node-set operand.
        left: OpId,
        /// Right node-set operand.
        right: OpId,
    },
    /// External variable reference `$name`, resolved at execution time from
    /// the per-evaluation [`crate::bindings::Bindings`].
    Variable(String),
    /// `e1 or e2`.
    Or(OpId, OpId),
    /// `e1 and e2`.
    And(OpId, OpId),
    /// `not(e)`.
    Not(OpId),
    /// `e1 relop e2`.
    Relational { op: RelOp, left: OpId, right: OpId },
    /// `e1 arithop e2`.
    Arithmetic {
        op: ArithOp,
        left: OpId,
        right: OpId,
    },
    /// Unary minus.
    Neg(OpId),
    /// Core-library call; `args` is a `(start, len)` range in
    /// `PlanIr::args`.
    Call { name: String, args: (u32, u32) },
}

impl OpKind {
    /// Syntactically node-set typed (a path or a set operator over paths) —
    /// the routing test of the Singleton-Success rows, mirroring the AST
    /// checker.
    pub fn is_nodeset(&self) -> bool {
        matches!(
            self,
            OpKind::Path { .. }
                | OpKind::Union(_, _)
                | OpKind::Intersect(_, _)
                | OpKind::Except(_, _)
        )
    }
}

/// A compiled query lowered to flat form: opcode arena, step arena,
/// predicate and argument index lists, and the precomputed per-strategy
/// admission verdicts.  Document-independent and immutable — the
/// [`crate::CompiledQuery`] shares one behind an [`Arc`], and a catalog can
/// share that `Arc` across every document with equal content.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanIr {
    ops: Vec<OpIr>,
    steps: Vec<StepIr>,
    preds: Vec<OpId>,
    args: Vec<OpId>,
    root: OpId,
    linear_check: Result<(), EvalError>,
    ss_check: Result<(), EvalError>,
    fused_steps: u32,
}

impl PlanIr {
    /// Lowers a normalized expression.  `report` must be the classification
    /// of exactly this expression (the caller already has it; re-deriving it
    /// here would double the classifier work).
    pub fn lower(expr: &Expr, report: &FragmentReport) -> Arc<PlanIr> {
        PlanIr::lower_with_registry(expr, report, FunctionRegistry::empty())
    }

    /// Like [`PlanIr::lower`], but admitting calls to functions registered
    /// in `registry`: the Singleton-Success admission check accepts
    /// [`FragmentImpact::CoreSafe`](crate::registry::FragmentImpact)
    /// registrations, and `Call` opcodes carry the registered return type so
    /// result routing matches what the handler will produce.  The caller is
    /// responsible for passing a `report` already degraded for
    /// `General`-impact registrations (see
    /// [`crate::compile::CompiledQuery::compile_with_registry`]).
    pub fn lower_with_registry(
        expr: &Expr,
        report: &FragmentReport,
        registry: &FunctionRegistry,
    ) -> Arc<PlanIr> {
        let mut lowering = Lowering::new(registry);
        let root = lowering.lower_expr(expr);
        let linear_check = if report.fragment > Fragment::CoreXPath {
            // Verbatim the linear evaluator's rejection, decided once here.
            Err(EvalError::fragment(
                Fragment::CoreXPath,
                format!("a {} construct", report.fragment),
            ))
        } else {
            Ok(())
        };
        let ss_check = crate::success::validate_expr_with(expr, registry);
        Arc::new(PlanIr {
            ops: lowering.ops,
            steps: lowering.steps,
            preds: lowering.preds,
            args: lowering.args,
            root,
            linear_check,
            ss_check,
            fused_steps: lowering.fused_steps,
        })
    }

    /// The root opcode id (always the last op in the arena).
    pub fn root(&self) -> OpId {
        self.root
    }

    /// The opcode behind an id.
    #[inline]
    pub fn op(&self, id: OpId) -> &OpIr {
        &self.ops[id as usize]
    }

    /// All opcodes, children before parents.
    pub fn ops(&self) -> &[OpIr] {
        &self.ops
    }

    /// All lowered steps (of every path and nested predicate path).
    pub fn steps(&self) -> &[StepIr] {
        &self.steps
    }

    /// The steps of a `Path` opcode's `(start, len)` range.
    #[inline]
    pub fn path_steps(&self, range: (u32, u32)) -> &[StepIr] {
        &self.steps[range.0 as usize..(range.0 + range.1) as usize]
    }

    /// The predicate opcode ids of a step.
    #[inline]
    pub fn step_preds(&self, step: &StepIr) -> &[OpId] {
        &self.preds[step.preds.0 as usize..(step.preds.0 + step.preds.1) as usize]
    }

    /// The argument opcode ids of a `Call` opcode's range.
    #[inline]
    pub fn call_args(&self, range: (u32, u32)) -> &[OpId] {
        &self.args[range.0 as usize..(range.0 + range.1) as usize]
    }

    /// Precomputed Core XPath admission (Definition 2.5): `Ok` when the
    /// linear set-at-a-time machine may run this plan.
    pub fn linear_check(&self) -> Result<(), EvalError> {
        self.linear_check.clone()
    }

    /// Precomputed pWF/pXPath admission (Definition 6.1 plus bounded
    /// negation): `Ok` when the Singleton-Success machines may run this
    /// plan.
    pub fn ss_check(&self) -> Result<(), EvalError> {
        self.ss_check.clone()
    }

    /// Number of `//`-expansion step pairs fused at lowering.
    pub fn fused_steps(&self) -> u32 {
        self.fused_steps
    }

    /// The element tag names the result is bounded by: the final step's
    /// name test, one per union arm, under exactly the soundness conditions
    /// of [`crate::steps::final_step_tag_names`] — element-principal final
    /// axis, name test.  `None` when the result is not name-bounded.
    ///
    /// Tests are returned as lowered, so callers get the pre-interned
    /// global id next to the name.
    pub fn final_step_tests(&self) -> Option<Vec<&NodeTest>> {
        fn collect<'p>(ir: &'p PlanIr, id: OpId, out: &mut Vec<&'p NodeTest>) -> Option<()> {
            match &ir.op(id).kind {
                OpKind::Path { steps, .. } => {
                    let last = ir.path_steps(*steps).last()?;
                    if last.axis.principal_is_attribute() {
                        return None;
                    }
                    match &last.test {
                        NodeTest::Name(_) | NodeTest::Resolved { .. } => {
                            out.push(&last.test);
                            Some(())
                        }
                        _ => None,
                    }
                }
                OpKind::Union(a, b) => {
                    collect(ir, *a, out)?;
                    collect(ir, *b, out)
                }
                // `intersect`/`except` results are subsets of the left
                // operand, so the left arm's bound is sound for the whole.
                OpKind::Intersect(a, _) | OpKind::Except(a, _) => collect(ir, *a, out),
                _ => None,
            }
        }
        let mut out = Vec::new();
        collect(self, self.root, &mut out)?;
        Some(out)
    }

    /// Renders one opcode back to XPath-ish surface syntax (used in
    /// diagnostics; lowering is not otherwise reversible).
    pub fn display_op(&self, id: OpId) -> String {
        let mut out = String::new();
        self.render(id, &mut out);
        out
    }

    fn render(&self, id: OpId, out: &mut String) {
        use std::fmt::Write;
        match &self.op(id).kind {
            OpKind::Number(n) => {
                let _ = write!(out, "{n}");
            }
            OpKind::Literal(s) => {
                let _ = write!(out, "'{s}'");
            }
            OpKind::Path { absolute, steps } => {
                if *absolute {
                    out.push('/');
                }
                let steps = self.path_steps(*steps);
                for (i, step) in steps.iter().enumerate() {
                    if i > 0 {
                        out.push('/');
                    }
                    let _ = write!(out, "{}::{}", step.axis, step.test);
                    for &pred in self.step_preds(step) {
                        out.push('[');
                        self.render(pred, out);
                        out.push(']');
                    }
                }
            }
            OpKind::Union(a, b) => self.render_binary(*a, " | ", *b, out),
            OpKind::Intersect(a, b) => self.render_binary(*a, " intersect ", *b, out),
            OpKind::Except(a, b) => self.render_binary(*a, " except ", *b, out),
            OpKind::NodeCompare { op, left, right } => {
                let sep = format!(" {} ", op.symbol());
                self.render_binary(*left, &sep, *right, out);
            }
            OpKind::Variable(name) => {
                let _ = write!(out, "${name}");
            }
            OpKind::Or(a, b) => self.render_binary(*a, " or ", *b, out),
            OpKind::And(a, b) => self.render_binary(*a, " and ", *b, out),
            OpKind::Not(e) => {
                out.push_str("not(");
                self.render(*e, out);
                out.push(')');
            }
            OpKind::Relational { op, left, right } => {
                let sep = format!(" {} ", op.symbol());
                self.render_binary(*left, &sep, *right, out);
            }
            OpKind::Arithmetic { op, left, right } => {
                let sep = format!(" {} ", op.symbol());
                self.render_binary(*left, &sep, *right, out);
            }
            OpKind::Neg(e) => {
                out.push('-');
                self.render(*e, out);
            }
            OpKind::Call { name, args } => {
                out.push_str(name);
                out.push('(');
                for (i, &arg) in self.call_args(*args).iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.render(arg, out);
                }
                out.push(')');
            }
        }
    }

    fn render_binary(&self, a: OpId, sep: &str, b: OpId, out: &mut String) {
        out.push('(');
        self.render(a, out);
        out.push_str(sep);
        self.render(b, out);
        out.push(')');
    }
}

struct Lowering<'r> {
    registry: &'r FunctionRegistry,
    ops: Vec<OpIr>,
    steps: Vec<StepIr>,
    preds: Vec<OpId>,
    args: Vec<OpId>,
    fused_steps: u32,
}

impl<'r> Lowering<'r> {
    fn new(registry: &'r FunctionRegistry) -> Self {
        Lowering {
            registry,
            ops: Vec::new(),
            steps: Vec::new(),
            preds: Vec::new(),
            args: Vec::new(),
            fused_steps: 0,
        }
    }

    fn push_op(&mut self, expr: &Expr, kind: OpKind) -> OpId {
        let id = OpId::try_from(self.ops.len()).expect("plan IR op arena overflowed u32");
        // The AST's static typing does not know registered functions; the
        // registry's declared return type wins for them so that result
        // routing matches what the handler produces.
        let ty = match expr {
            Expr::FunctionCall { name, .. } if !crate::functions::is_supported(name) => self
                .registry
                .lookup(name)
                .map(|f| f.signature.return_type())
                .unwrap_or_else(|| expr.expr_type()),
            _ => expr.expr_type(),
        };
        self.ops.push(OpIr {
            kind,
            fragment: classify(expr).fragment,
            ty,
            sensitive: crate::dp::sensitivity(expr),
        });
        id
    }

    fn lower_expr(&mut self, expr: &Expr) -> OpId {
        let kind = match expr {
            Expr::Number(n) => OpKind::Number(*n),
            Expr::Literal(s) => OpKind::Literal(s.clone()),
            Expr::Path(path) => {
                let steps = self.lower_path(path);
                OpKind::Path {
                    absolute: path.absolute,
                    steps,
                }
            }
            Expr::Union(a, b) => OpKind::Union(self.lower_expr(a), self.lower_expr(b)),
            Expr::Intersect(a, b) => OpKind::Intersect(self.lower_expr(a), self.lower_expr(b)),
            Expr::Except(a, b) => OpKind::Except(self.lower_expr(a), self.lower_expr(b)),
            Expr::NodeCompare { op, left, right } => OpKind::NodeCompare {
                op: *op,
                left: self.lower_expr(left),
                right: self.lower_expr(right),
            },
            Expr::Variable(name) => OpKind::Variable(name.clone()),
            Expr::Or(a, b) => OpKind::Or(self.lower_expr(a), self.lower_expr(b)),
            Expr::And(a, b) => OpKind::And(self.lower_expr(a), self.lower_expr(b)),
            Expr::Not(e) => OpKind::Not(self.lower_expr(e)),
            Expr::Relational { op, left, right } => OpKind::Relational {
                op: *op,
                left: self.lower_expr(left),
                right: self.lower_expr(right),
            },
            Expr::Arithmetic { op, left, right } => OpKind::Arithmetic {
                op: *op,
                left: self.lower_expr(left),
                right: self.lower_expr(right),
            },
            Expr::Neg(e) => OpKind::Neg(self.lower_expr(e)),
            Expr::FunctionCall { name, args } => {
                // Arguments are lowered before the range is claimed so that
                // nested calls interleave without splitting this call's
                // argument block.
                let ids: Vec<OpId> = args.iter().map(|a| self.lower_expr(a)).collect();
                let start = u32::try_from(self.args.len()).expect("arg arena overflowed u32");
                let len = u32::try_from(ids.len()).expect("arg list overflowed u32");
                self.args.extend(ids);
                OpKind::Call {
                    name: name.clone(),
                    args: (start, len),
                }
            }
        };
        self.push_op(expr, kind)
    }

    fn lower_path(&mut self, path: &LocationPath) -> (u32, u32) {
        // Build the step block locally first: predicate lowering recurses
        // into nested paths, which push their own steps — appending the
        // block in one go afterwards keeps this path's steps contiguous.
        let mut built: Vec<StepIr> = Vec::with_capacity(path.steps.len());
        let mut fused_steps = 0u32;
        let mut i = 0;
        while i < path.steps.len() {
            let step = &path.steps[i];
            if let Some(next) = path.steps.get(i + 1) {
                if fusable(step, next) {
                    // `//t` expands to `descendant-or-self::node()/child::t`;
                    // with no predicates on either step this is exactly
                    // `descendant::t` under both set and list semantics
                    // (every descendant has a unique parent on the
                    // descendant-or-self frontier).
                    built.push(self.lower_step(next, Some(Axis::Descendant)));
                    fused_steps += 1;
                    i += 2;
                    continue;
                }
            }
            built.push(self.lower_step(step, None));
            i += 1;
        }
        self.fused_steps += fused_steps;
        let start = u32::try_from(self.steps.len()).expect("step arena overflowed u32");
        let len = u32::try_from(built.len()).expect("step list overflowed u32");
        self.steps.extend(built);
        (start, len)
    }

    fn lower_step(&mut self, step: &Step, fused_axis: Option<Axis>) -> StepIr {
        let axis = fused_axis.unwrap_or(step.axis);
        // Resolve name tests to the global symbol table.  Element-principal
        // axes only: the tag interner covers element names, and attribute
        // tests keep matching by string.
        let test = match &step.node_test {
            NodeTest::Name(name) | NodeTest::Resolved { name, .. }
                if !axis.principal_is_attribute() =>
            {
                NodeTest::Resolved {
                    name: name.clone(),
                    id: Some(xpeval_dom::intern::intern(name)),
                }
            }
            other => other.clone(),
        };
        let pick = match (axis, step.predicates.first()) {
            (Axis::Child, Some(first)) => crate::steps::positional_pick(first),
            _ => None,
        };
        let pred_ids: Vec<OpId> = step.predicates.iter().map(|p| self.lower_expr(p)).collect();
        let start = u32::try_from(self.preds.len()).expect("pred arena overflowed u32");
        let len = u32::try_from(pred_ids.len()).expect("pred list overflowed u32");
        self.preds.extend(pred_ids);
        let selectivity = if pick.is_some() || matches!(axis, Axis::SelfAxis | Axis::Parent) {
            StepSelectivity::Singleton
        } else if matches!(test, NodeTest::Name(_) | NodeTest::Resolved { .. }) {
            StepSelectivity::Named
        } else {
            StepSelectivity::Scan
        };
        StepIr {
            axis,
            test,
            pick,
            preds: (start, len),
            selectivity,
            fused: fused_axis.is_some(),
        }
    }
}

/// The `//`-fusion guard: a predicate-free `descendant-or-self::node()`
/// immediately followed by a predicate-free child step.
fn fusable(step: &Step, next: &Step) -> bool {
    step.axis == Axis::DescendantOrSelf
        && matches!(step.node_test, NodeTest::AnyNode)
        && step.predicates.is_empty()
        && next.axis == Axis::Child
        && next.predicates.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_syntax::parse_query;

    fn lower(src: &str) -> Arc<PlanIr> {
        let expr = parse_query(src).unwrap();
        let report = classify(&expr);
        PlanIr::lower(&expr, &report)
    }

    #[test]
    fn ops_are_flat_and_root_is_last() {
        let ir = lower("//a[child::b]/title | count(//c) = 1");
        assert_eq!(ir.root() as usize, ir.ops().len() - 1);
        // Every child reference points strictly backwards.
        for (i, op) in ir.ops().iter().enumerate() {
            let check = |c: OpId| assert!((c as usize) < i, "op {i} references forward id {c}");
            match &op.kind {
                OpKind::Union(a, b)
                | OpKind::Intersect(a, b)
                | OpKind::Except(a, b)
                | OpKind::Or(a, b)
                | OpKind::And(a, b)
                | OpKind::Relational {
                    left: a, right: b, ..
                }
                | OpKind::NodeCompare {
                    left: a, right: b, ..
                }
                | OpKind::Arithmetic {
                    left: a, right: b, ..
                } => {
                    check(*a);
                    check(*b);
                }
                OpKind::Not(e) | OpKind::Neg(e) => check(*e),
                OpKind::Call { args, .. } => ir.call_args(*args).iter().copied().for_each(check),
                _ => {}
            }
        }
    }

    #[test]
    fn name_tests_are_interned_globally() {
        let ir = lower("/lib/book[child::cite]/title");
        let mut seen = Vec::new();
        for step in ir.steps() {
            match &step.test {
                NodeTest::Resolved { name, id } => {
                    let id = id.expect("lowered tests carry a global id");
                    assert_eq!(xpeval_dom::intern::tag_name(id), name.as_str());
                    seen.push(name.clone());
                }
                other => panic!("unlowered test {other:?}"),
            }
        }
        seen.sort();
        assert_eq!(seen, ["book", "cite", "lib", "title"]);
        // The same name lowers to the same id in a different plan.
        let again = lower("//title");
        let (a, b) = match (&again.steps()[0].test, ir.steps().last().map(|s| &s.test)) {
            (NodeTest::Resolved { id: a, .. }, Some(NodeTest::Resolved { id: b, .. })) => (*a, *b),
            other => panic!("{other:?}"),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn attribute_steps_keep_string_tests() {
        let ir = lower("//book[attribute::year = 2003]");
        let attr = ir
            .steps()
            .iter()
            .find(|s| s.axis == Axis::Attribute)
            .unwrap();
        assert_eq!(attr.test, NodeTest::Name("year".into()));
    }

    #[test]
    fn descendant_expansion_is_fused() {
        // /descendant-or-self::node()/child::a → descendant::a, same for b.
        let ir = lower("//a//b");
        assert_eq!(ir.fused_steps(), 2);
        let path = match &ir.op(ir.root()).kind {
            OpKind::Path { steps, .. } => ir.path_steps(*steps),
            other => panic!("{other:?}"),
        };
        assert_eq!(path.len(), 2);
        assert!(path.iter().all(|s| s.axis == Axis::Descendant && s.fused));
        // A trailing plain child step stays a child step.
        let ir = lower("//a/b");
        assert_eq!(ir.fused_steps(), 1);
        let path = match &ir.op(ir.root()).kind {
            OpKind::Path { steps, .. } => ir.path_steps(*steps),
            other => panic!("{other:?}"),
        };
        assert_eq!(path.len(), 2);
        assert!(path[0].axis == Axis::Descendant && path[0].fused);
        assert!(path[1].axis == Axis::Child && !path[1].fused);
        // A predicate on the child step blocks the fusion.
        let ir = lower("//a[child::b]");
        assert_eq!(ir.fused_steps(), 0);
        let path = match &ir.op(ir.root()).kind {
            OpKind::Path { steps, .. } => ir.path_steps(*steps),
            other => panic!("{other:?}"),
        };
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].axis, Axis::DescendantOrSelf);
    }

    #[test]
    fn positional_picks_are_precomputed() {
        use PositionalPick::*;
        let cases = [
            ("/r/a[2]", Some(Nth(2))),
            ("/r/a[last()]", Some(Last)),
            ("/r/a[position() = 3]", Some(Nth(3))),
            ("/r/a[position() >= 2]", None),
        ];
        for (src, expected) in cases {
            let ir = lower(src);
            let last = ir.steps().last().unwrap();
            assert_eq!(last.pick, expected, "{src}");
        }
        // `//a[1]`: the DoS step is not fused (predicate on child), and the
        // child step's pick is recognized.
        let ir = lower("//a[1]");
        let child = ir.steps().iter().find(|s| s.axis == Axis::Child).unwrap();
        assert_eq!(child.pick, Some(Nth(1)));
    }

    #[test]
    fn fragments_and_sensitivity_survive_lowering() {
        let ir = lower("//a[position() = last()]");
        // The root path sits in PWF; the positional predicate's relational
        // op is position-sensitive while the path itself is not.
        assert_eq!(ir.op(ir.root()).fragment, Fragment::PWF);
        assert!(!ir.op(ir.root()).sensitive);
        let rel = ir
            .ops()
            .iter()
            .find(|o| matches!(o.kind, OpKind::Relational { .. }))
            .unwrap();
        assert!(rel.sensitive);
        // A pure Core XPath subexpression is tagged as such even inside a
        // larger query.
        let ir = lower("//a[child::b and position() = 1]");
        let inner_path_frags: Vec<Fragment> = ir
            .ops()
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Path { .. }))
            .map(|o| o.fragment)
            .collect();
        assert!(inner_path_frags.contains(&Fragment::PF));
    }

    #[test]
    fn admission_verdicts_are_precomputed() {
        assert!(lower("//a[not(child::b)]").linear_check().is_ok());
        let err = lower("//a[position() = 1]").linear_check().unwrap_err();
        assert!(matches!(err, EvalError::UnsupportedFragment { .. }));
        assert!(lower("//a[position() = 1]").ss_check().is_ok());
        let err = lower("count(//a)").ss_check().unwrap_err();
        assert!(matches!(err, EvalError::UnsupportedFragment { .. }));
    }

    #[test]
    fn selectivity_hints() {
        let ir = lower("/r/a[1]/self::a/descendant::*");
        let sel: Vec<StepSelectivity> = ir.steps().iter().map(|s| s.selectivity).collect();
        assert_eq!(
            sel,
            [
                StepSelectivity::Named,     // child::r
                StepSelectivity::Singleton, // child::a[1] (pick)
                StepSelectivity::Singleton, // self::a
                StepSelectivity::Scan,      // descendant::*
            ]
        );
    }

    #[test]
    fn final_step_tests_mirror_the_ast_bound() {
        let ir = lower("//a/b | //c");
        let tests = ir.final_step_tests().unwrap();
        let names: Vec<&str> = tests
            .iter()
            .map(|t| match t {
                NodeTest::Resolved { name, .. } => name.as_str(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(names, ["b", "c"]);
        assert!(lower("//a/@x").final_step_tests().is_none());
        assert!(lower("//a/text()").final_step_tests().is_none());
        assert!(lower("count(//a)").final_step_tests().is_none());
    }

    #[test]
    fn set_operators_and_variables_lower_and_render() {
        let ir = lower("//a intersect //b");
        assert!(matches!(ir.op(ir.root()).kind, OpKind::Intersect(_, _)));
        assert!(ir.op(ir.root()).kind.is_nodeset());
        assert!(ir.display_op(ir.root()).contains(" intersect "));
        // Intersection of two core location paths keeps the linear bound.
        assert!(ir.linear_check().is_ok());
        assert!(lower("//a except //b").linear_check().is_ok());

        let ir = lower("//a except //b");
        assert!(matches!(ir.op(ir.root()).kind, OpKind::Except(_, _)));
        assert!(ir.display_op(ir.root()).contains(" except "));

        let ir = lower("//a << //b");
        assert!(
            matches!(&ir.op(ir.root()).kind, OpKind::NodeCompare { op, .. } if *op == NodeCompOp::Precedes)
        );
        assert!(!ir.op(ir.root()).kind.is_nodeset());
        assert!(ir.display_op(ir.root()).contains(" << "));

        let ir = lower("//row[@limit = $max]");
        assert!(ir
            .ops()
            .iter()
            .any(|o| matches!(&o.kind, OpKind::Variable(name) if name == "max")));
        assert!(ir.display_op(ir.root()).contains("$max"));
        // Variables push the query beyond Core XPath: no linear bound.
        assert!(ir.linear_check().is_err());
    }

    #[test]
    fn set_operator_results_are_bounded_by_the_left_arm() {
        let tests = |src: &str| -> Vec<String> {
            lower(src)
                .final_step_tests()
                .unwrap()
                .iter()
                .map(|t| match t {
                    NodeTest::Resolved { name, .. } => name.clone(),
                    other => panic!("{other:?}"),
                })
                .collect()
        };
        assert_eq!(tests("//a intersect //b"), ["a"]);
        assert_eq!(tests("//a except //b"), ["a"]);
        assert_eq!(tests("(//a | //b) except //c"), ["a", "b"]);
        assert!(lower("//a is //b").final_step_tests().is_none());
    }

    #[test]
    fn registered_return_types_override_the_ast_guess() {
        use crate::registry::{FragmentImpact, FunctionSignature};
        use xpeval_syntax::ast::ExprType;
        let mut registry = FunctionRegistry::new();
        registry.register(
            FunctionSignature::new("double", 1, Some(1))
                .returns_number()
                .impact(FragmentImpact::CoreSafe),
            |args, _, doc| Ok(crate::value::Value::Number(args[0].to_number(doc) * 2.0)),
        );
        let expr = parse_query("//a[double(@x) = 4]").unwrap();
        let report = classify(&expr);
        let ir = PlanIr::lower_with_registry(&expr, &report, &registry);
        let call_ty = ir
            .ops()
            .iter()
            .find(|o| matches!(&o.kind, OpKind::Call { name, .. } if name == "double"))
            .map(|o| o.ty)
            .unwrap();
        assert_eq!(call_ty, ExprType::Number);
        // With the registration, the SS machines admit the call...
        assert!(ir.ss_check().is_ok());
        // ...without it, they reject it as unknown.
        assert!(PlanIr::lower(&expr, &report).ss_check().is_err());
    }

    #[test]
    fn display_round_trips_recognizably() {
        let ir = lower("//a[child::b and not(@x = 'v')]/c");
        let shown = ir.display_op(ir.root());
        for needle in ["descendant-or-self", "child::b", "not(", "'v'", "::c"] {
            assert!(shown.contains(needle), "{shown} missing {needle}");
        }
    }
}
