//! Extensible function registry.
//!
//! The engine's built-in function library ([`crate::functions`]) is closed:
//! its complexity behaviour is known, so the fragment classifier can place
//! any query using it on the lattice of Figure 1.  User-defined functions
//! break that closure — the classifier cannot see inside an opaque handler.
//! This module restores honesty by making every registered function *declare*
//! its complexity contract up front:
//!
//! * a [`FunctionSignature`] fixes the name, the accepted arity range and
//!   the static return type, so mis-arity calls are rejected at **compile
//!   time**, exactly like built-ins;
//! * a [`FragmentImpact`] states whether the function preserves the query's
//!   fragment classification ([`FragmentImpact::CoreSafe`]) or forces the
//!   query into full XPath ([`FragmentImpact::General`]).  A `General`
//!   function degrades the plan's [`FragmentReport`](xpeval_syntax::FragmentReport)
//!   to [`Fragment::XPath`](xpeval_syntax::Fragment), which routes it to the
//!   polynomial context-value-table evaluator — the plan never *claims* a
//!   linear bound it cannot honour.
//!
//! Registries are immutable once attached to an
//! [`Engine`](crate::engine::Engine): registration happens on
//! [`EngineBuilder`](crate::engine::EngineBuilder) (or directly on a
//! [`FunctionRegistry`] handed to
//! [`CompiledQuery::compile_with_registry`](crate::compile::CompiledQuery::compile_with_registry)),
//! and the built engine shares the registry across clones behind an `Arc`.
//!
//! ```
//! use xpeval_core::{FragmentImpact, FunctionRegistry, FunctionSignature, Value};
//!
//! let mut registry = FunctionRegistry::new();
//! registry.register(
//!     FunctionSignature::new("double", 1, Some(1))
//!         .returns_number()
//!         .impact(FragmentImpact::CoreSafe),
//!     |args, _ctx, doc| Ok(Value::Number(args[0].to_number(doc) * 2.0)),
//! );
//! assert!(registry.lookup("double").is_some());
//! ```

use crate::context::Context;
use crate::error::EvalError;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};
use xpeval_dom::Document;
use xpeval_syntax::ast::ExprType;

/// The complexity contract a registered function declares.
///
/// The fragment classifier (Figure 1 of the paper) assigns complexity
/// bounds to queries by *syntactic* inspection; an opaque user function
/// defeats that inspection, so the function must state which side of the
/// line it is on.  The declaration is trusted — it is the registrant's
/// claim, and the engine's strategy selection honours it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FragmentImpact {
    /// The function behaves like a core-library scalar function: it runs in
    /// time polynomial in its inputs and has no effect on which fragment
    /// the query belongs to.  A query that is Core XPath apart from calls
    /// to `CoreSafe` functions keeps its linear-bound strategy.
    CoreSafe,
    /// No complexity claim: the query is conservatively reclassified as
    /// full XPath and evaluated by the context-value-table dynamic program
    /// (polynomial combined complexity, Proposition 2.7).  This is the
    /// default — degrading is always sound.
    #[default]
    General,
}

impl fmt::Display for FragmentImpact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentImpact::CoreSafe => f.write_str("core-safe"),
            FragmentImpact::General => f.write_str("general"),
        }
    }
}

/// Compile-time signature of a registered function: name, arity range,
/// static return type and declared [`FragmentImpact`].
#[derive(Clone, Debug)]
pub struct FunctionSignature {
    name: String,
    min_args: usize,
    /// `None` = variadic above `min_args` (like `concat`).
    max_args: Option<usize>,
    impact: FragmentImpact,
    returns: ExprType,
}

impl FunctionSignature {
    /// A signature accepting between `min_args` and `max_args` arguments
    /// (`None` = unbounded), returning a string and declaring the
    /// conservative [`FragmentImpact::General`] contract.  Refine with the
    /// builder methods.
    pub fn new(name: impl Into<String>, min_args: usize, max_args: Option<usize>) -> Self {
        FunctionSignature {
            name: name.into(),
            min_args,
            max_args,
            impact: FragmentImpact::General,
            returns: ExprType::Str,
        }
    }

    /// Declares the function's complexity contract.
    pub fn impact(mut self, impact: FragmentImpact) -> Self {
        self.impact = impact;
        self
    }

    /// Declares the static return type as number.
    pub fn returns_number(mut self) -> Self {
        self.returns = ExprType::Number;
        self
    }

    /// Declares the static return type as boolean.
    pub fn returns_boolean(mut self) -> Self {
        self.returns = ExprType::Boolean;
        self
    }

    /// Declares the static return type as string (the default).
    pub fn returns_string(mut self) -> Self {
        self.returns = ExprType::Str;
        self
    }

    /// The function's name as written in queries.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The accepted arity range, `(min, max)` with `None` = unbounded.
    pub fn arity(&self) -> (usize, Option<usize>) {
        (self.min_args, self.max_args)
    }

    /// The declared complexity contract.
    pub fn fragment_impact(&self) -> FragmentImpact {
        self.impact
    }

    /// The declared static return type.
    pub fn return_type(&self) -> ExprType {
        self.returns
    }

    /// Whether `got` arguments satisfy this signature.
    pub fn accepts_arity(&self, got: usize) -> bool {
        got >= self.min_args && self.max_args.map_or(true, |max| got <= max)
    }

    /// Human-readable arity range for error messages (`"2"`, `"1 to 3"`,
    /// `"2 or more"`).
    pub fn arity_description(&self) -> String {
        match self.max_args {
            Some(max) if max == self.min_args => max.to_string(),
            Some(max) => format!("{} to {}", self.min_args, max),
            None => format!("{} or more", self.min_args),
        }
    }
}

/// The handler invoked at evaluation time: already-evaluated argument
/// values, the evaluation context and the document.  Must be thread-safe —
/// the parallel strategy calls handlers from worker threads.
pub type FunctionHandler =
    Arc<dyn Fn(&[Value], &Context, &Document) -> Result<Value, EvalError> + Send + Sync>;

/// A registered function: signature plus handler.
#[derive(Clone)]
pub struct RegisteredFunction {
    /// The compile-time signature.
    pub signature: FunctionSignature,
    /// The evaluation-time handler.
    pub handler: FunctionHandler,
}

impl fmt::Debug for RegisteredFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisteredFunction")
            .field("signature", &self.signature)
            .finish_non_exhaustive()
    }
}

/// A set of user-registered functions consulted by the compiler (for
/// signature validation and fragment degradation) and by the IR evaluators
/// (for dispatch on names the built-in library does not know).
///
/// Built-in names cannot be shadowed: [`FunctionRegistry::register`]
/// panics when given a name from
/// [`SUPPORTED_FUNCTIONS`](crate::functions::SUPPORTED_FUNCTIONS) (or
/// `not`), because every evaluator resolves built-ins first and a shadow
/// registration would silently never be called.
#[derive(Clone, Debug, Default)]
pub struct FunctionRegistry {
    functions: HashMap<String, RegisteredFunction>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FunctionRegistry::default()
    }

    /// The process-wide empty registry, used by entry points that predate
    /// registries so they need not allocate one per call.
    pub(crate) fn empty() -> &'static FunctionRegistry {
        static EMPTY: OnceLock<FunctionRegistry> = OnceLock::new();
        EMPTY.get_or_init(FunctionRegistry::new)
    }

    /// The shared (`Arc`) form of [`FunctionRegistry::empty`], for the
    /// default of [`crate::CompileOptions`] — every registry-less plan in
    /// the process points at the same allocation.
    pub(crate) fn empty_shared() -> Arc<FunctionRegistry> {
        static EMPTY: OnceLock<Arc<FunctionRegistry>> = OnceLock::new();
        EMPTY
            .get_or_init(|| Arc::new(FunctionRegistry::new()))
            .clone()
    }

    /// Registers a function, replacing any previous registration of the
    /// same name.
    ///
    /// # Panics
    ///
    /// Panics if the name shadows a built-in function — the built-in would
    /// always win at dispatch time, so the registration could never take
    /// effect.
    pub fn register<F>(&mut self, signature: FunctionSignature, handler: F) -> &mut Self
    where
        F: Fn(&[Value], &Context, &Document) -> Result<Value, EvalError> + Send + Sync + 'static,
    {
        assert!(
            !crate::functions::is_supported(signature.name()),
            "cannot shadow built-in function '{}'",
            signature.name()
        );
        self.functions.insert(
            signature.name.clone(),
            RegisteredFunction {
                signature,
                handler: Arc::new(handler),
            },
        );
        self
    }

    /// Looks up a registered function by name.
    pub fn lookup(&self, name: &str) -> Option<&RegisteredFunction> {
        self.functions.get(name)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Iterates over the registered signatures in unspecified order.
    pub fn signatures(&self) -> impl Iterator<Item = &FunctionSignature> {
        self.functions.values().map(|f| &f.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double() -> FunctionSignature {
        FunctionSignature::new("double", 1, Some(1))
            .returns_number()
            .impact(FragmentImpact::CoreSafe)
    }

    #[test]
    fn register_and_lookup() {
        let mut r = FunctionRegistry::new();
        assert!(r.is_empty());
        r.register(double(), |args, _, doc| {
            Ok(Value::Number(args[0].to_number(doc) * 2.0))
        });
        assert_eq!(r.len(), 1);
        let f = r.lookup("double").unwrap();
        assert_eq!(f.signature.name(), "double");
        assert_eq!(f.signature.return_type(), ExprType::Number);
        assert_eq!(f.signature.fragment_impact(), FragmentImpact::CoreSafe);
        assert!(r.lookup("triple").is_none());
        assert_eq!(r.signatures().count(), 1);
    }

    #[test]
    fn arity_checks() {
        let s = double();
        assert!(s.accepts_arity(1));
        assert!(!s.accepts_arity(0));
        assert!(!s.accepts_arity(2));
        assert_eq!(s.arity_description(), "1");
        let v = FunctionSignature::new("join", 2, None);
        assert!(v.accepts_arity(2));
        assert!(v.accepts_arity(9));
        assert!(!v.accepts_arity(1));
        assert_eq!(v.arity_description(), "2 or more");
        let r = FunctionSignature::new("pick", 1, Some(3));
        assert_eq!(r.arity_description(), "1 to 3");
    }

    #[test]
    fn default_contract_is_general_string() {
        let s = FunctionSignature::new("f", 0, Some(0));
        assert_eq!(s.fragment_impact(), FragmentImpact::General);
        assert_eq!(s.return_type(), ExprType::Str);
        assert_eq!(FragmentImpact::General.to_string(), "general");
        assert_eq!(FragmentImpact::CoreSafe.to_string(), "core-safe");
    }

    #[test]
    #[should_panic(expected = "cannot shadow built-in")]
    fn shadowing_builtins_panics() {
        let mut r = FunctionRegistry::new();
        r.register(FunctionSignature::new("count", 1, Some(1)), |_, _, _| {
            Ok(Value::Number(0.0))
        });
    }

    #[test]
    fn debug_and_clone_work() {
        let mut r = FunctionRegistry::new();
        r.register(double(), |_, _, _| Ok(Value::Number(0.0)));
        let c = r.clone();
        assert!(format!("{c:?}").contains("double"));
        assert!(FunctionRegistry::empty().is_empty());
    }
}
