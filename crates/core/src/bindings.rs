//! External variable bindings.
//!
//! XPath variable references (`$name`) are *free* in a query: the language
//! gives them no binding form, so values arrive from outside, per
//! evaluation.  [`Bindings`] is that outside: a small name → [`Value`] map
//! handed to the bound entry points of
//! [`CompiledQuery`](crate::compile::CompiledQuery) and
//! [`Engine`](crate::engine::Engine).
//!
//! Bindings are an **evaluation-time** input, deliberately kept out of the
//! compiled plan: one `CompiledQuery` (and one
//! [`PlanIr`](crate::ir::PlanIr)) serves any number of parameterizations,
//! and plan-cache keys as well as catalog artifact keys remain
//! binding-independent — re-binding never causes a recompile or a cache
//! miss.
//!
//! ```
//! use xpeval_core::Bindings;
//!
//! let bindings = Bindings::new()
//!     .with_string("status", "published")
//!     .with_number("max", 10.0);
//! assert!(bindings.get("status").is_some());
//! assert!(bindings.get("missing").is_none());
//! ```

use crate::value::Value;
use std::fmt;

/// A set of `$name` → value bindings supplied for one evaluation.
///
/// Backed by a small sorted vector: queries reference a handful of
/// variables, so binary search beats hashing and keeps iteration
/// deterministic.  Binding the same name twice keeps the latest value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings {
    /// Sorted by name; unique names.
    entries: Vec<(String, Value)>,
}

impl Bindings {
    /// No bindings.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// The process-wide empty binding set, for unbound entry points.
    pub(crate) fn empty() -> &'static Bindings {
        static EMPTY: Bindings = Bindings {
            entries: Vec::new(),
        };
        &EMPTY
    }

    /// Binds `name` to an arbitrary [`Value`], replacing any previous
    /// binding of the same name.  Variables are statically string-typed in
    /// the classifier, but any scalar value is accepted — the usual XPath
    /// coercions apply at the use site.
    pub fn set(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        let name = name.into();
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(&name))
        {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name, value)),
        }
        self
    }

    /// Builder form of [`Bindings::set`].
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Self {
        self.set(name, value);
        self
    }

    /// Binds a string value.
    pub fn with_string(self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.with(name, Value::Str(value.into()))
    }

    /// Binds a number value.
    pub fn with_number(self, name: impl Into<String>, value: f64) -> Self {
        self.with(name, Value::Number(value))
    }

    /// Binds a boolean value.
    pub fn with_boolean(self, name: impl Into<String>, value: bool) -> Self {
        self.with(name, Value::Boolean(value))
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of bound names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no names are bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }
}

impl fmt::Display for Bindings {
    /// Renders as `$a = 1, $b = 'x'` (names in sorted order).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match value {
                Value::Str(s) => write!(f, "${name} = '{s}'")?,
                other => write!(f, "${name} = {other:?}")?,
            }
        }
        Ok(())
    }
}

impl<N: Into<String>> FromIterator<(N, Value)> for Bindings {
    fn from_iter<T: IntoIterator<Item = (N, Value)>>(iter: T) -> Self {
        let mut b = Bindings::new();
        for (name, value) in iter {
            b.set(name, value);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_replace() {
        let mut b = Bindings::new();
        assert!(b.is_empty());
        b.set("x", Value::Number(1.0));
        b.set("a", Value::Str("s".into()));
        b.set("x", Value::Number(2.0));
        assert_eq!(b.len(), 2);
        assert_eq!(b.get("x"), Some(&Value::Number(2.0)));
        assert_eq!(b.get("a"), Some(&Value::Str("s".into())));
        assert!(b.get("y").is_none());
        // Iteration is name-sorted.
        let names: Vec<&str> = b.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "x"]);
    }

    #[test]
    fn builder_forms() {
        let b = Bindings::new()
            .with_string("s", "v")
            .with_number("n", 3.0)
            .with_boolean("t", true);
        assert_eq!(b.get("s"), Some(&Value::Str("v".into())));
        assert_eq!(b.get("n"), Some(&Value::Number(3.0)));
        assert_eq!(b.get("t"), Some(&Value::Boolean(true)));
    }

    #[test]
    fn from_iterator_and_display() {
        let b: Bindings = [("b", Value::Number(2.0)), ("a", Value::Str("x".into()))]
            .into_iter()
            .collect();
        assert_eq!(b.to_string(), "$a = 'x', $b = Number(2.0)");
        assert!(Bindings::empty().is_empty());
        assert_eq!(Bindings::new().to_string(), "");
    }
}
