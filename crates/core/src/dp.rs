//! The context-value-table dynamic-programming evaluator.
//!
//! This is the polynomial-time (combined complexity) evaluation algorithm of
//! Gottlob, Koch & Pichler's VLDB'02/ICDE'03 papers that the PODS'03 paper
//! builds on (Proposition 2.7 and Theorem 7.2): for every subexpression of
//! the query a *context-value table* is maintained — a relation of
//! `(context, value)` pairs with one entry per context the subexpression is
//! evaluated in.  Because the number of distinct contexts is polynomial in
//! the document (|D| node contexts, or |D|·|D|² full triples when
//! `position()`/`last()` are involved) and each entry is computed only once,
//! the total work is polynomial in |D|·|Q| no matter how deeply the query
//! nests.
//!
//! The tables are realized *lazily*: [`DpEvaluator`] memoizes every
//! `(subexpression, context)` pair it encounters.  A static
//! position-sensitivity analysis decides, per subexpression, whether the
//! table must be keyed by the full context triple or only by the context
//! node — subexpressions that do not mention `position()`/`last()` only
//! depend on the node, which keeps the tables small (this is the
//! optimization behind the improved bounds in the ICDE'03 follow-up paper).
//!
//! The number of table entries and the hit/miss counts are exposed through
//! the unified [`EvalStats`]; the benchmark harness uses them to demonstrate
//! the polynomial-vs-exponential separation against [`crate::NaiveEvaluator`]
//! without relying on wall-clock time.

use crate::context::{Context, ContextKey};
use crate::error::EvalError;
use crate::functions::call_function;
use crate::stats::EvalStats;
use crate::steps::apply_step;
use crate::value::Value;
use std::collections::HashMap;
use xpeval_dom::{AxisSource, Document, NodeId};
use xpeval_syntax::{Expr, LocationPath};

/// Legacy name for the unified work counters.
pub type DpStats = EvalStats;

/// Dynamic-programming evaluator over context-value tables.
///
/// The evaluator is constructed per `(document, query)` pair; the memo
/// tables are keyed by sub-expression identity within that query.  The
/// document is consumed through any [`AxisSource`] — a plain
/// [`Document`] or a [`xpeval_dom::PreparedDocument`] with axis indexes.
pub struct DpEvaluator<'d, 'q, S: AxisSource + ?Sized = Document> {
    src: &'d S,
    doc: &'d Document,
    query: &'q Expr,
    memo: HashMap<(usize, ContextKey), Value>,
    sensitivity: HashMap<usize, bool>,
    stats: EvalStats,
}

impl<'d, 'q, S: AxisSource + ?Sized> DpEvaluator<'d, 'q, S> {
    /// Creates an evaluator for `query` over `src`.
    pub fn new(src: &'d S, query: &'q Expr) -> Self {
        DpEvaluator {
            src,
            doc: src.document(),
            query,
            memo: HashMap::new(),
            sensitivity: HashMap::new(),
            stats: EvalStats::default(),
        }
    }

    /// Evaluates the query in the canonical root context.
    pub fn evaluate(&mut self) -> Result<Value, EvalError> {
        let ctx = Context::root(self.doc);
        self.evaluate_with_context(ctx)
    }

    /// Evaluates the query in an explicit context.
    pub fn evaluate_with_context(&mut self, ctx: Context) -> Result<Value, EvalError> {
        let query = self.query;
        self.eval(query, ctx)
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EvalStats {
        EvalStats {
            table_entries: self.memo.len(),
            ..self.stats
        }
    }

    /// Total number of context-value table entries currently stored.
    pub fn table_entries(&self) -> usize {
        self.memo.len()
    }

    fn key_of(expr: &Expr) -> usize {
        expr as *const Expr as usize
    }

    /// Position-sensitivity of a subexpression: does its value, for a fixed
    /// context node, depend on the context position or size?  Location paths
    /// are insensitive (their predicates receive fresh positions); scalar
    /// expressions are sensitive iff they mention `position()`/`last()`
    /// outside of any nested path.
    fn is_sensitive(&mut self, expr: &Expr) -> bool {
        let key = Self::key_of(expr);
        if let Some(&s) = self.sensitivity.get(&key) {
            return s;
        }
        let s = sensitivity(expr);
        self.sensitivity.insert(key, s);
        s
    }

    fn eval(&mut self, expr: &Expr, ctx: Context) -> Result<Value, EvalError> {
        let sensitive = self.is_sensitive(expr);
        let key = (Self::key_of(expr), ContextKey::for_context(ctx, sensitive));
        if let Some(v) = self.memo.get(&key) {
            self.stats.cache_hits += 1;
            return Ok(v.clone());
        }
        self.stats.evaluations += 1;
        let value = self.eval_uncached(expr, ctx)?;
        self.memo.insert(key, value.clone());
        Ok(value)
    }

    fn eval_uncached(&mut self, expr: &Expr, ctx: Context) -> Result<Value, EvalError> {
        match expr {
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Literal(s) => Ok(Value::Str(s.clone())),
            Expr::Path(path) => self.eval_path(path, ctx),
            Expr::Union(a, b) => {
                let mut left = self.eval(a, ctx)?.into_nodes()?;
                let right = self.eval(b, ctx)?.into_nodes()?;
                left.extend(right);
                Ok(Value::node_set(self.doc, left))
            }
            Expr::Intersect(a, b) => {
                let left = self.eval(a, ctx)?.into_nodes()?;
                let right = self.eval(b, ctx)?.into_nodes()?;
                Ok(Value::NodeSet(set_intersect(left, &right)))
            }
            Expr::Except(a, b) => {
                let left = self.eval(a, ctx)?.into_nodes()?;
                let right = self.eval(b, ctx)?.into_nodes()?;
                Ok(Value::NodeSet(set_except(left, &right)))
            }
            Expr::NodeCompare { op, left, right } => {
                let l = self.eval(left, ctx)?.into_nodes()?;
                let r = self.eval(right, ctx)?.into_nodes()?;
                Ok(Value::Boolean(node_compare(*op, self.doc, &l, &r)))
            }
            Expr::Variable(name) => Err(EvalError::UnboundVariable { name: name.clone() }),
            Expr::Or(a, b) => {
                if self.eval(a, ctx)?.to_boolean() {
                    return Ok(Value::Boolean(true));
                }
                Ok(Value::Boolean(self.eval(b, ctx)?.to_boolean()))
            }
            Expr::And(a, b) => {
                if !self.eval(a, ctx)?.to_boolean() {
                    return Ok(Value::Boolean(false));
                }
                Ok(Value::Boolean(self.eval(b, ctx)?.to_boolean()))
            }
            Expr::Not(e) => Ok(Value::Boolean(!self.eval(e, ctx)?.to_boolean())),
            Expr::Relational { op, left, right } => {
                let l = self.eval(left, ctx)?;
                let r = self.eval(right, ctx)?;
                Ok(Value::Boolean(l.compare(*op, &r, self.doc)))
            }
            Expr::Arithmetic { op, left, right } => {
                let l = self.eval(left, ctx)?.to_number(self.doc);
                let r = self.eval(right, ctx)?.to_number(self.doc);
                Ok(Value::Number(op.apply(l, r)))
            }
            Expr::Neg(e) => {
                let n = self.eval(e, ctx)?.to_number(self.doc);
                Ok(Value::Number(-n))
            }
            Expr::FunctionCall { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(a, ctx)?);
                }
                call_function(name, values, &ctx, self.doc)
            }
        }
    }

    fn eval_path(&mut self, path: &LocationPath, ctx: Context) -> Result<Value, EvalError> {
        let mut current: Vec<NodeId> = if path.absolute {
            vec![self.doc.root()]
        } else {
            vec![ctx.node]
        };
        for step in &path.steps {
            let mut next: Vec<NodeId> = Vec::new();
            for &node in &current {
                self.stats.step_context_evaluations += 1;
                let src = self.src;
                // The predicate evaluation recurses into the memoized
                // evaluator — this is what makes the whole thing a dynamic
                // program rather than naive re-evaluation.
                let mut selected = {
                    let mut eval_pred =
                        |e: &Expr, c: Context| -> Result<Value, EvalError> { self.eval(e, c) };
                    apply_step(src, node, step, &mut eval_pred)?
                };
                next.append(&mut selected);
            }
            // Set semantics: document order, no duplicates.
            self.doc.sort_document_order(&mut next);
            current = next;
        }
        Ok(Value::NodeSet(current))
    }
}

/// Node-set intersection preserving the document order of `left` (both
/// inputs are already sorted and duplicate-free, so the result is too).
pub(crate) fn set_intersect(left: Vec<NodeId>, right: &[NodeId]) -> Vec<NodeId> {
    left.into_iter().filter(|n| right.contains(n)).collect()
}

/// Node-set difference preserving the document order of `left`.
pub(crate) fn set_except(left: Vec<NodeId>, right: &[NodeId]) -> Vec<NodeId> {
    left.into_iter().filter(|n| !right.contains(n)).collect()
}

/// The engine's node-comparison semantics: compare the first node in
/// document order of each (already sorted) operand set by preorder rank; an
/// empty operand never compares true.
pub(crate) fn node_compare(
    op: xpeval_syntax::NodeCompOp,
    doc: &Document,
    left: &[NodeId],
    right: &[NodeId],
) -> bool {
    match (left.first(), right.first()) {
        (Some(&l), Some(&r)) => op.apply(doc.pre(l), doc.pre(r)),
        _ => false,
    }
}

/// Static position-sensitivity analysis (see [`DpEvaluator::is_sensitive`]).
pub(crate) fn sensitivity(expr: &Expr) -> bool {
    match expr {
        Expr::FunctionCall { name, args } => {
            name == "position" || name == "last" || args.iter().any(sensitivity)
        }
        Expr::Path(_) | Expr::Union(_, _) | Expr::Intersect(_, _) | Expr::Except(_, _) => false,
        // Node comparisons compare nodes of their operand *paths*, which
        // receive fresh positions — the value cannot depend on the outer
        // context position.
        Expr::NodeCompare { .. } => false,
        Expr::Variable(_) => false,
        Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Relational {
            left: a, right: b, ..
        }
        | Expr::Arithmetic {
            left: a, right: b, ..
        } => sensitivity(a) || sensitivity(b),
        Expr::Not(e) | Expr::Neg(e) => sensitivity(e),
        Expr::Number(_) | Expr::Literal(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;
    use xpeval_syntax::parse_query;

    fn eval(xml: &str, query: &str) -> Value {
        let doc = parse_xml(xml).unwrap();
        let q = parse_query(query).unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        ev.evaluate().unwrap()
    }

    fn eval_names(xml: &str, query: &str) -> Vec<String> {
        let doc = parse_xml(xml).unwrap();
        let q = parse_query(query).unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        let v = ev.evaluate().unwrap();
        v.expect_nodes()
            .iter()
            .map(|&n| doc.name(n).unwrap_or("#").to_string())
            .collect()
    }

    fn eval_values(xml: &str, query: &str) -> Vec<String> {
        let doc = parse_xml(xml).unwrap();
        let q = parse_query(query).unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        let v = ev.evaluate().unwrap();
        v.expect_nodes()
            .iter()
            .map(|&n| doc.string_value(n))
            .collect()
    }

    const BOOKS: &str = r#"<lib><book year="2001"><title>A</title></book><book year="2003"><title>B</title><cite/></book><paper year="2003"><title>C</title></paper></lib>"#;

    #[test]
    fn simple_child_paths() {
        assert_eq!(
            eval_names(BOOKS, "/child::lib/child::book"),
            vec!["book", "book"]
        );
        assert_eq!(eval_names(BOOKS, "/lib/book/title"), vec!["title", "title"]);
        assert_eq!(
            eval_names(BOOKS, "//title"),
            vec!["title", "title", "title"]
        );
    }

    #[test]
    fn paper_example_query_semantics() {
        // /descendant::a/child::b[descendant::c and not(following-sibling::d)]
        let xml = "<r><a><b><c/></b><b/><d/></a><a><b><c/></b><d/><b><c/></b></a></r>";
        let v = eval_values(
            xml,
            "/descendant::a/child::b[descendant::c and not(following-sibling::d)]",
        );
        // First a: first b has c and no following d sibling?  It does have a
        // following d sibling, so excluded.  Second b has no c.  Second a:
        // first b has c but a following d; last b has c and no following d.
        assert_eq!(v.len(), 1);
        let v = eval_names(xml, "/descendant::a/child::b[descendant::c]");
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn predicates_with_attributes_and_values() {
        assert_eq!(eval_names(BOOKS, "//book[@year = 2003]"), vec!["book"]);
        assert_eq!(
            eval_names(BOOKS, "//book[@year = 2003]/title"),
            vec!["title"]
        );
        assert_eq!(eval_values(BOOKS, "//book[@year = 2003]/title"), vec!["B"]);
        assert_eq!(
            eval_names(BOOKS, "//*[@year = 2003]"),
            vec!["book", "paper"]
        );
        assert_eq!(eval_names(BOOKS, "//book[child::cite]"), vec!["book"]);
    }

    #[test]
    fn position_and_last() {
        assert_eq!(
            eval_values(BOOKS, "//book[position() = 2]/title"),
            vec!["B"]
        );
        assert_eq!(eval_values(BOOKS, "//book[last()]/title"), vec!["B"]);
        assert_eq!(eval_values(BOOKS, "//book[1]/title"), vec!["A"]);
        // Section 2.2 example: position() + 1 = last() selects w_k with k+1 = m.
        let xml = "<r><a>1</a><a>2</a><a>3</a></r>";
        assert_eq!(eval_values(xml, "/r/a[position() + 1 = last()]"), vec!["2"]);
    }

    #[test]
    fn booleans_and_unions() {
        assert_eq!(
            eval_names(BOOKS, "//book[child::cite or child::title]"),
            vec!["book", "book"]
        );
        assert_eq!(
            eval_names(BOOKS, "//book[child::cite and child::title]"),
            vec!["book"]
        );
        assert_eq!(eval_names(BOOKS, "//book[not(child::cite)]"), vec!["book"]);
        let mut names = eval_names(BOOKS, "//book/title | //paper/title | //cite");
        names.sort();
        assert_eq!(names, vec!["cite", "title", "title", "title"]);
    }

    #[test]
    fn scalar_results() {
        assert_eq!(eval(BOOKS, "count(//book)"), Value::Number(2.0));
        assert_eq!(eval(BOOKS, "count(//book | //paper)"), Value::Number(3.0));
        assert_eq!(eval(BOOKS, "1 + 2 * 3"), Value::Number(7.0));
        assert_eq!(
            eval(BOOKS, "string(//book[1]/title)"),
            Value::Str("A".into())
        );
        assert_eq!(eval(BOOKS, "boolean(//nosuch)"), Value::Boolean(false));
        assert_eq!(eval(BOOKS, "not(//nosuch)"), Value::Boolean(true));
        assert_eq!(
            eval(BOOKS, "concat('x', string(count(//title)))"),
            Value::Str("x3".into())
        );
        assert_eq!(eval(BOOKS, "sum(//book/@year)"), Value::Number(4004.0));
    }

    #[test]
    fn relative_paths_use_the_context_node() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("child::title").unwrap();
        let book2 = doc
            .all_elements()
            .filter(|&n| doc.name(n) == Some("book"))
            .nth(1)
            .unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        let v = ev.evaluate_with_context(Context::new(book2, 1, 1)).unwrap();
        assert_eq!(v.expect_nodes().len(), 1);
        assert_eq!(doc.string_value(v.expect_nodes()[0]), "B");
    }

    #[test]
    fn ancestor_following_preceding_axes() {
        let xml = "<r><x><a/><b/></x><y><c/></y></r>";
        assert_eq!(eval_names(xml, "//c/ancestor::*"), vec!["r", "y"]);
        assert_eq!(eval_names(xml, "//a/following::*"), vec!["b", "y", "c"]);
        assert_eq!(eval_names(xml, "//c/preceding::*"), vec!["x", "a", "b"]);
        assert_eq!(eval_names(xml, "//b/preceding-sibling::*"), vec!["a"]);
        assert_eq!(
            eval_names(xml, "//a/ancestor-or-self::*"),
            vec!["r", "x", "a"]
        );
    }

    #[test]
    fn root_query_and_self_axis() {
        let v = eval(BOOKS, "/");
        assert_eq!(v.expect_nodes().len(), 1);
        assert_eq!(eval_names(BOOKS, "//title/self::title").len(), 3);
        assert_eq!(
            eval_names(BOOKS, "//title/."),
            vec!["title", "title", "title"]
        );
        assert_eq!(eval_names(BOOKS, "//title/../..").len(), 1);
    }

    #[test]
    fn text_nodes() {
        let v = eval_values(BOOKS, "//title/text()");
        assert_eq!(v, vec!["A", "B", "C"]);
    }

    #[test]
    fn memoization_collapses_repeated_work() {
        // A query that evaluates the same subexpression in the same context
        // many times: the ancestor step reaches the root and <r> from every
        // <b>, so the predicate [child::b] is re-requested for those nodes
        // and must be answered from the context-value table.
        let xml = "<r><a><b/></a><a><b/></a><a><b/></a></r>";
        let doc = parse_xml(xml).unwrap();
        let q = parse_query("//b/ancestor::*[child::b]").unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        ev.evaluate().unwrap();
        let stats = ev.stats();
        assert!(stats.cache_hits > 0, "expected cache hits, got {stats:?}");
        assert!(ev.table_entries() > 0);
    }

    #[test]
    fn table_keys_collapse_for_position_insensitive_subexpressions() {
        // The predicate `child::b` is position-insensitive: even though it is
        // evaluated in many different (node, pos, size) triples it must be
        // stored per node only.
        let xml = "<r><a><b/></a><a><b/></a><a><b/></a><a/></r>";
        let doc = parse_xml(xml).unwrap();
        let q = parse_query("//a[child::b]").unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        ev.evaluate().unwrap();
        let n_entries = ev.table_entries();

        let q2 = parse_query("//a[child::b and position() <= last()]").unwrap();
        let mut ev2 = DpEvaluator::new(&doc, &q2);
        ev2.evaluate().unwrap();
        // The position-sensitive variant stores more entries (full triples)
        // but both stay polynomial.
        assert!(ev2.table_entries() >= n_entries);
    }

    #[test]
    fn polynomial_on_the_exponential_query_family() {
        // //a/b/parent::a/b/parent::a/... — the family on which naive
        // engines blow up exponentially (Section 1 of the paper).  The DP
        // evaluator's work must stay polynomial: with set semantics each
        // step touches at most |D| context nodes.
        let k = 5;
        let mut xml = String::from("<a>");
        for _ in 0..k {
            xml.push_str("<b/>");
        }
        xml.push_str("</a>");
        let doc = parse_xml(&xml).unwrap();

        let mut work = Vec::new();
        for reps in 1..=6 {
            let mut q = String::from("//a");
            for _ in 0..reps {
                q.push_str("/b/parent::a");
            }
            let query = parse_query(&q).unwrap();
            let mut ev = DpEvaluator::new(&doc, &query);
            ev.evaluate().unwrap();
            work.push(ev.stats().step_context_evaluations);
        }
        // Work grows at most linearly in the number of repetitions
        // (roughly (k+1) extra step applications per repetition), far from
        // the k^reps growth of the naive evaluator.
        for w in work.windows(2) {
            assert!(
                w[1] - w[0] <= (2 * k as u64 + 4),
                "work not linear per added step: {work:?}"
            );
        }
    }

    #[test]
    fn set_operators_follow_document_order() {
        // //title ∩ //book/title: the paper's title drops out.
        assert_eq!(
            eval_values(BOOKS, "//title intersect //book/title"),
            vec!["A", "B"]
        );
        assert_eq!(eval_values(BOOKS, "//title except //book/title"), vec!["C"]);
        assert_eq!(
            eval_values(BOOKS, "(//title | //cite) except //paper/title"),
            vec!["A", "B", ""]
        );
        // Disjoint operands intersect to the empty set.
        assert_eq!(
            eval(BOOKS, "//book intersect //paper"),
            Value::NodeSet(vec![])
        );
        // a except a = ∅; a intersect a = a.
        assert_eq!(
            eval(BOOKS, "//title except //title"),
            Value::NodeSet(vec![])
        );
        assert_eq!(eval_names(BOOKS, "//title intersect //title").len(), 3);
    }

    #[test]
    fn node_comparisons_use_first_nodes_in_document_order() {
        assert_eq!(eval(BOOKS, "//book is //book"), Value::Boolean(true));
        assert_eq!(eval(BOOKS, "//book is //paper"), Value::Boolean(false));
        assert_eq!(eval(BOOKS, "//book << //paper"), Value::Boolean(true));
        assert_eq!(eval(BOOKS, "//paper >> //cite"), Value::Boolean(true));
        assert_eq!(eval(BOOKS, "//paper << //book"), Value::Boolean(false));
        // Empty operands never compare true, on either side.
        assert_eq!(eval(BOOKS, "//nosuch is //book"), Value::Boolean(false));
        assert_eq!(eval(BOOKS, "//book << //nosuch"), Value::Boolean(false));
    }

    #[test]
    fn variables_are_unbound_without_a_bindings_channel() {
        let doc = parse_xml(BOOKS).unwrap();
        let q = parse_query("//book[@year = $year]").unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        assert!(matches!(
            ev.evaluate(),
            Err(EvalError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let doc = parse_xml("<a/>").unwrap();
        let q = parse_query("frobnicate(1)").unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        assert!(matches!(
            ev.evaluate(),
            Err(EvalError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn union_of_scalar_is_type_error() {
        let doc = parse_xml("<a/>").unwrap();
        let q = parse_query("1 | //a").unwrap();
        let mut ev = DpEvaluator::new(&doc, &q);
        assert!(matches!(ev.evaluate(), Err(EvalError::TypeError { .. })));
    }
}
