//! Abstract syntax tree for the XPath fragments studied in the paper.
//!
//! The AST mirrors the grammar of Definitions 2.5 (Core XPath), 2.6 (Wadler
//! fragment) and 6.1 (pXPath): expressions are location paths, boolean
//! connectives, relational and arithmetic operators, literals and calls to
//! the XPath core function library.  Negation is represented explicitly as
//! [`Expr::Not`] because it is the construct whose presence or absence
//! determines most of the paper's complexity boundaries.

use xpeval_dom::{Axis, NodeTest};

/// Relational operators of the Wadler fragment ("relop" in Definition 2.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl RelOp {
    /// XPath surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        }
    }

    /// The complemented operator, used by the de Morgan normalizer of
    /// Theorem 5.9 (`not(a = b)` ≡ `a != b`, `not(a < b)` ≡ `a >= b`, ...).
    pub fn negated(self) -> RelOp {
        match self {
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
        }
    }

    /// Applies the operator to two numbers with XPath 1.0 semantics
    /// (NaN compares false under every operator except `!=`).
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
            RelOp::Lt => a < b,
            RelOp::Le => a <= b,
            RelOp::Gt => a > b,
            RelOp::Ge => a >= b,
        }
    }
}

/// Node comparison operators over node-set operands: identity (`is`) and
/// document order (`<<` / `>>`).  Borrowed from the XPath 2.0 operator
/// matrix; the engine compares the *first node in document order* of each
/// operand and treats an empty operand as never comparing true.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeCompOp {
    /// `a is b`: the two operands select the same first node.
    Is,
    /// `a << b`: the first node of `a` strictly precedes the first node of
    /// `b` in document order.
    Precedes,
    /// `a >> b`: the first node of `a` strictly follows the first node of
    /// `b` in document order.
    Follows,
}

impl NodeCompOp {
    /// XPath surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            NodeCompOp::Is => "is",
            NodeCompOp::Precedes => "<<",
            NodeCompOp::Follows => ">>",
        }
    }

    /// Applies the operator to the preorder ranks of the two compared nodes.
    pub fn apply<T: Ord>(self, a: T, b: T) -> bool {
        match self {
            NodeCompOp::Is => a == b,
            NodeCompOp::Precedes => a < b,
            NodeCompOp::Follows => a > b,
        }
    }
}

/// Arithmetic operators of the Wadler fragment ("arithop").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    /// XPath surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        }
    }

    /// Applies the operator with XPath 1.0 number semantics (`div` is float
    /// division, `mod` is the remainder with the sign of the dividend).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Mod => a % b,
        }
    }
}

/// A location step `axis::ntst[pred1]...[predk]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub node_test: NodeTest,
    /// Predicate sequence.  `predicates.len() >= 2` is what the paper calls
    /// *iterated predicates* (forbidden in pWF/pXPath by Definition 5.1(1)
    /// and 6.1(1), and the source of P-hardness in Theorem 5.7).
    pub predicates: Vec<Expr>,
}

impl Step {
    /// A step without predicates.
    pub fn new(axis: Axis, node_test: NodeTest) -> Self {
        Step {
            axis,
            node_test,
            predicates: Vec::new(),
        }
    }

    /// A step with a single predicate.
    pub fn with_predicate(axis: Axis, node_test: NodeTest, pred: Expr) -> Self {
        Step {
            axis,
            node_test,
            predicates: vec![pred],
        }
    }

    /// A step with a predicate sequence.
    pub fn with_predicates(axis: Axis, node_test: NodeTest, preds: Vec<Expr>) -> Self {
        Step {
            axis,
            node_test,
            predicates: preds,
        }
    }
}

/// A location path: an optional leading `/` (absolute path) followed by a
/// `/`-separated sequence of steps.
#[derive(Clone, Debug, PartialEq)]
pub struct LocationPath {
    /// `true` for `/a/b` (evaluation starts at the conceptual root),
    /// `false` for `a/b` (evaluation starts at the context node).
    pub absolute: bool,
    pub steps: Vec<Step>,
}

impl LocationPath {
    /// An absolute path with the given steps.
    pub fn absolute(steps: Vec<Step>) -> Self {
        LocationPath {
            absolute: true,
            steps,
        }
    }

    /// A relative path with the given steps.
    pub fn relative(steps: Vec<Step>) -> Self {
        LocationPath {
            absolute: false,
            steps,
        }
    }

    /// The path `/` selecting only the conceptual root.
    pub fn root() -> Self {
        LocationPath {
            absolute: true,
            steps: Vec::new(),
        }
    }
}

/// An XPath expression ("expr" in Definition 2.6).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A location path (node-set typed).
    Path(LocationPath),
    /// Union of two node-set expressions, `π1 | π2` (also spelled
    /// `π1 union π2`).
    Union(Box<Expr>, Box<Expr>),
    /// Intersection of two node-set expressions, `π1 intersect π2`
    /// (XPath 2.0 set algebra; monotone, so it stays inside the positive
    /// fragments in node-set position).
    Intersect(Box<Expr>, Box<Expr>),
    /// Set difference of two node-set expressions, `π1 except π2`.  The
    /// complement makes this a negation-bearing construct: it leaves the
    /// positive fragments even though no `not()` appears in the surface
    /// syntax.
    Except(Box<Expr>, Box<Expr>),
    /// `e1 or e2`.
    Or(Box<Expr>, Box<Expr>),
    /// `e1 and e2`.
    And(Box<Expr>, Box<Expr>),
    /// `not(e)` — kept as a dedicated constructor because negation defines
    /// the boundary between Core XPath (P-complete) and positive Core
    /// XPath / pWF / pXPath (LOGCFL).
    Not(Box<Expr>),
    /// `e1 relop e2`.
    Relational {
        op: RelOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `e1 arithop e2`.
    Arithmetic {
        op: ArithOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// A node comparison `π1 is π2`, `π1 << π2` or `π1 >> π2` between two
    /// node-set operands (boolean typed).
    NodeCompare {
        op: NodeCompOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Unary minus `-e`.
    Neg(Box<Expr>),
    /// An external variable reference `$name`, bound per evaluation (never
    /// at compile time) by a `Bindings` value.  Statically typed as an
    /// opaque scalar; the runtime value decides conversions.
    Variable(String),
    /// Numeric literal.
    Number(f64),
    /// String literal.
    Literal(String),
    /// Call to an XPath core library function, e.g. `position()`, `last()`,
    /// `count(π)`, `boolean(π)`, `true()`, `concat(a, b)`.
    /// `not(..)` is *not* represented here (see [`Expr::Not`]).
    FunctionCall { name: String, args: Vec<Expr> },
}

/// Static type of an XPath expression (XPath 1.0 §1: every expression
/// evaluates to a node-set, a boolean, a number or a string).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExprType {
    NodeSet,
    Boolean,
    Number,
    Str,
}

impl Expr {
    /// Convenience constructor: `e1 and e2`.
    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `e1 or e2`.
    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `not(e)`.
    #[allow(clippy::should_implement_trait)] // XPath's not() is a function, not an operator
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Convenience constructor: a relational comparison.
    pub fn relational(op: RelOp, left: Expr, right: Expr) -> Expr {
        Expr::Relational {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor: `e1 intersect e2`.
    pub fn intersect(a: Expr, b: Expr) -> Expr {
        Expr::Intersect(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `e1 except e2`.
    pub fn except(a: Expr, b: Expr) -> Expr {
        Expr::Except(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: a node comparison.
    pub fn node_compare(op: NodeCompOp, left: Expr, right: Expr) -> Expr {
        Expr::NodeCompare {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor: a variable reference `$name`.
    pub fn variable(name: &str) -> Expr {
        Expr::Variable(name.to_string())
    }

    /// Convenience constructor: an arithmetic operation.
    pub fn arithmetic(op: ArithOp, left: Expr, right: Expr) -> Expr {
        Expr::Arithmetic {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor: a nullary function call.
    pub fn call0(name: &str) -> Expr {
        Expr::FunctionCall {
            name: name.to_string(),
            args: Vec::new(),
        }
    }

    /// Convenience constructor: a unary function call.
    pub fn call1(name: &str, arg: Expr) -> Expr {
        Expr::FunctionCall {
            name: name.to_string(),
            args: vec![arg],
        }
    }

    /// `position()`.
    pub fn position() -> Expr {
        Expr::call0("position")
    }

    /// `last()`.
    pub fn last() -> Expr {
        Expr::call0("last")
    }

    /// A relative single-step path `axis::test`.
    pub fn step(axis: Axis, test: NodeTest) -> Expr {
        Expr::Path(LocationPath::relative(vec![Step::new(axis, test)]))
    }

    /// The size of the expression: the number of AST nodes, counting steps
    /// and predicates.  This is the |Q| measure used in the paper's
    /// complexity statements and in EXPERIMENTS.md.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Height of the expression tree.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Path(p) => {
                1 + p
                    .steps
                    .iter()
                    .flat_map(|s| s.predicates.iter())
                    .map(|e| e.depth())
                    .max()
                    .unwrap_or(0)
            }
            Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b)
            | Expr::Or(a, b)
            | Expr::And(a, b)
            | Expr::Relational {
                left: a, right: b, ..
            }
            | Expr::Arithmetic {
                left: a, right: b, ..
            }
            | Expr::NodeCompare {
                left: a, right: b, ..
            } => 1 + a.depth().max(b.depth()),
            Expr::Not(e) | Expr::Neg(e) => 1 + e.depth(),
            Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => 1,
            Expr::FunctionCall { args, .. } => {
                1 + args.iter().map(|a| a.depth()).max().unwrap_or(0)
            }
        }
    }

    /// Visits every sub-expression (including predicates nested inside
    /// location-path steps and function arguments) in preorder.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Path(p) => {
                for step in &p.steps {
                    for pred in &step.predicates {
                        pred.visit(f);
                    }
                }
            }
            Expr::Union(a, b)
            | Expr::Intersect(a, b)
            | Expr::Except(a, b)
            | Expr::Or(a, b)
            | Expr::And(a, b)
            | Expr::Relational {
                left: a, right: b, ..
            }
            | Expr::Arithmetic {
                left: a, right: b, ..
            }
            | Expr::NodeCompare {
                left: a, right: b, ..
            } => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Not(e) | Expr::Neg(e) => e.visit(f),
            Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => {}
            Expr::FunctionCall { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// The static XPath 1.0 type of the expression.
    ///
    /// The classifier uses this to detect constructs of the form
    /// `e1 RelOp e2` with a boolean operand, which Definition 6.1(3) forbids
    /// in pXPath because they can encode negation.
    pub fn expr_type(&self) -> ExprType {
        match self {
            Expr::Path(_) | Expr::Union(_, _) | Expr::Intersect(_, _) | Expr::Except(_, _) => {
                ExprType::NodeSet
            }
            Expr::Or(_, _)
            | Expr::And(_, _)
            | Expr::Not(_)
            | Expr::Relational { .. }
            | Expr::NodeCompare { .. } => ExprType::Boolean,
            Expr::Arithmetic { .. } | Expr::Neg(_) | Expr::Number(_) => ExprType::Number,
            // A variable's value is only known at bind time; statically it is
            // an opaque scalar.  `Str` is the conservative choice: it never
            // trips the boolean-operand restriction of Definition 6.1(3) and
            // every dynamic conversion is decided by the bound `Value`.
            Expr::Literal(_) | Expr::Variable(_) => ExprType::Str,
            Expr::FunctionCall { name, .. } => match name.as_str() {
                "position" | "last" | "count" | "sum" | "number" | "floor" | "ceiling"
                | "round" | "string-length" => ExprType::Number,
                "true" | "false" | "boolean" | "contains" | "starts-with" | "lang" => {
                    ExprType::Boolean
                }
                "string" | "concat" | "name" | "local-name" | "namespace-uri"
                | "normalize-space" | "substring" | "substring-before" | "substring-after"
                | "translate" => ExprType::Str,
                "id" => ExprType::NodeSet,
                // A name the built-in library does not know is either a
                // compile error or a registered function; the registry's
                // declared return type (unavailable here) is authoritative,
                // so like `Variable` the static guess is the neutral `Str` —
                // it never trips the boolean-operand restriction of
                // Definition 6.1(3) on a name the classifier cannot see into.
                _ => ExprType::Str,
            },
        }
    }

    /// True if the expression is (syntactically) a location path.
    pub fn is_path(&self) -> bool {
        matches!(self, Expr::Path(_))
    }

    /// Returns the location path if the expression is one.
    pub fn as_path(&self) -> Option<&LocationPath> {
        match self {
            Expr::Path(p) => Some(p),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_path() -> Expr {
        // /descendant::a/child::b[descendant::c]
        Expr::Path(LocationPath::absolute(vec![
            Step::new(Axis::Descendant, NodeTest::name("a")),
            Step::with_predicate(
                Axis::Child,
                NodeTest::name("b"),
                Expr::step(Axis::Descendant, NodeTest::name("c")),
            ),
        ]))
    }

    #[test]
    fn relop_negation_is_involutive() {
        for op in [
            RelOp::Eq,
            RelOp::Ne,
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
        ] {
            assert_eq!(op.negated().negated(), op);
        }
    }

    #[test]
    fn relop_negated_is_complement_on_numbers() {
        let pairs = [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0), (-1.5, 0.0)];
        for op in [
            RelOp::Eq,
            RelOp::Ne,
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
        ] {
            for (a, b) in pairs {
                assert_eq!(op.apply(a, b), !op.negated().apply(a, b), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn arith_apply_matches_xpath_semantics() {
        assert_eq!(ArithOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(ArithOp::Div.apply(1.0, 2.0), 0.5);
        assert_eq!(ArithOp::Mod.apply(5.0, 2.0), 1.0);
        assert_eq!(ArithOp::Mod.apply(-5.0, 2.0), -1.0); // sign of dividend
        assert!(ArithOp::Div.apply(1.0, 0.0).is_infinite());
    }

    #[test]
    fn size_counts_predicates() {
        let e = sample_path();
        // Path node + the predicate path node
        assert_eq!(e.size(), 2);
        let bigger = Expr::and(e.clone(), Expr::not(e));
        assert_eq!(bigger.size(), 6);
    }

    #[test]
    fn depth_of_nested_expressions() {
        let leaf = Expr::Number(1.0);
        assert_eq!(leaf.depth(), 1);
        let nested = Expr::and(Expr::not(leaf.clone()), leaf);
        assert_eq!(nested.depth(), 3);
    }

    #[test]
    fn expr_types() {
        assert_eq!(sample_path().expr_type(), ExprType::NodeSet);
        assert_eq!(Expr::position().expr_type(), ExprType::Number);
        assert_eq!(Expr::call0("true").expr_type(), ExprType::Boolean);
        assert_eq!(Expr::Literal("x".into()).expr_type(), ExprType::Str);
        assert_eq!(
            Expr::relational(RelOp::Eq, Expr::position(), Expr::Number(1.0)).expr_type(),
            ExprType::Boolean
        );
        assert_eq!(
            Expr::arithmetic(ArithOp::Add, Expr::Number(1.0), Expr::Number(2.0)).expr_type(),
            ExprType::Number
        );
    }

    #[test]
    fn visit_reaches_predicates_and_args() {
        let e = Expr::call1("count", sample_path());
        let mut names = Vec::new();
        e.visit(&mut |x| {
            if let Expr::FunctionCall { name, .. } = x {
                names.push(name.clone());
            }
        });
        assert_eq!(names, vec!["count".to_string()]);
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn constructors() {
        let p = Expr::step(Axis::Child, NodeTest::Star);
        assert!(p.is_path());
        assert!(p.as_path().is_some());
        assert!(!p.as_path().unwrap().absolute);
        let root = LocationPath::root();
        assert!(root.absolute);
        assert!(root.steps.is_empty());
    }
}
