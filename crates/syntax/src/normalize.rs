//! Query normalization passes.
//!
//! Two transformations from the paper are implemented:
//!
//! * [`push_negation_inward`] — the de Morgan rewriting used in the proof of
//!   Theorem 5.9: all occurrences of `not(..)` are pushed down until they sit
//!   immediately in front of relational operators (where they are absorbed by
//!   complementing the operator) or in front of location paths (where they
//!   must remain).  The nesting depth of the *remaining* negations is what
//!   Theorem 5.9 requires to be bounded.
//! * [`expand_iterated_predicates`] — Remark 5.2: a location step
//!   `χ::t[e1]...[ek]` is equivalent to `χ::t[e1 and ... and ek]` as long as
//!   `position()` and `last()` are not used in the predicates.  This turns
//!   many WF queries into pWF queries.

use crate::ast::{Expr, LocationPath, Step};

/// Maximum nesting depth of `not(..)` in the expression (0 when no negation
/// occurs).  This is the quantity bounded in Theorems 5.9 and 6.3.
pub fn negation_depth(expr: &Expr) -> usize {
    match expr {
        Expr::Not(e) => 1 + negation_depth(e),
        Expr::Path(p) => p
            .steps
            .iter()
            .flat_map(|s| s.predicates.iter())
            .map(negation_depth)
            .max()
            .unwrap_or(0),
        Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b)
        | Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Relational {
            left: a, right: b, ..
        }
        | Expr::Arithmetic {
            left: a, right: b, ..
        }
        | Expr::NodeCompare {
            left: a, right: b, ..
        } => negation_depth(a).max(negation_depth(b)),
        Expr::Neg(e) => negation_depth(e),
        Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => 0,
        Expr::FunctionCall { args, .. } => args.iter().map(negation_depth).max().unwrap_or(0),
    }
}

/// Pushes negation inward using de Morgan's laws, double-negation
/// elimination and complementation of relational operators over numbers,
/// exactly as in the proof sketch of Theorem 5.9.  After the rewriting,
/// `not` occurs only directly in front of location paths (or of constructs
/// it cannot be pushed through, such as function calls).
pub fn push_negation_inward(expr: &Expr) -> Expr {
    rewrite(expr, false)
}

fn rewrite(expr: &Expr, negate: bool) -> Expr {
    match expr {
        Expr::Not(e) => rewrite(e, !negate),
        Expr::And(a, b) => {
            let (ra, rb) = (rewrite(a, negate), rewrite(b, negate));
            if negate {
                Expr::or(ra, rb)
            } else {
                Expr::and(ra, rb)
            }
        }
        Expr::Or(a, b) => {
            let (ra, rb) = (rewrite(a, negate), rewrite(b, negate));
            if negate {
                Expr::and(ra, rb)
            } else {
                Expr::or(ra, rb)
            }
        }
        Expr::Relational { op, left, right } => {
            // Only complement the operator when both operands are numbers
            // (Theorem 5.9: "Expressions of the form e1 RelOp e2 where both
            // operands are numbers can be replaced by e1 not(RelOp) e2").
            let l = rewrite_inner(left);
            let r = rewrite_inner(right);
            let numeric = matches!(l.expr_type(), crate::ast::ExprType::Number)
                && matches!(r.expr_type(), crate::ast::ExprType::Number);
            let new_op = if negate && numeric { op.negated() } else { *op };
            let e = Expr::Relational {
                op: new_op,
                left: Box::new(l),
                right: Box::new(r),
            };
            if negate && !numeric {
                Expr::not(e)
            } else {
                e
            }
        }
        // Atoms: negation (if any) stays in front of them.
        other => {
            let inner = rewrite_inner(other);
            if negate {
                Expr::not(inner)
            } else {
                inner
            }
        }
    }
}

/// Rewrites sub-expressions that are not on the boolean spine (predicates
/// inside paths, function arguments, arithmetic operands).
fn rewrite_inner(expr: &Expr) -> Expr {
    match expr {
        Expr::Path(p) => Expr::Path(LocationPath {
            absolute: p.absolute,
            steps: p
                .steps
                .iter()
                .map(|s| Step {
                    axis: s.axis,
                    node_test: s.node_test.clone(),
                    predicates: s.predicates.iter().map(|e| rewrite(e, false)).collect(),
                })
                .collect(),
        }),
        Expr::Union(a, b) => Expr::Union(Box::new(rewrite_inner(a)), Box::new(rewrite_inner(b))),
        Expr::Intersect(a, b) => {
            Expr::Intersect(Box::new(rewrite_inner(a)), Box::new(rewrite_inner(b)))
        }
        Expr::Except(a, b) => Expr::Except(Box::new(rewrite_inner(a)), Box::new(rewrite_inner(b))),
        // A node comparison is a boolean atom: negation cannot be pushed
        // through it, but its node-set operands may contain predicates.
        Expr::NodeCompare { op, left, right } => Expr::NodeCompare {
            op: *op,
            left: Box::new(rewrite_inner(left)),
            right: Box::new(rewrite_inner(right)),
        },
        Expr::Arithmetic { op, left, right } => Expr::Arithmetic {
            op: *op,
            left: Box::new(rewrite_inner(left)),
            right: Box::new(rewrite_inner(right)),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(rewrite_inner(e))),
        Expr::FunctionCall { name, args } => Expr::FunctionCall {
            name: name.clone(),
            args: args.iter().map(|a| rewrite(a, false)).collect(),
        },
        Expr::And(_, _) | Expr::Or(_, _) | Expr::Not(_) | Expr::Relational { .. } => {
            rewrite(expr, false)
        }
        Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => expr.clone(),
    }
}

/// Does the expression mention `position()` or `last()` anywhere?
fn uses_position_or_last(expr: &Expr) -> bool {
    let mut found = false;
    expr.visit(&mut |e| {
        if let Expr::FunctionCall { name, .. } = e {
            if name == "position" || name == "last" {
                found = true;
            }
        }
    });
    found
}

/// Applies Remark 5.2: merges iterated predicates `[e1]...[ek]` into a single
/// predicate `[e1 and ... and ek]` on every step whose predicates do not use
/// `position()` or `last()` (and are not plain numbers, which abbreviate
/// positional predicates).  Steps where the merge would change semantics are
/// left untouched.
pub fn expand_iterated_predicates(expr: &Expr) -> Expr {
    match expr {
        Expr::Path(p) => Expr::Path(LocationPath {
            absolute: p.absolute,
            steps: p.steps.iter().map(merge_step).collect(),
        }),
        Expr::Union(a, b) => Expr::Union(
            Box::new(expand_iterated_predicates(a)),
            Box::new(expand_iterated_predicates(b)),
        ),
        Expr::Intersect(a, b) => Expr::Intersect(
            Box::new(expand_iterated_predicates(a)),
            Box::new(expand_iterated_predicates(b)),
        ),
        Expr::Except(a, b) => Expr::Except(
            Box::new(expand_iterated_predicates(a)),
            Box::new(expand_iterated_predicates(b)),
        ),
        Expr::NodeCompare { op, left, right } => Expr::NodeCompare {
            op: *op,
            left: Box::new(expand_iterated_predicates(left)),
            right: Box::new(expand_iterated_predicates(right)),
        },
        Expr::Or(a, b) => Expr::or(expand_iterated_predicates(a), expand_iterated_predicates(b)),
        Expr::And(a, b) => Expr::and(expand_iterated_predicates(a), expand_iterated_predicates(b)),
        Expr::Not(e) => Expr::not(expand_iterated_predicates(e)),
        Expr::Relational { op, left, right } => Expr::Relational {
            op: *op,
            left: Box::new(expand_iterated_predicates(left)),
            right: Box::new(expand_iterated_predicates(right)),
        },
        Expr::Arithmetic { op, left, right } => Expr::Arithmetic {
            op: *op,
            left: Box::new(expand_iterated_predicates(left)),
            right: Box::new(expand_iterated_predicates(right)),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(expand_iterated_predicates(e))),
        Expr::FunctionCall { name, args } => Expr::FunctionCall {
            name: name.clone(),
            args: args.iter().map(expand_iterated_predicates).collect(),
        },
        Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => expr.clone(),
    }
}

fn merge_step(step: &Step) -> Step {
    let predicates: Vec<Expr> = step
        .predicates
        .iter()
        .map(expand_iterated_predicates)
        .collect();
    let mergeable = predicates.len() >= 2
        && predicates
            .iter()
            .all(|p| !uses_position_or_last(p) && !matches!(p, Expr::Number(_)));
    let predicates = if mergeable {
        let mut it = predicates.into_iter();
        let first = it.next().expect("len >= 2");
        vec![it.fold(first, Expr::and)]
    } else {
        predicates
    };
    Step {
        axis: step.axis,
        node_test: step.node_test.clone(),
        predicates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn parse(s: &str) -> Expr {
        parse_query(s).unwrap()
    }

    #[test]
    fn negation_depth_examples() {
        assert_eq!(negation_depth(&parse("child::a")), 0);
        assert_eq!(negation_depth(&parse("not(child::a)")), 1);
        assert_eq!(negation_depth(&parse("not(not(child::a))")), 2);
        assert_eq!(
            negation_depth(&parse("child::a[not(child::b[not(child::c)])]")),
            2
        );
        assert_eq!(negation_depth(&parse("not(child::a) and not(child::b)")), 1);
    }

    #[test]
    fn de_morgan_and() {
        let e = parse("not(child::a and child::b)");
        let rewritten = push_negation_inward(&e);
        assert_eq!(rewritten, parse("not(child::a) or not(child::b)"));
    }

    #[test]
    fn de_morgan_or_and_double_negation() {
        let e = parse("not(not(child::a or child::b))");
        let rewritten = push_negation_inward(&e);
        assert_eq!(rewritten, parse("child::a or child::b"));

        let e = parse("not(child::a or not(child::b))");
        let rewritten = push_negation_inward(&e);
        assert_eq!(rewritten, parse("not(child::a) and child::b"));
    }

    #[test]
    fn negated_numeric_relop_is_complemented() {
        let e = parse("not(position() = last())");
        let rewritten = push_negation_inward(&e);
        assert_eq!(rewritten, parse("position() != last()"));

        let e = parse("not(position() < 3)");
        assert_eq!(push_negation_inward(&e), parse("position() >= 3"));
    }

    #[test]
    fn negated_nodeset_relop_keeps_negation() {
        // not(child::a = 'x') must NOT become child::a != 'x' (different
        // semantics over node sets); the negation stays outside.
        let e = parse("not(child::a = 'x')");
        let rewritten = push_negation_inward(&e);
        assert_eq!(rewritten, parse("not(child::a = 'x')"));
    }

    #[test]
    fn negation_remaining_on_paths_only() {
        let e = parse("not((child::a and position() = 1) or not(child::b))");
        let rewritten = push_negation_inward(&e);
        // All remaining `not`s are directly over location paths.
        let mut ok = true;
        rewritten.visit(&mut |x| {
            if let Expr::Not(inner) = x {
                if !inner.is_path() {
                    ok = false;
                }
            }
        });
        assert!(ok, "rewritten: {rewritten}");
        assert_eq!(negation_depth(&rewritten), 1);
    }

    #[test]
    fn negation_inside_predicates_is_also_pushed() {
        let e = parse("child::a[not(child::b and child::c)]");
        let rewritten = push_negation_inward(&e);
        assert_eq!(rewritten, parse("child::a[not(child::b) or not(child::c)]"));
    }

    #[test]
    fn iterated_predicates_merge_when_safe() {
        let e = parse("child::a[child::b][child::c]");
        let merged = expand_iterated_predicates(&e);
        assert_eq!(merged, parse("child::a[child::b and child::c]"));
    }

    #[test]
    fn iterated_predicates_with_position_are_left_alone() {
        let e = parse("child::a[child::b][position() = 1]");
        assert_eq!(expand_iterated_predicates(&e), e);
        let e = parse("child::a[child::b][2]");
        assert_eq!(expand_iterated_predicates(&e), e);
    }

    #[test]
    fn merge_recurses_into_nested_paths() {
        let e = parse("child::a[child::b[child::x][child::y]][child::c]");
        let merged = expand_iterated_predicates(&e);
        assert_eq!(
            merged,
            parse("child::a[child::b[child::x and child::y] and child::c]")
        );
    }

    #[test]
    fn merged_queries_become_pwf() {
        use crate::fragment::{classify, Fragment};
        // Iterated predicates are allowed in Core XPath (Remark 5.2: the
        // restriction "plays no role" there) but forbidden in pWF.  Merging
        // turns this WF query into a pWF one.
        let e = parse("child::a[1 = 1][child::c]");
        assert_eq!(classify(&e).fragment, Fragment::WF);
        let merged = expand_iterated_predicates(&e);
        assert_eq!(classify(&merged).fragment, Fragment::PWF);
        // ... while purely structural iterated predicates are already
        // positive Core XPath before and after merging.
        let e = parse("child::a[child::b][child::c]");
        assert_eq!(classify(&e).fragment, Fragment::PositiveCoreXPath);
        let merged = expand_iterated_predicates(&e);
        assert_eq!(classify(&merged).fragment, Fragment::PositiveCoreXPath);
    }

    #[test]
    fn push_negation_preserves_other_structure() {
        let e = parse("count(child::a) = 2 and not(child::b)");
        let rewritten = push_negation_inward(&e);
        assert_eq!(rewritten, parse("count(child::a) = 2 and not(child::b)"));
    }
}
