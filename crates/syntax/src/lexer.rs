//! Tokenizer for XPath 1.0 expressions.
//!
//! Implements the lexical structure of XPath 1.0 §3.7 including the two
//! special disambiguation rules: a `*` (and the operator names `and`, `or`,
//! `div`, `mod`, `union`, `intersect`, `except`, `is`) is an *operator*
//! exactly when the preceding token is not itself an operator, `@`, `::`,
//! `(`, `[` or `,`.
//!
//! Beyond XPath 1.0 the lexer knows three extensions of the engine's query
//! language: variable references `$name`, the XPath 2.0 node-set operator
//! words (`union` as a synonym for `|`, plus `intersect` / `except`), and
//! the node comparisons `is`, `<<`, `>>`.

use std::fmt;

/// A single XPath token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Numeric literal (`12`, `3.5`, `.5`).
    Number(f64),
    /// String literal (`'abc'` or `"abc"`).
    Literal(String),
    /// An NCName/QName that is not an operator name in this position.
    Name(String),
    /// A variable reference `$name` (the `$` and the name lex as one token).
    Variable(String),
    Slash,
    DoubleSlash,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Pipe,
    Plus,
    Minus,
    /// `*` used as a wildcard node test.
    Star,
    /// `*` used as the multiplication operator.
    Multiply,
    Dot,
    DotDot,
    At,
    ColonColon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Div,
    Mod,
    /// The `intersect` node-set operator word.
    Intersect,
    /// The `except` node-set operator word.
    Except,
    /// The `is` node comparison word.
    Is,
    /// The `<<` (precedes in document order) node comparison.
    Precedes,
    /// The `>>` (follows in document order) node comparison.
    Follows,
}

impl Token {
    /// Is this token an operator in the sense of the XPath disambiguation
    /// rule (used to decide how to lex a following `*` or operator name)?
    fn forces_operand_next(&self) -> bool {
        matches!(
            self,
            Token::At
                | Token::ColonColon
                | Token::LParen
                | Token::LBracket
                | Token::Comma
                | Token::And
                | Token::Or
                | Token::Div
                | Token::Mod
                | Token::Multiply
                | Token::Slash
                | Token::DoubleSlash
                | Token::Pipe
                | Token::Plus
                | Token::Minus
                | Token::Eq
                | Token::Ne
                | Token::Lt
                | Token::Le
                | Token::Gt
                | Token::Ge
                | Token::Intersect
                | Token::Except
                | Token::Is
                | Token::Precedes
                | Token::Follows
        )
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Number(n) => write!(f, "{n}"),
            Token::Literal(s) => write!(f, "'{s}'"),
            Token::Name(s) => write!(f, "{s}"),
            Token::Slash => write!(f, "/"),
            Token::DoubleSlash => write!(f, "//"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Pipe => write!(f, "|"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Multiply => write!(f, "*"),
            Token::Dot => write!(f, "."),
            Token::DotDot => write!(f, ".."),
            Token::At => write!(f, "@"),
            Token::ColonColon => write!(f, "::"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Div => write!(f, "div"),
            Token::Mod => write!(f, "mod"),
            Token::Variable(s) => write!(f, "${s}"),
            Token::Intersect => write!(f, "intersect"),
            Token::Except => write!(f, "except"),
            Token::Is => write!(f, "is"),
            Token::Precedes => write!(f, "<<"),
            Token::Follows => write!(f, ">>"),
        }
    }
}

/// Lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes an XPath expression.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut tokens: Vec<Token> = Vec::new();

    let err = |pos: usize, msg: &str| LexError {
        offset: pos,
        message: msg.to_string(),
    };

    while pos < bytes.len() {
        let c = bytes[pos] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => pos += 1,
            '/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    tokens.push(Token::DoubleSlash);
                    pos += 2;
                } else {
                    tokens.push(Token::Slash);
                    pos += 1;
                }
            }
            '[' => {
                tokens.push(Token::LBracket);
                pos += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                pos += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                pos += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                pos += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                pos += 1;
            }
            '|' => {
                tokens.push(Token::Pipe);
                pos += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                pos += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                pos += 1;
            }
            '@' => {
                tokens.push(Token::At);
                pos += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                pos += 1;
            }
            '!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    pos += 2;
                } else {
                    return Err(err(pos, "expected '=' after '!'"));
                }
            }
            '<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    pos += 2;
                } else if bytes.get(pos + 1) == Some(&b'<') {
                    tokens.push(Token::Precedes);
                    pos += 2;
                } else {
                    tokens.push(Token::Lt);
                    pos += 1;
                }
            }
            '>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    pos += 2;
                } else if bytes.get(pos + 1) == Some(&b'>') {
                    tokens.push(Token::Follows);
                    pos += 2;
                } else {
                    tokens.push(Token::Gt);
                    pos += 1;
                }
            }
            '$' => {
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() {
                    let ch = bytes[end] as char;
                    if (end == start && (ch.is_ascii_alphabetic() || ch == '_'))
                        || (end > start
                            && (ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.')))
                    {
                        end += 1;
                    } else {
                        break;
                    }
                }
                if end == start {
                    return Err(err(pos, "expected a variable name after '$'"));
                }
                tokens.push(Token::Variable(input[start..end].to_string()));
                pos = end;
            }
            ':' => {
                if bytes.get(pos + 1) == Some(&b':') {
                    tokens.push(Token::ColonColon);
                    pos += 2;
                } else {
                    return Err(err(pos, "single ':' outside a QName is not supported"));
                }
            }
            '*' => {
                let operator_position = tokens
                    .last()
                    .map(|t| !t.forces_operand_next())
                    .unwrap_or(false);
                tokens.push(if operator_position {
                    Token::Multiply
                } else {
                    Token::Star
                });
                pos += 1;
            }
            '.' => {
                if bytes.get(pos + 1) == Some(&b'.') {
                    tokens.push(Token::DotDot);
                    pos += 2;
                } else if bytes
                    .get(pos + 1)
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(false)
                {
                    let (num, consumed) = lex_number(&input[pos..]);
                    tokens.push(Token::Number(num));
                    pos += consumed;
                } else {
                    tokens.push(Token::Dot);
                    pos += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = pos + 1;
                let rest = &input[start..];
                match rest.find(quote) {
                    Some(end) => {
                        tokens.push(Token::Literal(rest[..end].to_string()));
                        pos = start + end + 1;
                    }
                    None => return Err(err(pos, "unterminated string literal")),
                }
            }
            _ if c.is_ascii_digit() => {
                let (num, consumed) = lex_number(&input[pos..]);
                tokens.push(Token::Number(num));
                pos += consumed;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = pos;
                while pos < bytes.len() {
                    let ch = bytes[pos] as char;
                    if ch.is_ascii_alphanumeric() || matches!(ch, '_' | '-' | '.') {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                let name = &input[start..pos];
                let operator_position = tokens
                    .last()
                    .map(|t| !t.forces_operand_next())
                    .unwrap_or(false);
                let tok =
                    if operator_position {
                        match name {
                            "and" => Token::And,
                            "or" => Token::Or,
                            "div" => Token::Div,
                            "mod" => Token::Mod,
                            // `union` is a surface synonym for `|`.
                            "union" => Token::Pipe,
                            "intersect" => Token::Intersect,
                            "except" => Token::Except,
                            "is" => Token::Is,
                            _ => return Err(err(
                                start,
                                "expected an operator (and/or/div/mod/union/intersect/except/is) \
                                 in this position",
                            )),
                        }
                    } else {
                        Token::Name(name.to_string())
                    };
                tokens.push(tok);
            }
            _ => return Err(err(pos, "unexpected character")),
        }
    }
    Ok(tokens)
}

/// Lexes a number starting at the beginning of `s`; returns (value, bytes consumed).
fn lex_number(s: &str) -> (f64, usize) {
    let bytes = s.as_bytes();
    let mut end = 0;
    let mut seen_dot = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_ascii_digit() {
            end += 1;
        } else if c == '.' && !seen_dot {
            seen_dot = true;
            end += 1;
        } else {
            break;
        }
    }
    (s[..end].parse().unwrap_or(f64::NAN), end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_path() {
        let toks = tokenize("/descendant::a/child::b").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Slash,
                Token::Name("descendant".into()),
                Token::ColonColon,
                Token::Name("a".into()),
                Token::Slash,
                Token::Name("child".into()),
                Token::ColonColon,
                Token::Name("b".into()),
            ]
        );
    }

    #[test]
    fn star_disambiguation() {
        // leading * is a wildcard, * after a name is multiplication,
        // * after '::' is a wildcard
        let toks = tokenize("child::* [position() * 2 = 4]").unwrap();
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Multiply));

        let toks = tokenize("2 * 3").unwrap();
        assert_eq!(
            toks,
            vec![Token::Number(2.0), Token::Multiply, Token::Number(3.0)]
        );

        let toks = tokenize("*").unwrap();
        assert_eq!(toks, vec![Token::Star]);
    }

    #[test]
    fn operator_name_disambiguation() {
        let toks = tokenize("a and b or c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Name("a".into()),
                Token::And,
                Token::Name("b".into()),
                Token::Or,
                Token::Name("c".into()),
            ]
        );
        // After '(' the word "and" is a name, not an operator.
        let toks = tokenize("child::and").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Name("child".into()),
                Token::ColonColon,
                Token::Name("and".into())
            ]
        );
    }

    #[test]
    fn div_mod_after_operand() {
        let toks = tokenize("6 div 2 mod 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number(6.0),
                Token::Div,
                Token::Number(2.0),
                Token::Mod,
                Token::Number(2.0),
            ]
        );
    }

    #[test]
    fn numbers_and_decimal_forms() {
        let toks = tokenize("1 2.5 .75").unwrap();
        assert_eq!(
            toks,
            vec![Token::Number(1.0), Token::Number(2.5), Token::Number(0.75)]
        );
    }

    #[test]
    fn string_literals_both_quotes() {
        let toks = tokenize(r#"'abc' "d e f""#).unwrap();
        assert_eq!(
            toks,
            vec![Token::Literal("abc".into()), Token::Literal("d e f".into())]
        );
    }

    #[test]
    fn relational_operators() {
        let toks = tokenize("1 <= 2 != 3 >= 4 < 5 > 6").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Gt));
    }

    #[test]
    fn dots_and_abbreviations() {
        let toks = tokenize(".//a/../@id").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Dot,
                Token::DoubleSlash,
                Token::Name("a".into()),
                Token::Slash,
                Token::DotDot,
                Token::Slash,
                Token::At,
                Token::Name("id".into()),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a : b").is_err());
        assert!(tokenize("#").is_err());
        // two operands in a row where an operator is required
        assert!(tokenize("a b").is_err());
    }

    #[test]
    fn error_display() {
        let e = tokenize("'oops").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = tokenize("child :: a [ 1 ]").unwrap();
        let b = tokenize("child::a[1]").unwrap();
        assert_eq!(a, b);
    }
}
