//! Fragment classifier — Figure 1 of the paper.
//!
//! The paper organizes XPath into a lattice of fragments, each with a
//! different combined complexity:
//!
//! ```text
//!   PF                    NL-complete
//!   positive Core XPath   LOGCFL-complete
//!   Core XPath            P-complete
//!   pWF                   LOGCFL(-complete)
//!   WF                    P-complete (contains Core XPath)
//!   pXPath                LOGCFL-complete
//!   XPath                 P-complete
//! ```
//!
//! [`classify`] computes the *least* fragment of this lattice containing a
//! given query together with the complexity classification the paper assigns
//! to it, plus the syntactic features ([`QueryFeatures`]) that drove the
//! decision.  The membership tests follow Definitions 2.5, 2.6, 5.1 and 6.1
//! literally.

use crate::ast::{Expr, ExprType};
use xpeval_dom::Axis;

/// The XPath fragments of Figure 1, ordered from most to least restrictive
/// along the chain used for "least fragment" classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fragment {
    /// Location paths without conditions (Section 4).
    PF,
    /// Core XPath without negation (Theorem 4.1/4.2).
    PositiveCoreXPath,
    /// Definition 2.5.
    CoreXPath,
    /// "positive"/"parallel" Wadler fragment, Definition 5.1.
    PWF,
    /// The Wadler fragment, Definition 2.6.
    WF,
    /// "positive"/"parallel" XPath, Definition 6.1.
    PXPath,
    /// Full XPath 1.0.
    XPath,
}

impl Fragment {
    /// The combined-complexity classification the paper proves (or cites)
    /// for this fragment.
    pub fn complexity(self) -> &'static str {
        match self {
            Fragment::PF => "NL-complete (Theorem 4.3)",
            Fragment::PositiveCoreXPath => "LOGCFL-complete (Theorems 4.1/4.2)",
            Fragment::CoreXPath => "P-complete (Theorem 3.2)",
            Fragment::PWF => "LOGCFL-complete (Theorem 5.5)",
            Fragment::WF => "P-complete (contains Core XPath; in P by Prop. 2.7)",
            Fragment::PXPath => "LOGCFL-complete (Theorem 6.2)",
            Fragment::XPath => "P-complete (Prop. 2.7 + Theorem 3.2)",
        }
    }

    /// Is the fragment one of the highly parallelizable (NC²) ones?
    pub fn is_parallelizable(self) -> bool {
        matches!(
            self,
            Fragment::PF | Fragment::PositiveCoreXPath | Fragment::PWF | Fragment::PXPath
        )
    }

    /// Human readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Fragment::PF => "PF",
            Fragment::PositiveCoreXPath => "positive Core XPath",
            Fragment::CoreXPath => "Core XPath",
            Fragment::PWF => "pWF",
            Fragment::WF => "WF",
            Fragment::PXPath => "pXPath",
            Fragment::XPath => "XPath",
        }
    }

    /// All fragments in classification order.
    pub const ALL: [Fragment; 7] = [
        Fragment::PF,
        Fragment::PositiveCoreXPath,
        Fragment::CoreXPath,
        Fragment::PWF,
        Fragment::WF,
        Fragment::PXPath,
        Fragment::XPath,
    ];
}

impl std::fmt::Display for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Constant bounds used by the pWF/pXPath membership tests
/// (Definition 5.1(3) and Definition 6.1(4) require *some* constant bound;
/// the concrete value is a parameter of the classifier).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassifierLimits {
    /// Maximum nesting depth of arithmetic operators (and of `concat`).
    pub max_arith_depth: usize,
    /// Maximum arity of the `concat` function (Definition 6.1(4)).
    pub max_concat_arity: usize,
}

impl Default for ClassifierLimits {
    fn default() -> Self {
        ClassifierLimits {
            max_arith_depth: 3,
            max_concat_arity: 3,
        }
    }
}

/// Syntactic features of a query relevant to the fragment boundaries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryFeatures {
    /// Number of `not(..)` occurrences.
    pub negation_count: usize,
    /// Maximum nesting depth of `not(..)`.
    pub negation_depth: usize,
    /// Maximum length of a predicate sequence `[e1]...[ek]` on a single step.
    pub max_predicate_sequence: usize,
    /// Number of location steps.
    pub step_count: usize,
    /// Number of predicates.
    pub predicate_count: usize,
    /// `position()` or `last()` used.
    pub uses_position_or_last: bool,
    /// Relational operators used.
    pub uses_relational: bool,
    /// A relational operator has an operand of boolean type
    /// (forbidden in pXPath, Definition 6.1(3)).
    pub relational_on_boolean: bool,
    /// Arithmetic operators used.
    pub uses_arithmetic: bool,
    /// Maximum nesting depth of arithmetic operators / `concat`.
    pub arith_nesting_depth: usize,
    /// Uses the attribute axis (outside Core XPath's axis list).
    pub uses_attribute_axis: bool,
    /// String literals used.
    pub uses_string_literals: bool,
    /// Function names used (other than `not`, which is tracked separately).
    pub functions: Vec<String>,
    /// External variable names referenced (`$name`), deduplicated in first
    /// occurrence order.
    pub variables: Vec<String>,
    /// `intersect` or `except` used (the XPath 2.0 set operators; plain `|`
    /// union is not counted here because every fragment of Figure 1 already
    /// admits it).
    pub uses_set_operators: bool,
    /// `except` used — tracked separately because set difference carries an
    /// implicit complement and therefore leaves the positive (negation-free)
    /// fragments.
    pub uses_except: bool,
    /// A node comparison (`is`, `<<`, `>>`) used.
    pub uses_node_comparison: bool,
    /// Total AST size |Q|.
    pub size: usize,
}

/// Result of classification.
#[derive(Clone, Debug, PartialEq)]
pub struct FragmentReport {
    /// Least fragment of Figure 1 containing the query.
    pub fragment: Fragment,
    /// The paper's complexity classification for that fragment.
    pub complexity: &'static str,
    /// All fragments that contain the query.
    pub memberships: Vec<Fragment>,
    /// The features that were extracted.
    pub features: QueryFeatures,
}

/// Functions allowed in the Wadler fragment (besides the implicit `not`).
const WF_FUNCTIONS: &[&str] = &["position", "last"];

/// Functions forbidden in pXPath by Definition 6.1(2).
const PXPATH_FORBIDDEN_FUNCTIONS: &[&str] = &[
    "count",
    "sum",
    "string",
    "number",
    "local-name",
    "namespace-uri",
    "name",
    "string-length",
    "normalize-space",
];

/// Extracts the [`QueryFeatures`] of an expression.
pub fn features(expr: &Expr) -> QueryFeatures {
    let mut f = QueryFeatures {
        size: expr.size(),
        ..Default::default()
    };
    collect(expr, 0, &mut f);
    f.negation_depth = crate::normalize::negation_depth(expr);
    f.arith_nesting_depth = arith_depth(expr);
    f
}

fn collect(expr: &Expr, _depth: usize, f: &mut QueryFeatures) {
    match expr {
        Expr::Path(p) => {
            if p.absolute {
                // nothing fragment-relevant
            }
            for step in &p.steps {
                f.step_count += 1;
                if step.axis == Axis::Attribute {
                    f.uses_attribute_axis = true;
                }
                f.max_predicate_sequence = f.max_predicate_sequence.max(step.predicates.len());
                f.predicate_count += step.predicates.len();
                for pred in &step.predicates {
                    collect(pred, 0, f);
                }
            }
        }
        Expr::Union(a, b) | Expr::Or(a, b) | Expr::And(a, b) => {
            collect(a, 0, f);
            collect(b, 0, f);
        }
        Expr::Intersect(a, b) => {
            f.uses_set_operators = true;
            collect(a, 0, f);
            collect(b, 0, f);
        }
        Expr::Except(a, b) => {
            f.uses_set_operators = true;
            f.uses_except = true;
            collect(a, 0, f);
            collect(b, 0, f);
        }
        Expr::NodeCompare { left, right, .. } => {
            f.uses_node_comparison = true;
            collect(left, 0, f);
            collect(right, 0, f);
        }
        Expr::Variable(name) => {
            if !f.variables.contains(name) {
                f.variables.push(name.clone());
            }
        }
        Expr::Not(e) => {
            f.negation_count += 1;
            collect(e, 0, f);
        }
        Expr::Relational { left, right, .. } => {
            f.uses_relational = true;
            if left.expr_type() == ExprType::Boolean || right.expr_type() == ExprType::Boolean {
                f.relational_on_boolean = true;
            }
            collect(left, 0, f);
            collect(right, 0, f);
        }
        Expr::Arithmetic { left, right, .. } => {
            f.uses_arithmetic = true;
            collect(left, 0, f);
            collect(right, 0, f);
        }
        Expr::Neg(e) => {
            f.uses_arithmetic = true;
            collect(e, 0, f);
        }
        Expr::Number(_) => {}
        Expr::Literal(_) => f.uses_string_literals = true,
        Expr::FunctionCall { name, args } => {
            if name == "position" || name == "last" {
                f.uses_position_or_last = true;
            }
            if !f.functions.contains(name) {
                f.functions.push(name.clone());
            }
            for a in args {
                collect(a, 0, f);
            }
        }
    }
}

/// Maximum nesting depth of arithmetic operators and `concat` calls
/// (the quantity bounded by Definition 5.1(3) / 6.1(4)).
fn arith_depth(expr: &Expr) -> usize {
    match expr {
        Expr::Arithmetic { left, right, .. } => 1 + arith_depth(left).max(arith_depth(right)),
        Expr::Neg(e) => 1 + arith_depth(e),
        Expr::FunctionCall { name, args } if name == "concat" => {
            1 + args.iter().map(arith_depth).max().unwrap_or(0)
        }
        Expr::Path(p) => p
            .steps
            .iter()
            .flat_map(|s| s.predicates.iter())
            .map(arith_depth)
            .max()
            .unwrap_or(0),
        Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b)
        | Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::Relational {
            left: a, right: b, ..
        }
        | Expr::NodeCompare {
            left: a, right: b, ..
        } => arith_depth(a).max(arith_depth(b)),
        Expr::Not(e) => arith_depth(e),
        Expr::Number(_) | Expr::Literal(_) | Expr::Variable(_) => 0,
        Expr::FunctionCall { args, .. } => args.iter().map(arith_depth).max().unwrap_or(0),
    }
}

// ---------------------------------------------------------------------------
// Grammar membership tests (Definitions 2.5, 2.6, 5.1, 6.1)
// ---------------------------------------------------------------------------

/// Is `expr` a location path of the PF fragment (no conditions at all)?
fn is_pf(expr: &Expr) -> bool {
    match expr {
        Expr::Path(p) => p
            .steps
            .iter()
            .all(|s| s.predicates.is_empty() && s.axis != Axis::Attribute),
        Expr::Union(a, b) => is_pf(a) && is_pf(b),
        _ => false,
    }
}

/// Is `expr` a Core XPath location path ("locpath" of Definition 2.5,
/// extended with the set operators)?
///
/// `in_condition` distinguishes node-set position (the query result, or an
/// operand of a set operator) from condition position (inside a predicate).
/// `intersect`/`except` are admitted only in node-set position: there the
/// linear set-at-a-time algorithm of Theorem 3.1 answers them with one
/// bitset operation per occurrence, preserving the `O(|D|·|Q|)` bound,
/// whereas as a *condition* they would need a per-context-node join that the
/// inverse-axis `sat` pass cannot express.  A condition-position set
/// operator therefore pushes the query up to pWF/WF (decided by the
/// Singleton-Success machinery instead).
fn is_core_locpath(expr: &Expr, allow_negation: bool, in_condition: bool) -> bool {
    match expr {
        Expr::Path(p) => p.steps.iter().all(|s| {
            s.axis != Axis::Attribute
                && s.predicates
                    .iter()
                    .all(|e| is_core_bexpr(e, allow_negation))
        }),
        Expr::Union(a, b) => {
            is_core_locpath(a, allow_negation, in_condition)
                && is_core_locpath(b, allow_negation, in_condition)
        }
        // Intersection is monotone: it stays in the positive fragment.
        Expr::Intersect(a, b) => {
            !in_condition
                && is_core_locpath(a, allow_negation, in_condition)
                && is_core_locpath(b, allow_negation, in_condition)
        }
        // Difference carries an implicit complement: negation must be
        // admitted for it (Core XPath yes, positive Core XPath no).
        Expr::Except(a, b) => {
            !in_condition
                && allow_negation
                && is_core_locpath(a, allow_negation, in_condition)
                && is_core_locpath(b, allow_negation, in_condition)
        }
        _ => false,
    }
}

/// Is `expr` a Core XPath condition ("bexpr" of Definition 2.5)?
fn is_core_bexpr(expr: &Expr, allow_negation: bool) -> bool {
    match expr {
        Expr::And(a, b) | Expr::Or(a, b) => {
            is_core_bexpr(a, allow_negation) && is_core_bexpr(b, allow_negation)
        }
        Expr::Not(e) => allow_negation && is_core_bexpr(e, allow_negation),
        _ => is_core_locpath(expr, allow_negation, true),
    }
}

/// Is `expr` a WF "nexpr" (Definition 2.6)?
fn is_wf_nexpr(expr: &Expr) -> bool {
    match expr {
        Expr::Number(_) => true,
        Expr::FunctionCall { name, args } => {
            WF_FUNCTIONS.contains(&name.as_str()) && args.is_empty()
        }
        Expr::Arithmetic { left, right, .. } => is_wf_nexpr(left) && is_wf_nexpr(right),
        Expr::Neg(e) => is_wf_nexpr(e),
        _ => false,
    }
}

/// Is `expr` a WF "bexpr" (Definition 2.6)?
fn is_wf_bexpr(expr: &Expr, allow_negation: bool, iterated_ok: bool) -> bool {
    match expr {
        Expr::And(a, b) | Expr::Or(a, b) => {
            is_wf_bexpr(a, allow_negation, iterated_ok)
                && is_wf_bexpr(b, allow_negation, iterated_ok)
        }
        Expr::Not(e) => allow_negation && is_wf_bexpr(e, allow_negation, iterated_ok),
        Expr::Relational { left, right, .. } => is_wf_nexpr(left) && is_wf_nexpr(right),
        _ => is_wf_locpath(expr, allow_negation, iterated_ok),
    }
}

/// Is `expr` a WF location path?
fn is_wf_locpath(expr: &Expr, allow_negation: bool, iterated_ok: bool) -> bool {
    match expr {
        Expr::Path(p) => p.steps.iter().all(|s| {
            s.axis != Axis::Attribute
                && (iterated_ok || s.predicates.len() <= 1)
                && s.predicates
                    .iter()
                    .all(|e| is_wf_bexpr(e, allow_negation, iterated_ok))
        }),
        // The Singleton-Success machinery decides `intersect` membership as
        // a conjunction of memberships, so it is admitted wherever unions
        // are; `except` needs the complement of a membership decision, which
        // only the negation-bearing fragments admit.
        Expr::Union(a, b) | Expr::Intersect(a, b) => {
            is_wf_locpath(a, allow_negation, iterated_ok)
                && is_wf_locpath(b, allow_negation, iterated_ok)
        }
        Expr::Except(a, b) => {
            allow_negation
                && is_wf_locpath(a, allow_negation, iterated_ok)
                && is_wf_locpath(b, allow_negation, iterated_ok)
        }
        _ => false,
    }
}

/// Is `expr` a WF expression ("expr" of Definition 2.6: locpath | bexpr | nexpr)?
fn is_wf(expr: &Expr, allow_negation: bool, iterated_ok: bool) -> bool {
    is_wf_locpath(expr, allow_negation, iterated_ok)
        || is_wf_bexpr(expr, allow_negation, iterated_ok)
        || is_wf_nexpr(expr)
}

/// Is `expr` in pWF (Definition 5.1)?
fn is_pwf(expr: &Expr, limits: &ClassifierLimits) -> bool {
    is_wf(expr, false, false) && arith_depth(expr) <= limits.max_arith_depth
}

/// Is `expr` in pXPath (Definition 6.1)?
fn is_pxpath(expr: &Expr, limits: &ClassifierLimits) -> bool {
    let f = features(expr);
    if f.negation_count > 0 {
        return false; // restriction 2 (the not-function)
    }
    if f.max_predicate_sequence >= 2 {
        return false; // restriction 1 (iterated predicates)
    }
    if f.relational_on_boolean {
        return false; // restriction 3
    }
    if f.uses_except {
        return false; // `except` is an implicit negation (restriction 2)
    }
    if f.arith_nesting_depth > limits.max_arith_depth {
        return false; // restriction 4 (bounded arithmetic / concat nesting)
    }
    let mut ok = true;
    expr.visit(&mut |e| {
        if let Expr::FunctionCall { name, args } = e {
            if PXPATH_FORBIDDEN_FUNCTIONS.contains(&name.as_str()) {
                ok = false; // restriction 2 (forbidden functions)
            }
            if name == "concat" && args.len() > limits.max_concat_arity {
                ok = false; // restriction 4 (concat arity)
            }
        }
    });
    ok
}

/// Membership test of a query in a given fragment.
pub fn is_in_fragment(expr: &Expr, fragment: Fragment, limits: &ClassifierLimits) -> bool {
    match fragment {
        Fragment::PF => is_pf(expr),
        Fragment::PositiveCoreXPath => {
            is_core_locpath(expr, false, false) || is_core_bexpr(expr, false)
        }
        Fragment::CoreXPath => is_core_locpath(expr, true, false) || is_core_bexpr(expr, true),
        Fragment::PWF => is_pwf(expr, limits),
        Fragment::WF => is_wf(expr, true, true),
        Fragment::PXPath => is_pxpath(expr, limits),
        Fragment::XPath => true,
    }
}

/// Classifies a query with the default [`ClassifierLimits`].
pub fn classify(expr: &Expr) -> FragmentReport {
    classify_with_limits(expr, &ClassifierLimits::default())
}

/// Classifies a query: least containing fragment, its complexity, all
/// memberships and the extracted features.
pub fn classify_with_limits(expr: &Expr, limits: &ClassifierLimits) -> FragmentReport {
    let feats = features(expr);
    let memberships: Vec<Fragment> = Fragment::ALL
        .into_iter()
        .filter(|&fr| is_in_fragment(expr, fr, limits))
        .collect();
    let fragment = memberships[0];
    FragmentReport {
        fragment,
        complexity: fragment.complexity(),
        memberships,
        features: feats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn frag(s: &str) -> Fragment {
        classify(&parse_query(s).unwrap()).fragment
    }

    #[test]
    fn pf_queries() {
        assert_eq!(frag("/descendant::a/child::b"), Fragment::PF);
        assert_eq!(frag("child::a/parent::b | descendant::c"), Fragment::PF);
        assert_eq!(frag("/"), Fragment::PF);
        // The reachability queries of Theorem 4.3 are PF.
        assert_eq!(
            frag("/descendant::v1/child::c/descendant::e/parent::*/child::c"),
            Fragment::PF
        );
    }

    #[test]
    fn positive_core_queries() {
        assert_eq!(
            frag("/descendant::a/child::b[descendant::c]"),
            Fragment::PositiveCoreXPath
        );
        assert_eq!(
            frag("child::a[child::b and child::c or descendant::d]"),
            Fragment::PositiveCoreXPath
        );
    }

    #[test]
    fn core_xpath_queries() {
        // The paper's Section 2.2 example (contains negation).
        assert_eq!(
            frag("/descendant::a/child::b[descendant::c and not(following-sibling::d)]"),
            Fragment::CoreXPath
        );
        assert_eq!(frag("child::a[not(child::b)]"), Fragment::CoreXPath);
    }

    #[test]
    fn pwf_queries() {
        // Section 2.2's position/last example is pWF (no negation, single predicate).
        assert_eq!(frag("child::a[position() + 1 = last()]"), Fragment::PWF);
        assert_eq!(frag("child::a[position() = 3]"), Fragment::PWF);
        assert_eq!(
            frag("child::a[child::b and position() < last()]"),
            Fragment::PWF
        );
    }

    #[test]
    fn wf_queries() {
        // Negation plus arithmetic → WF but not Core XPath, not pWF.
        assert_eq!(frag("child::a[not(position() = last())]"), Fragment::WF);
        // Iterated predicates with arithmetic → WF (pWF forbids them).
        assert_eq!(frag("child::a[child::b][position() = 1]"), Fragment::WF);
    }

    #[test]
    fn pxpath_queries() {
        // Attribute axis and string functions are beyond WF but inside pXPath.
        assert_eq!(frag("//book[@year = 2003]/title"), Fragment::PXPath);
        assert_eq!(frag("child::a[contains('abc', 'b')]"), Fragment::PXPath);
        assert_eq!(frag("child::a[concat('x', 'y') = 'xy']"), Fragment::PXPath);
    }

    #[test]
    fn full_xpath_queries() {
        // count() is forbidden in pXPath (Definition 6.1(2)).
        assert_eq!(frag("child::a[count(child::b) = 2]"), Fragment::XPath);
        // Relational operator on a boolean operand (Definition 6.1(3)).
        assert_eq!(
            frag("child::a[(child::b and child::c) = true()]"),
            Fragment::XPath
        );
        // Negation over an attribute-axis query is not WF either.
        assert_eq!(frag("//a[not(@id)]"), Fragment::XPath);
        // sum() / string-length() are forbidden.
        assert_eq!(frag("child::a[sum(child::b) > 3]"), Fragment::XPath);
        assert_eq!(frag("child::a[string-length('x') = 1]"), Fragment::XPath);
    }

    #[test]
    fn deep_arithmetic_leaves_pwf() {
        // Nesting depth above the default limit of 3 pushes the query out of
        // pWF/pXPath (Definition 5.1(3) / 6.1(4)).
        let q = parse_query("child::a[position() + 1 + 1 + 1 + 1 + 1 = last()]").unwrap();
        let report = classify(&q);
        assert_eq!(report.fragment, Fragment::WF);
        let relaxed = classify_with_limits(
            &q,
            &ClassifierLimits {
                max_arith_depth: 10,
                max_concat_arity: 3,
            },
        );
        assert_eq!(relaxed.fragment, Fragment::PWF);
    }

    #[test]
    fn concat_arity_limit() {
        let q = parse_query("child::a[concat('a','b','c','d','e') = 'abcde']").unwrap();
        assert_eq!(classify(&q).fragment, Fragment::XPath);
    }

    #[test]
    fn memberships_follow_figure_1_inclusions() {
        // Every PF query is also a member of every larger fragment on its
        // chain (Figure 1 inclusions).
        let q = parse_query("/descendant::a/child::b").unwrap();
        let report = classify(&q);
        for fr in [
            Fragment::PF,
            Fragment::PositiveCoreXPath,
            Fragment::CoreXPath,
            Fragment::PWF,
            Fragment::WF,
            Fragment::PXPath,
            Fragment::XPath,
        ] {
            assert!(report.memberships.contains(&fr), "missing {fr}");
        }
        // A positive Core XPath query is in pWF (Remark 5.2) and pXPath.
        let q = parse_query("child::a[child::b]").unwrap();
        let ms = classify(&q).memberships;
        assert!(ms.contains(&Fragment::PWF));
        assert!(ms.contains(&Fragment::PXPath));
        assert!(ms.contains(&Fragment::CoreXPath));
        // A Core XPath query with negation is in WF and XPath but not pWF/pXPath.
        let q = parse_query("child::a[not(child::b)]").unwrap();
        let ms = classify(&q).memberships;
        assert!(ms.contains(&Fragment::WF));
        assert!(!ms.contains(&Fragment::PWF));
        assert!(!ms.contains(&Fragment::PXPath));
    }

    #[test]
    fn complexity_strings() {
        assert!(Fragment::PF.complexity().contains("NL"));
        assert!(Fragment::CoreXPath.complexity().contains("P-complete"));
        assert!(Fragment::PWF.complexity().contains("LOGCFL"));
        assert!(Fragment::PXPath.complexity().contains("LOGCFL"));
        assert!(Fragment::PositiveCoreXPath.is_parallelizable());
        assert!(!Fragment::CoreXPath.is_parallelizable());
        assert!(!Fragment::XPath.is_parallelizable());
    }

    #[test]
    fn features_extraction() {
        let q = parse_query(
            "/descendant::a/child::b[descendant::c and not(following-sibling::d)][position() = 1]",
        )
        .unwrap();
        let f = features(&q);
        assert_eq!(f.negation_count, 1);
        assert_eq!(f.max_predicate_sequence, 2);
        assert!(f.uses_position_or_last);
        assert!(f.uses_relational);
        assert!(!f.uses_arithmetic);
        assert!(!f.uses_attribute_axis);
        assert_eq!(f.step_count, 4); // a, b, c, d
        assert!(f.size > 0);
    }

    #[test]
    fn nested_negation_depth() {
        let q = parse_query("child::a[not(child::b[not(child::c)])]").unwrap();
        let f = features(&q);
        assert_eq!(f.negation_count, 2);
        assert_eq!(f.negation_depth, 2);
    }

    #[test]
    fn set_operators_classify_by_position_and_negation() {
        // Node-set-position intersect is monotone: the linear bitset pass
        // answers it, so it stays in the positive core fragment.
        assert_eq!(frag("//a intersect //b"), Fragment::PositiveCoreXPath);
        // `union` is a surface synonym for `|` and changes nothing.
        assert_eq!(frag("//a union //b"), Fragment::PF);
        // except carries an implicit complement: Core XPath at best, and it
        // never enters the positive fragments or pXPath.
        assert_eq!(frag("//a except //b"), Fragment::CoreXPath);
        let ms = classify(&parse_query("//a except //b").unwrap()).memberships;
        assert!(!ms.contains(&Fragment::PWF));
        assert!(!ms.contains(&Fragment::PXPath));
        // Condition-position set operators need a per-context-node join the
        // inverse-axis satisfaction pass cannot express: out of Core, into pWF.
        assert_eq!(frag("//a[child::b intersect child::c]"), Fragment::PWF);
        assert_eq!(frag("//a[child::b except child::c]"), Fragment::WF);
    }

    #[test]
    fn variables_and_node_comparisons_are_pxpath() {
        assert_eq!(frag("//row[@limit = $x]"), Fragment::PXPath);
        assert_eq!(frag("$v"), Fragment::PXPath);
        assert_eq!(frag("//a is /child::b"), Fragment::PXPath);
        assert_eq!(frag("//a << //b"), Fragment::PXPath);
        assert_eq!(frag("//a >> //b"), Fragment::PXPath);
        // Negation over a variable comparison leaves pXPath entirely.
        assert_eq!(frag("//a[not(@id = $x)]"), Fragment::XPath);
        let f = features(&parse_query("//a[@x = $p or @y = $q or @z = $p]").unwrap());
        assert_eq!(f.variables, vec!["p".to_string(), "q".to_string()]);
        assert!(!f.uses_set_operators);
        let f = features(&parse_query("//a except //b").unwrap());
        assert!(f.uses_set_operators);
        assert!(f.uses_except);
        let f = features(&parse_query("//a is //b").unwrap());
        assert!(f.uses_node_comparison);
    }

    #[test]
    fn bare_bexpr_classifies() {
        // Condition expressions (used by the reductions) classify too.
        assert_eq!(frag("child::a and child::b"), Fragment::PositiveCoreXPath);
        assert_eq!(frag("not(child::a)"), Fragment::CoreXPath);
        assert_eq!(frag("position() = last()"), Fragment::PWF);
        assert_eq!(frag("2 + 2"), Fragment::PWF);
    }
}
