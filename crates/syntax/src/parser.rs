//! Recursive-descent parser for XPath 1.0 expressions.
//!
//! The grammar follows the operator precedence of the XPath 1.0
//! recommendation (§3.1–3.5):
//!
//! ```text
//! Expr        ::= OrExpr
//! OrExpr      ::= AndExpr ('or' AndExpr)*
//! AndExpr     ::= EqualityExpr ('and' EqualityExpr)*
//! EqualityExpr::= RelationalExpr (('='|'!='|'is') RelationalExpr)*
//! RelationalExpr ::= AdditiveExpr (('<'|'<='|'>'|'>='|'<<'|'>>') AdditiveExpr)*
//! AdditiveExpr::= MultiplicativeExpr (('+'|'-') MultiplicativeExpr)*
//! MultiplicativeExpr ::= UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
//! UnaryExpr   ::= '-' UnaryExpr | UnionExpr
//! UnionExpr   ::= IntersectExceptExpr (('|'|'union') IntersectExceptExpr)*
//! IntersectExceptExpr ::= PathExpr (('intersect'|'except') PathExpr)*
//! PathExpr    ::= LocationPath | PrimaryExpr
//! PrimaryExpr ::= '(' Expr ')' | Literal | Number | VariableReference
//!               | FunctionCall
//! ```
//!
//! The set operators `union`/`intersect`/`except`, the node comparisons
//! `is`/`<<`/`>>` and variable references `$name` follow XPath 2.0 surface
//! syntax: `union` is a synonym for `|`, and `intersect`/`except` bind
//! tighter than union.  Node comparisons require node-set-typed operands
//! and do not chain (`a is b is c` is rejected at parse time because the
//! left operand of the second `is` is boolean-typed).
//!
//! Abbreviated location-path syntax is expanded during parsing exactly as
//! the recommendation prescribes: `//` becomes `/descendant-or-self::node()/`,
//! `.` becomes `self::node()`, `..` becomes `parent::node()` and `@n` becomes
//! `attribute::n`.  Calls `not(e)` are represented as [`Expr::Not`].

use crate::ast::{ArithOp, Expr, ExprType, LocationPath, NodeCompOp, RelOp, Step};
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;
use xpeval_dom::{Axis, NodeTest};

/// Error raised by [`parse_query`].
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// Lexical error.
    Lex(LexError),
    /// Syntactic error with a human-readable description and the index of
    /// the offending token.
    Syntax { token_index: usize, message: String },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax {
                token_index,
                message,
            } => {
                write!(f, "parse error at token {token_index}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses an XPath 1.0 expression into an [`Expr`].
///
/// ```
/// use xpeval_syntax::parse_query;
/// let q = parse_query("//book[@year = 2003]/title").unwrap();
/// assert!(q.is_path());
/// ```
pub fn parse_query(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing tokens"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: &str) -> ParseError {
        ParseError::Syntax {
            token_index: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{expected}'")))
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat(&Token::Or) {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_equality()?;
        while self.eat(&Token::And) {
            let right = self.parse_equality()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_relational()?;
        loop {
            match self.peek() {
                Some(Token::Eq) => {
                    self.pos += 1;
                    let right = self.parse_relational()?;
                    left = Expr::relational(RelOp::Eq, left, right);
                }
                Some(Token::Ne) => {
                    self.pos += 1;
                    let right = self.parse_relational()?;
                    left = Expr::relational(RelOp::Ne, left, right);
                }
                Some(Token::Is) => {
                    self.pos += 1;
                    let right = self.parse_relational()?;
                    left = self.node_compare(NodeCompOp::Is, left, right)?;
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_additive()?;
        loop {
            let rel = match self.peek() {
                Some(Token::Lt) => Some(RelOp::Lt),
                Some(Token::Le) => Some(RelOp::Le),
                Some(Token::Gt) => Some(RelOp::Gt),
                Some(Token::Ge) => Some(RelOp::Ge),
                _ => None,
            };
            if let Some(op) = rel {
                self.pos += 1;
                let right = self.parse_additive()?;
                left = Expr::relational(op, left, right);
                continue;
            }
            let node = match self.peek() {
                Some(Token::Precedes) => Some(NodeCompOp::Precedes),
                Some(Token::Follows) => Some(NodeCompOp::Follows),
                _ => None,
            };
            match node {
                Some(op) => {
                    self.pos += 1;
                    let right = self.parse_additive()?;
                    left = self.node_compare(op, left, right)?;
                }
                None => break,
            }
        }
        Ok(left)
    }

    /// Builds a node comparison, rejecting operands that are not node-set
    /// typed.  This also prevents chaining: the result of a comparison is
    /// boolean, so it can never feed another comparison.
    fn node_compare(&self, op: NodeCompOp, left: Expr, right: Expr) -> Result<Expr, ParseError> {
        for side in [&left, &right] {
            if side.expr_type() != ExprType::NodeSet {
                return Err(self.err(&format!(
                    "node comparison '{}' requires node-set operands, found '{side}'",
                    op.symbol()
                )));
            }
        }
        Ok(Expr::node_compare(op, left, right))
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::arithmetic(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Multiply) => ArithOp::Mul,
                Some(Token::Div) => ArithOp::Div,
                Some(Token::Mod) => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::arithmetic(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            let inner = self.parse_unary()?;
            Ok(Expr::Neg(Box::new(inner)))
        } else {
            self.parse_union()
        }
    }

    fn parse_union(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_intersect_except()?;
        while self.eat(&Token::Pipe) {
            let right = self.parse_intersect_except()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// `intersect` and `except` bind tighter than `|`/`union`, matching the
    /// XPath 2.0 operator table.
    fn parse_intersect_except(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_path_expr()?;
        loop {
            let except = match self.peek() {
                Some(Token::Intersect) => false,
                Some(Token::Except) => true,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_path_expr()?;
            for side in [&left, &right] {
                if side.expr_type() != ExprType::NodeSet {
                    return Err(self.err(&format!(
                        "'{}' requires node-set operands, found '{side}'",
                        if except { "except" } else { "intersect" }
                    )));
                }
            }
            left = if except {
                Expr::except(left, right)
            } else {
                Expr::intersect(left, right)
            };
        }
        Ok(left)
    }

    /// Is the upcoming token sequence the start of a location path (as
    /// opposed to a primary expression)?
    fn at_location_path(&self) -> bool {
        match self.peek() {
            Some(Token::Slash)
            | Some(Token::DoubleSlash)
            | Some(Token::Dot)
            | Some(Token::DotDot)
            | Some(Token::At)
            | Some(Token::Star) => true,
            Some(Token::Name(name)) => {
                // A name starts a location path unless it is a function call
                // (name followed by '(') that is not a node-type test.
                if self.peek2() == Some(&Token::LParen) {
                    is_node_type(name)
                } else {
                    true
                }
            }
            _ => false,
        }
    }

    fn parse_path_expr(&mut self) -> Result<Expr, ParseError> {
        if self.at_location_path() {
            let path = self.parse_location_path()?;
            Ok(Expr::Path(path))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Literal(s)) => Ok(Expr::Literal(s)),
            Some(Token::Variable(name)) => Ok(Expr::Variable(name)),
            Some(Token::LParen) => {
                let e = self.parse_or()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Name(name)) => {
                self.expect(&Token::LParen)?;
                let mut args = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    loop {
                        args.push(self.parse_or()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                if name == "not" {
                    if args.len() != 1 {
                        return Err(self.err("not() takes exactly one argument"));
                    }
                    Ok(Expr::Not(Box::new(args.into_iter().next().unwrap())))
                } else {
                    Ok(Expr::FunctionCall { name, args })
                }
            }
            Some(other) => Err(ParseError::Syntax {
                token_index: self.pos - 1,
                message: format!("unexpected token '{other}'"),
            }),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_location_path(&mut self) -> Result<LocationPath, ParseError> {
        let mut steps: Vec<Step> = Vec::new();
        let absolute = match self.peek() {
            Some(Token::Slash) => {
                self.pos += 1;
                true
            }
            Some(Token::DoubleSlash) => {
                self.pos += 1;
                steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode));
                true
            }
            _ => false,
        };

        // `/` on its own selects the root.
        if absolute && !self.at_step_start() {
            if steps.is_empty() {
                return Ok(LocationPath::absolute(steps));
            }
            return Err(self.err("expected a location step after '//'"));
        }

        loop {
            steps.push(self.parse_step()?);
            match self.peek() {
                Some(Token::Slash) => {
                    self.pos += 1;
                }
                Some(Token::DoubleSlash) => {
                    self.pos += 1;
                    steps.push(Step::new(Axis::DescendantOrSelf, NodeTest::AnyNode));
                }
                _ => break,
            }
        }
        Ok(LocationPath { absolute, steps })
    }

    fn at_step_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Dot)
                | Some(Token::DotDot)
                | Some(Token::At)
                | Some(Token::Star)
                | Some(Token::Name(_))
        )
    }

    fn parse_step(&mut self) -> Result<Step, ParseError> {
        // Abbreviations first.
        if self.eat(&Token::Dot) {
            return Ok(Step::new(Axis::SelfAxis, NodeTest::AnyNode));
        }
        if self.eat(&Token::DotDot) {
            return Ok(Step::new(Axis::Parent, NodeTest::AnyNode));
        }

        let axis = if self.eat(&Token::At) {
            Axis::Attribute
        } else if let (Some(Token::Name(name)), Some(Token::ColonColon)) =
            (self.peek(), self.peek2())
        {
            let axis =
                Axis::from_name(name).ok_or_else(|| self.err(&format!("unknown axis '{name}'")))?;
            self.pos += 2;
            axis
        } else {
            Axis::Child
        };

        let node_test = self.parse_node_test()?;
        let mut predicates = Vec::new();
        while self.eat(&Token::LBracket) {
            let pred = self.parse_or()?;
            self.expect(&Token::RBracket)?;
            predicates.push(pred);
        }
        Ok(Step {
            axis,
            node_test,
            predicates,
        })
    }

    fn parse_node_test(&mut self) -> Result<NodeTest, ParseError> {
        match self.bump() {
            Some(Token::Star) => Ok(NodeTest::Star),
            Some(Token::Name(name)) => {
                if self.peek() == Some(&Token::LParen) && is_node_type(&name) {
                    self.pos += 1;
                    self.expect(&Token::RParen)?;
                    match name.as_str() {
                        "node" => Ok(NodeTest::AnyNode),
                        "text" => Ok(NodeTest::Text),
                        // comment() / processing-instruction() match nothing in
                        // our data model; map them to text() matching nothing is
                        // wrong, so reject explicitly.
                        other => Err(self.err(&format!("unsupported node type test '{other}()'"))),
                    }
                } else {
                    Ok(NodeTest::Name(name))
                }
            }
            Some(other) => Err(ParseError::Syntax {
                token_index: self.pos - 1,
                message: format!("expected a node test, found '{other}'"),
            }),
            None => Err(self.err("expected a node test, found end of input")),
        }
    }
}

fn is_node_type(name: &str) -> bool {
    matches!(name, "node" | "text" | "comment" | "processing-instruction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Expr {
        parse_query(s).unwrap_or_else(|e| panic!("failed to parse {s:?}: {e}"))
    }

    #[test]
    fn parses_paper_example_query() {
        // The running example from Section 2.2 of the paper.
        let q = parse("/descendant::a/child::b[descendant::c and not(following-sibling::d)]");
        let path = q.as_path().expect("a path");
        assert!(path.absolute);
        assert_eq!(path.steps.len(), 2);
        assert_eq!(path.steps[0].axis, Axis::Descendant);
        assert_eq!(path.steps[0].node_test, NodeTest::name("a"));
        assert_eq!(path.steps[1].predicates.len(), 1);
        match &path.steps[1].predicates[0] {
            Expr::And(l, r) => {
                assert!(l.is_path());
                assert!(matches!(**r, Expr::Not(_)));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parses_wf_position_example() {
        // child::a[position() + 1 = last()] from Section 2.2.
        let q = parse("child::a[position() + 1 = last()]");
        let path = q.as_path().unwrap();
        assert!(!path.absolute);
        let pred = &path.steps[0].predicates[0];
        match pred {
            Expr::Relational {
                op: RelOp::Eq,
                left,
                right,
            } => {
                assert!(matches!(
                    **left,
                    Expr::Arithmetic {
                        op: ArithOp::Add,
                        ..
                    }
                ));
                assert!(matches!(**right, Expr::FunctionCall { ref name, .. } if name == "last"));
            }
            other => panic!("expected relational, got {other:?}"),
        }
    }

    #[test]
    fn abbreviated_syntax_expansion() {
        let q = parse("//book/.././@id");
        let path = q.as_path().unwrap();
        assert!(path.absolute);
        let axes: Vec<Axis> = path.steps.iter().map(|s| s.axis).collect();
        assert_eq!(
            axes,
            vec![
                Axis::DescendantOrSelf,
                Axis::Child,
                Axis::Parent,
                Axis::SelfAxis,
                Axis::Attribute
            ]
        );
        assert_eq!(path.steps[0].node_test, NodeTest::AnyNode);
        assert_eq!(path.steps[4].node_test, NodeTest::name("id"));
    }

    #[test]
    fn root_only_path() {
        let q = parse("/");
        let path = q.as_path().unwrap();
        assert!(path.absolute);
        assert!(path.steps.is_empty());
    }

    #[test]
    fn default_axis_is_child() {
        let q = parse("a/b/c");
        let path = q.as_path().unwrap();
        assert!(!path.absolute);
        assert!(path.steps.iter().all(|s| s.axis == Axis::Child));
    }

    #[test]
    fn double_slash_in_the_middle() {
        let q = parse("a//b");
        let path = q.as_path().unwrap();
        assert_eq!(path.steps.len(), 3);
        assert_eq!(path.steps[1].axis, Axis::DescendantOrSelf);
        assert_eq!(path.steps[1].node_test, NodeTest::AnyNode);
    }

    #[test]
    fn union_and_precedence() {
        let q = parse("a | b | c");
        assert!(matches!(q, Expr::Union(_, _)));
        // 'or' binds weaker than 'and'
        let q = parse("a or b and c");
        match q {
            Expr::Or(_, rhs) => assert!(matches!(*rhs, Expr::And(_, _))),
            other => panic!("expected Or at top, got {other:?}"),
        }
        // relational binds tighter than and
        let q = parse("1 = 2 and 3 < 4");
        assert!(matches!(q, Expr::And(_, _)));
    }

    #[test]
    fn arithmetic_precedence_and_unary_minus() {
        let q = parse("1 + 2 * 3");
        match q {
            Expr::Arithmetic {
                op: ArithOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    *right,
                    Expr::Arithmetic {
                        op: ArithOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
        let q = parse("-1 + 2");
        assert!(matches!(
            q,
            Expr::Arithmetic {
                op: ArithOp::Add,
                ..
            }
        ));
        let q = parse("- position()");
        assert!(matches!(q, Expr::Neg(_)));
        let q = parse("6 div 2 mod 2");
        assert!(matches!(
            q,
            Expr::Arithmetic {
                op: ArithOp::Mod,
                ..
            }
        ));
    }

    #[test]
    fn not_becomes_dedicated_node() {
        let q = parse("not(child::a)");
        assert!(matches!(q, Expr::Not(_)));
        let q = parse("not(not(child::a))");
        match q {
            Expr::Not(inner) => assert!(matches!(*inner, Expr::Not(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_calls() {
        let q = parse("count(//a) > 2");
        match q {
            Expr::Relational {
                op: RelOp::Gt,
                left,
                ..
            } => match *left {
                Expr::FunctionCall { ref name, ref args } => {
                    assert_eq!(name, "count");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        let q = parse("concat('a', 'b', 'c')");
        match q {
            Expr::FunctionCall { name, args } => {
                assert_eq!(name, "concat");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        let q = parse("true()");
        assert!(matches!(q, Expr::FunctionCall { ref name, .. } if name == "true"));
    }

    #[test]
    fn node_type_tests() {
        let q = parse("child::node()");
        assert_eq!(q.as_path().unwrap().steps[0].node_test, NodeTest::AnyNode);
        let q = parse("child::text()");
        assert_eq!(q.as_path().unwrap().steps[0].node_test, NodeTest::Text);
        let q = parse("text()");
        assert_eq!(q.as_path().unwrap().steps[0].node_test, NodeTest::Text);
    }

    #[test]
    fn iterated_predicates_are_preserved() {
        let q = parse("child::a[child::b][position() = 1]");
        let path = q.as_path().unwrap();
        assert_eq!(path.steps[0].predicates.len(), 2);
    }

    #[test]
    fn numeric_predicate_abbreviation_parses_as_number() {
        let q = parse("child::a[3]");
        let path = q.as_path().unwrap();
        assert_eq!(path.steps[0].predicates[0], Expr::Number(3.0));
    }

    #[test]
    fn every_core_axis_parses() {
        for axis in Axis::CORE {
            let src = format!("{}::x", axis.name());
            let q = parse(&src);
            assert_eq!(q.as_path().unwrap().steps[0].axis, axis, "{src}");
        }
    }

    #[test]
    fn parenthesized_expressions() {
        let q = parse("(1 + 2) * 3");
        assert!(matches!(
            q,
            Expr::Arithmetic {
                op: ArithOp::Mul,
                ..
            }
        ));
        let q = parse("(child::a or child::b) and child::c");
        assert!(matches!(q, Expr::And(_, _)));
    }

    #[test]
    fn set_operators_and_precedence() {
        // intersect/except bind tighter than union: `a | b intersect c`
        // parses as `a | (b intersect c)`.
        let q = parse("child::a | child::b intersect child::c");
        match q {
            Expr::Union(_, rhs) => assert!(matches!(*rhs, Expr::Intersect(_, _))),
            other => panic!("expected Union at top, got {other:?}"),
        }
        // `union` is a synonym for `|`.
        let q = parse("child::a union child::b");
        assert!(matches!(q, Expr::Union(_, _)));
        // intersect/except are left-associative at the same level.
        let q = parse("child::a intersect child::b except child::c");
        match q {
            Expr::Except(lhs, _) => assert!(matches!(*lhs, Expr::Intersect(_, _))),
            other => panic!("expected Except at top, got {other:?}"),
        }
    }

    #[test]
    fn node_comparisons() {
        let q = parse("child::a is child::b");
        assert!(matches!(
            q,
            Expr::NodeCompare {
                op: NodeCompOp::Is,
                ..
            }
        ));
        let q = parse("//a << //b");
        assert!(matches!(
            q,
            Expr::NodeCompare {
                op: NodeCompOp::Precedes,
                ..
            }
        ));
        let q = parse("//a >> //b");
        assert!(matches!(
            q,
            Expr::NodeCompare {
                op: NodeCompOp::Follows,
                ..
            }
        ));
        // Comparisons sit below `and` in the precedence chain.
        let q = parse("child::a is child::b and child::c");
        assert!(matches!(q, Expr::And(_, _)));
    }

    #[test]
    fn variable_references() {
        let q = parse("$x");
        assert_eq!(q, Expr::Variable("x".to_string()));
        let q = parse("//row[@limit = $max-rows]");
        let path = q.as_path().unwrap();
        match &path.steps[1].predicates[0] {
            Expr::Relational { right, .. } => {
                assert_eq!(**right, Expr::Variable("max-rows".to_string()));
            }
            other => panic!("expected relational predicate, got {other:?}"),
        }
    }

    #[test]
    fn node_comparison_operand_typing() {
        // Both sides of a node comparison must be node-set typed.
        assert!(parse_query("1 is child::a").is_err());
        assert!(parse_query("child::a is 'x'").is_err());
        // Chaining is impossible: the first comparison yields a boolean.
        assert!(parse_query("child::a is child::b is child::c").is_err());
        // Same rule for intersect/except.
        assert!(parse_query("1 intersect child::a").is_err());
        assert!(parse_query("child::a except $x").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("/descendant::").is_err());
        assert!(parse_query("child::a[").is_err());
        assert!(parse_query("child::a]").is_err());
        assert!(parse_query("foo(").is_err());
        assert!(parse_query("1 +").is_err());
        assert!(parse_query("not(a, b)").is_err());
        assert!(parse_query("bogus-axis::a").is_err());
        assert!(parse_query("child::comment()").is_err());
        assert!(parse_query("a b").is_err());
    }

    #[test]
    fn error_messages_are_displayable() {
        let e = parse_query("child::a[").unwrap_err();
        assert!(e.to_string().contains("parse error") || e.to_string().contains("lex error"));
    }
}
