//! # xpeval-syntax — XPath 1.0 syntax layer
//!
//! Lexer, abstract syntax tree, recursive-descent parser, pretty printer,
//! normalizer and the **fragment classifier** realizing Figure 1 of
//! *"The Complexity of XPath Query Evaluation"* (Gottlob, Koch, Pichler;
//! PODS 2003).
//!
//! The grammar covered is the paper's Wadler fragment (Definition 2.6)
//! extended with the remaining commonly used XPath 1.0 constructs needed for
//! pXPath (Definition 6.1): the core function library, string literals,
//! unions, abbreviated syntax (`//`, `.`, `..`, `@`), and unary minus.
//!
//! ```
//! use xpeval_syntax::{parse_query, Fragment};
//!
//! let q = parse_query("/descendant::a/child::b[descendant::c and not(following-sibling::d)]")
//!     .unwrap();
//! let report = xpeval_syntax::classify(&q);
//! assert_eq!(report.fragment, Fragment::CoreXPath);
//! ```

pub mod ast;
pub mod display;
pub mod fragment;
pub mod lexer;
pub mod normalize;
pub mod parser;

pub use ast::{ArithOp, Expr, LocationPath, NodeCompOp, RelOp, Step};
pub use fragment::{
    classify, classify_with_limits, ClassifierLimits, Fragment, FragmentReport, QueryFeatures,
};
pub use lexer::{tokenize, LexError, Token};
pub use normalize::{expand_iterated_predicates, negation_depth, push_negation_inward};
pub use parser::{parse_query, ParseError};
