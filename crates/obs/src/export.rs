//! Exporters: Prometheus text exposition and JSON snapshots — plus a
//! minimal exposition-format *parser* used by CI to validate scrapes.
//!
//! Both exporters walk a [`MetricsRegistry`] snapshot in name order, so
//! output is deterministic for a given registry state.  Histograms render
//! in the cumulative-bucket form Prometheus expects (`le` labels with
//! monotonically non-decreasing counts ending at `+Inf`).

use crate::metrics::{bucket_upper_bound, Metric, MetricsRegistry, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` headers, one sample per line, cumulative
/// histogram buckets.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, metric) in registry.collect() {
        let name = prometheus_sanitize(&name);
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", g.get());
            }
            Metric::Histogram(h) => {
                let s = h.snapshot();
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for i in 0..HISTOGRAM_BUCKETS {
                    if s.buckets[i] == 0 {
                        continue;
                    }
                    cumulative += s.buckets[i];
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(i)
                    );
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", s.count);
                let _ = writeln!(out, "{name}_sum {}", s.sum);
                let _ = writeln!(out, "{name}_count {}", s.count);
            }
        }
    }
    out
}

/// Renders the registry as one JSON object: counters and gauges as
/// numbers, histograms as `{count, sum, mean, p50, p90, p99, max}`
/// sub-objects.  Pretty-printed with two-space indent.
pub fn render_json(registry: &MetricsRegistry) -> String {
    let mut out = String::from("{\n");
    let metrics = registry.collect();
    for (i, (name, metric)) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "  \"{}\": {}{comma}", json_escape(name), c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "  \"{}\": {}{comma}", json_escape(name), g.get());
            }
            Metric::Histogram(h) => {
                let s = h.snapshot();
                let _ = writeln!(
                    out,
                    "  \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \
                     \"p90\": {}, \"p99\": {}, \"max\": {}}}{comma}",
                    json_escape(name),
                    s.count,
                    s.sum,
                    s.mean(),
                    s.p50(),
                    s.p90(),
                    s.p99(),
                    s.max,
                );
            }
        }
    }
    out.push('}');
    out
}

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` so any field
/// name becomes a legal Prometheus metric name.
pub fn prometheus_sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes `"` and `\` (and control characters) for embedding in a JSON
/// string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One sample parsed from a Prometheus exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// The metric name, with any `{labels}` suffix stripped.
    pub name: String,
    /// The raw label block (without braces), empty when absent.
    pub labels: String,
    /// The sample value.
    pub value: f64,
}

/// A minimal parser for the Prometheus text exposition format, enough to
/// validate a scrape: checks `# TYPE` declarations, sample syntax,
/// histogram completeness (`_sum`/`_count`/`+Inf` bucket present,
/// cumulative bucket counts non-decreasing), and that every sample's name
/// matches a declared family.
#[derive(Clone, Debug, Default)]
pub struct ParsedExposition {
    /// Declared metric families: name → type ("counter" | "gauge" | ...).
    pub families: BTreeMap<String, String>,
    /// All samples in document order.
    pub samples: Vec<ParsedSample>,
}

impl ParsedExposition {
    /// The value of the first sample with this exact name and no labels.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// Samples belonging to a histogram family's `_bucket` series.
    pub fn buckets(&self, family: &str) -> Vec<&ParsedSample> {
        let bucket = format!("{family}_bucket");
        self.samples.iter().filter(|s| s.name == bucket).collect()
    }
}

/// Parses and validates a Prometheus text exposition.  Returns a
/// structured view on success, a line-numbered message on the first
/// violation.
pub fn parse_prometheus(text: &str) -> Result<ParsedExposition, String> {
    let mut parsed = ParsedExposition::default();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {ln}: TYPE without a name"))?;
                let ty = parts
                    .next()
                    .ok_or_else(|| format!("line {ln}: TYPE {name} without a type"))?;
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {ln}: unknown metric type {ty}"));
                }
                parsed.families.insert(name.to_string(), ty.to_string());
            }
            continue; // other comments are legal and ignored
        }
        // Sample: name[{labels}] value [timestamp]
        let (name_part, value_part) = match line.find([' ', '\t']) {
            Some(split) if !line[..split].contains('{') || line[..split].contains('}') => {
                (&line[..split], line[split..].trim_start())
            }
            _ => {
                // Labels may contain spaces; split after the closing brace.
                let close = line
                    .find('}')
                    .ok_or_else(|| format!("line {ln}: malformed sample {line:?}"))?;
                (&line[..=close], line[close + 1..].trim_start())
            }
        };
        let (name, labels) = match name_part.find('{') {
            Some(open) => {
                let close = name_part
                    .rfind('}')
                    .ok_or_else(|| format!("line {ln}: unclosed label block"))?;
                (&name_part[..open], &name_part[open + 1..close])
            }
            None => (name_part, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {ln}: invalid metric name {name:?}"));
        }
        let value_token = value_part
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {ln}: sample {name} has no value"))?;
        let value = parse_value(value_token)
            .ok_or_else(|| format!("line {ln}: invalid value {value_token:?}"))?;
        let family = histogram_family(name, &parsed.families).unwrap_or(name);
        if !parsed.families.contains_key(family) {
            return Err(format!(
                "line {ln}: sample {name} has no # TYPE declaration"
            ));
        }
        parsed.samples.push(ParsedSample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    validate_histograms(&parsed)?;
    Ok(parsed)
}

fn parse_value(token: &str) -> Option<f64> {
    match token {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse().ok(),
    }
}

/// Maps `foo_bucket`/`foo_sum`/`foo_count` back to a declared histogram
/// family `foo`.
fn histogram_family<'a>(name: &'a str, families: &BTreeMap<String, String>) -> Option<&'a str> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.get(stem).map(String::as_str) == Some("histogram") {
                return Some(stem);
            }
        }
    }
    None
}

fn validate_histograms(parsed: &ParsedExposition) -> Result<(), String> {
    for (family, ty) in &parsed.families {
        if ty != "histogram" {
            continue;
        }
        let buckets = parsed.buckets(family);
        if buckets.is_empty() {
            return Err(format!("histogram {family} has no _bucket samples"));
        }
        let mut prev = 0.0f64;
        let mut saw_inf = false;
        for b in &buckets {
            let le = b
                .labels
                .split(',')
                .find_map(|l| l.trim().strip_prefix("le="))
                .map(|v| v.trim_matches('"'))
                .ok_or_else(|| format!("histogram {family} bucket missing le label"))?;
            if b.value < prev {
                return Err(format!(
                    "histogram {family} bucket le={le} count {} below previous {prev}",
                    b.value
                ));
            }
            prev = b.value;
            saw_inf |= le == "+Inf";
        }
        if !saw_inf {
            return Err(format!("histogram {family} missing the +Inf bucket"));
        }
        let count = parsed
            .value(&format!("{family}_count"))
            .ok_or_else(|| format!("histogram {family} missing _count"))?;
        parsed
            .value(&format!("{family}_sum"))
            .ok_or_else(|| format!("histogram {family} missing _sum"))?;
        if (buckets.last().unwrap().value - count).abs() > f64::EPSILON {
            return Err(format!(
                "histogram {family}: +Inf bucket {} disagrees with _count {count}",
                buckets.last().unwrap().value
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("queries_total").set(42);
        r.gauge("queue_depth").set(3);
        let h = r.histogram("wait_ns");
        h.record(100);
        h.record(100);
        h.record(5000);
        r
    }

    #[test]
    fn prometheus_roundtrips_through_the_parser() {
        let r = demo_registry();
        let text = render_prometheus(&r);
        let parsed = parse_prometheus(&text).expect("own output must validate");
        assert_eq!(parsed.families.get("queries_total").unwrap(), "counter");
        assert_eq!(parsed.families.get("wait_ns").unwrap(), "histogram");
        assert_eq!(parsed.value("queries_total"), Some(42.0));
        assert_eq!(parsed.value("queue_depth"), Some(3.0));
        assert_eq!(parsed.value("wait_ns_count"), Some(3.0));
        assert_eq!(parsed.value("wait_ns_sum"), Some(5200.0));
        // Cumulative buckets: two at le=127, all three at le=8191 and +Inf.
        let buckets = parsed.buckets("wait_ns");
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].labels, "le=\"127\"");
        assert_eq!(buckets[0].value, 2.0);
        assert_eq!(buckets[1].value, 3.0);
        assert_eq!(buckets.last().unwrap().labels, "le=\"+Inf\"");
    }

    #[test]
    fn json_snapshot_carries_quantiles() {
        let json = render_json(&demo_registry());
        assert!(json.contains("\"queries_total\": 42"), "json: {json}");
        assert!(json.contains("\"queue_depth\": 3"), "json: {json}");
        assert!(json.contains("\"count\": 3"), "json: {json}");
        assert!(json.contains("\"p50\":"), "json: {json}");
        assert!(json.contains("\"p99\":"), "json: {json}");
    }

    #[test]
    fn parser_rejects_undeclared_samples() {
        let err = parse_prometheus("orphan 1\n").unwrap_err();
        assert!(err.contains("no # TYPE"), "err: {err}");
    }

    #[test]
    fn parser_rejects_non_monotone_histograms() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 5\n\
                    h_bucket{le=\"+Inf\"} 3\n\
                    h_sum 50\n\
                    h_count 3\n";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("below previous"), "err: {err}");
    }

    #[test]
    fn parser_rejects_missing_inf_bucket() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 5\n\
                    h_sum 50\n\
                    h_count 5\n";
        let err = parse_prometheus(text).unwrap_err();
        assert!(err.contains("+Inf"), "err: {err}");
    }

    #[test]
    fn parser_rejects_bad_values_and_names() {
        assert!(parse_prometheus("# TYPE x counter\nx abc\n").is_err());
        assert!(parse_prometheus("# TYPE {bad} counter\n{bad} 1\n").is_err());
    }

    #[test]
    fn sanitize_makes_names_legal() {
        assert_eq!(prometheus_sanitize("a.b-c/d"), "a_b_c_d");
        assert_eq!(prometheus_sanitize("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
