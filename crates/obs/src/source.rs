//! The [`MetricSource`] trait: one protocol for every `*Stats` struct.
//!
//! The workspace accumulates statistics in plain structs (`EvalStats`,
//! `CacheStats`, `CatalogStats`, `ServeStats`, …) because that is cheap and
//! lock-free.  `MetricSource` is the bridge out of those structs: a source
//! names itself and enumerates typed [`Field`]s, and the trait derives the
//! three presentation formats from that one enumeration — the traditional
//! one-line summary ([`render_line`]), a JSON object ([`MetricSource::to_json`]),
//! and publication into a [`MetricsRegistry`] ([`MetricSource::publish`])
//! from which the Prometheus exporter renders a scrape.

use crate::export::{json_escape, prometheus_sanitize};
use crate::metrics::{HistogramSnapshot, MetricsRegistry};
use std::fmt::Write as _;
use std::time::Duration;

/// One named statistic reported by a [`MetricSource`].
#[derive(Clone, Debug)]
pub struct Field {
    pub name: &'static str,
    pub value: FieldValue,
}

impl Field {
    pub fn new(name: &'static str, value: FieldValue) -> Self {
        Field { name, value }
    }
}

/// The typed value of a [`Field`].  The variant decides how the field
/// renders in each export format.
// Histogram carries a full bucket array inline; fields are transient
// rendering values built a handful at a time, so the size skew is fine.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// A monotonic count.
    Counter(u64),
    /// A signed point-in-time value.
    Gauge(i64),
    /// A hit-rate style pair, rendered as `name n/d (p.p%)`.
    Ratio { num: u64, den: u64 },
    /// An occupancy style pair, rendered as `name n/d`.
    Frac { num: u64, den: u64 },
    /// A duration in nanoseconds, rendered with `Duration`'s `{:.1?}`.
    DurationNs(u64),
    /// A full latency distribution, rendered as `name p50=... p99=...`.
    Histogram(HistogramSnapshot),
    /// Free-form text (JSON string; skipped by `publish`).
    Text(String),
}

/// Anything that can report its statistics through the telemetry layer.
pub trait MetricSource {
    /// Stable snake_case name, used as the metric-name prefix and the JSON
    /// envelope key (e.g. `"serve"`, `"eval"`, `"catalog"`).
    fn source_name(&self) -> &'static str;

    /// The fields, in display order.
    fn fields(&self) -> Vec<Field>;

    /// The traditional one-line human summary, shared by the `Display`
    /// impls of the workspace's stats structs.
    fn summary_line(&self) -> String {
        render_line(&self.fields())
    }

    /// A single-level JSON object of the fields.
    fn to_json(&self) -> String {
        let fields = self.fields();
        let mut out = String::with_capacity(32 * fields.len());
        out.push('{');
        let mut first = true;
        for f in &fields {
            match &f.value {
                FieldValue::Counter(v) => push_json_field(&mut out, &mut first, f.name, v),
                FieldValue::Gauge(v) => push_json_field(&mut out, &mut first, f.name, v),
                FieldValue::Ratio { num, den } | FieldValue::Frac { num, den } => {
                    push_json_field(&mut out, &mut first, f.name, num);
                    let total = format!("{}_total", f.name);
                    sep(&mut out, &mut first);
                    let _ = write!(out, "\"{}\": {}", json_escape(&total), den);
                }
                FieldValue::DurationNs(v) => {
                    let key = ns_key(f.name);
                    sep(&mut out, &mut first);
                    let _ = write!(out, "\"{}\": {}", json_escape(&key), v);
                }
                FieldValue::Histogram(h) => {
                    sep(&mut out, &mut first);
                    let _ = write!(
                        out,
                        "\"{}\": {{\"count\": {}, \"sum_ns\": {}, \"mean_ns\": {}, \
                         \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                        json_escape(f.name),
                        h.count,
                        h.sum,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.max,
                    );
                }
                FieldValue::Text(s) => {
                    sep(&mut out, &mut first);
                    let _ = write!(out, "\"{}\": \"{}\"", json_escape(f.name), json_escape(s));
                }
            }
        }
        out.push('}');
        out
    }

    /// Publishes the fields into `registry` as `<source_name>_<field>`
    /// instruments.  Counters/ratios publish absolute values (the source
    /// struct is the accumulator); histograms merge their snapshot in.
    fn publish(&self, registry: &MetricsRegistry) {
        let prefix = self.source_name();
        for f in self.fields() {
            let name = prometheus_sanitize(&format!("{prefix}_{}", f.name));
            match f.value {
                FieldValue::Counter(v) => registry.counter(&name).set(v),
                FieldValue::Gauge(v) => registry.gauge(&name).set(v),
                FieldValue::Ratio { num, den } | FieldValue::Frac { num, den } => {
                    registry.counter(&name).set(num);
                    registry.counter(&format!("{name}_total")).set(den);
                }
                FieldValue::DurationNs(v) => registry
                    .counter(&prometheus_sanitize(&ns_key(&name)))
                    .set(v),
                FieldValue::Histogram(h) => registry.histogram(&name).merge(&h),
                FieldValue::Text(_) => {}
            }
        }
    }
}

/// Renders fields as the workspace's one-line summary format:
/// comma-separated `name value` pairs.
pub fn render_line(fields: &[Field]) -> String {
    let mut out = String::with_capacity(16 * fields.len());
    let mut first = true;
    for f in fields {
        if !first {
            out.push_str(", ");
        }
        first = false;
        match &f.value {
            FieldValue::Counter(v) => {
                let _ = write!(out, "{} {}", f.name, v);
            }
            FieldValue::Gauge(v) => {
                let _ = write!(out, "{} {}", f.name, v);
            }
            FieldValue::Ratio { num, den } => {
                let pct = if *den == 0 {
                    0.0
                } else {
                    *num as f64 / *den as f64 * 100.0
                };
                let _ = write!(out, "{} {}/{} ({:.1}%)", f.name, num, den, pct);
            }
            FieldValue::Frac { num, den } => {
                let _ = write!(out, "{} {}/{}", f.name, num, den);
            }
            FieldValue::DurationNs(v) => {
                let _ = write!(out, "{} {:.1?}", f.name, Duration::from_nanos(*v));
            }
            FieldValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{} p50={:.1?} p99={:.1?} max={:.1?} (n={})",
                    f.name,
                    Duration::from_nanos(h.p50()),
                    Duration::from_nanos(h.p99()),
                    Duration::from_nanos(h.max),
                    h.count,
                );
            }
            FieldValue::Text(s) => {
                let _ = write!(out, "{} {}", f.name, s);
            }
        }
    }
    out
}

fn ns_key(name: &str) -> String {
    if name.ends_with("_ns") {
        name.to_string()
    } else {
        format!("{name}_ns")
    }
}

fn sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
}

fn push_json_field<T: std::fmt::Display>(out: &mut String, first: &mut bool, name: &str, v: T) {
    sep(out, first);
    let _ = write!(out, "\"{}\": {}", json_escape(name), v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    struct Demo;

    impl MetricSource for Demo {
        fn source_name(&self) -> &'static str {
            "demo"
        }

        fn fields(&self) -> Vec<Field> {
            let h = Histogram::new();
            h.record(100);
            h.record(1000);
            vec![
                Field::new("hits", FieldValue::Ratio { num: 1, den: 2 }),
                Field::new("docs", FieldValue::Frac { num: 3, den: 64 }),
                Field::new("queries", FieldValue::Counter(9)),
                Field::new("depth", FieldValue::Gauge(-2)),
                Field::new("wait", FieldValue::Histogram(h.snapshot())),
            ]
        }
    }

    #[test]
    fn render_line_matches_the_workspace_idiom() {
        let line = Demo.summary_line();
        assert!(line.contains("hits 1/2 (50.0%)"), "line: {line}");
        assert!(line.contains("docs 3/64"), "line: {line}");
        assert!(line.contains("queries 9"), "line: {line}");
        assert!(line.contains("depth -2"), "line: {line}");
        assert!(line.contains("wait p50="), "line: {line}");
    }

    #[test]
    fn ratio_with_zero_denominator_is_zero_percent() {
        let line = render_line(&[Field::new("hits", FieldValue::Ratio { num: 0, den: 0 })]);
        assert_eq!(line, "hits 0/0 (0.0%)");
    }

    #[test]
    fn to_json_flattens_fields() {
        let json = Demo.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "json: {json}");
        assert!(json.contains("\"hits\": 1"), "json: {json}");
        assert!(json.contains("\"hits_total\": 2"), "json: {json}");
        assert!(json.contains("\"queries\": 9"), "json: {json}");
        assert!(json.contains("\"wait\": {\"count\": 2"), "json: {json}");
        assert!(json.contains("\"p99_ns\":"), "json: {json}");
    }

    #[test]
    fn publish_lands_in_the_registry() {
        let r = MetricsRegistry::new();
        Demo.publish(&r);
        assert_eq!(r.counter("demo_hits").get(), 1);
        assert_eq!(r.counter("demo_hits_total").get(), 2);
        assert_eq!(r.counter("demo_queries").get(), 9);
        assert_eq!(r.gauge("demo_depth").get(), -2);
        assert_eq!(r.histogram("demo_wait").snapshot().count, 2);
    }

    #[test]
    fn duration_fields_render_humanly_and_export_raw() {
        let f = [Field::new("mean_wait", FieldValue::DurationNs(1_500_000))];
        assert_eq!(render_line(&f), "mean_wait 1.5ms");
    }
}
