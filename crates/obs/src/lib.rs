//! Dependency-free telemetry for the `xpeval` workspace.
//!
//! Three pieces, all usable independently:
//!
//! * **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]): lock-free atomic instruments with log2-bucketed
//!   latency histograms and `p50/p90/p99` estimation.
//! * **Exporters** ([`render_prometheus`], [`render_json`]): deterministic
//!   Prometheus text exposition and JSON snapshots of a registry, plus a
//!   minimal exposition parser ([`parse_prometheus`]) so CI can validate
//!   scrapes without external tooling.
//! * **Traces** ([`OpTrace`], [`QueryTrace`], [`TraceSpan`]): sampled
//!   per-query spans covering compile → lower → per-opcode execution,
//!   accumulated in atomic per-opcode cells so all evaluation strategies
//!   emit identical span sequences and the disabled path costs one branch.
//!
//! The [`Telemetry`] handle ties them together: a shared registry, a trace
//! ring buffer, and a deterministic counter-based sampler.  The engine
//! crate attaches an `Arc<Telemetry>` and feeds it; this crate knows
//! nothing about queries, documents, or servers — it depends on nothing in
//! the workspace (or outside it) so every layer can feed it.

mod export;
mod metrics;
mod source;
mod trace;

pub use export::{
    json_escape, parse_prometheus, prometheus_sanitize, render_json, render_prometheus,
    ParsedExposition, ParsedSample,
};
pub use metrics::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, Metric,
    MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use source::{render_line, Field, FieldValue, MetricSource};
pub use trace::{OpTrace, QueryTrace, SpanKind, TraceSpan};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default capacity of the retained-trace ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// The shared telemetry handle an engine (or server) records into.
///
/// Sampling is deterministic and counter-based: with `sample_every == n`,
/// every `n`-th query (per handle) is traced; `0` disables tracing
/// entirely.  Determinism matters here — benches and tests get the same
/// traces on every run, with no randomness source required.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    sample_every: AtomicU64,
    seq: AtomicU64,
    traces: Mutex<VecDeque<QueryTrace>>,
    trace_capacity: usize,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A handle with tracing disabled (`sample_every == 0`) and the
    /// default trace-buffer capacity.
    pub fn new() -> Self {
        Telemetry {
            registry: MetricsRegistry::new(),
            sample_every: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            traces: Mutex::new(VecDeque::new()),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// A handle that traces every `n`-th query.
    pub fn with_sampling(n: u64) -> Self {
        let t = Telemetry::new();
        t.set_sample_every(n);
        t
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Sets the sampling period: trace every `n`-th query, `0` = off.
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// The current sampling period (`0` = tracing disabled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Decides whether the next query should be traced, advancing the
    /// sample counter.  The first query after enabling is always sampled
    /// (sequence numbers 0, n, 2n, … hit).
    pub fn should_sample(&self) -> bool {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        self.seq.fetch_add(1, Ordering::Relaxed) % every == 0
    }

    /// Stores a completed trace in the ring buffer, evicting the oldest
    /// when full.
    pub fn push_trace(&self, trace: QueryTrace) {
        let mut traces = self.traces.lock().unwrap();
        if traces.len() >= self.trace_capacity {
            traces.pop_front();
        }
        traces.push_back(trace);
    }

    /// Drains and returns all retained traces, oldest first.
    pub fn take_traces(&self) -> Vec<QueryTrace> {
        self.traces.lock().unwrap().drain(..).collect()
    }

    /// The most recent retained trace, if any, cloned out.
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.traces.lock().unwrap().back().cloned()
    }

    /// Number of retained traces.
    pub fn trace_count(&self) -> usize {
        self.traces.lock().unwrap().len()
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.registry)
    }

    /// Renders the registry as a JSON snapshot.
    pub fn render_json(&self) -> String {
        render_json(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_counter_based() {
        let t = Telemetry::with_sampling(3);
        let hits: Vec<bool> = (0..9).map(|_| t.should_sample()).collect();
        assert_eq!(
            hits,
            [true, false, false, true, false, false, true, false, false]
        );
    }

    #[test]
    fn sampling_zero_means_disabled() {
        let t = Telemetry::new();
        assert_eq!(t.sample_every(), 0);
        assert!((0..100).all(|_| !t.should_sample()));
        t.set_sample_every(1);
        assert!((0..10).all(|_| t.should_sample()));
    }

    #[test]
    fn trace_ring_buffer_evicts_oldest() {
        let t = Telemetry::new();
        for i in 0..(DEFAULT_TRACE_CAPACITY + 5) {
            t.push_trace(QueryTrace {
                query: format!("q{i}"),
                strategy: "test".into(),
                spans: Vec::new(),
                total_nanos: 0,
            });
        }
        assert_eq!(t.trace_count(), DEFAULT_TRACE_CAPACITY);
        assert_eq!(
            t.last_trace().unwrap().query,
            format!("q{}", DEFAULT_TRACE_CAPACITY + 4)
        );
        let drained = t.take_traces();
        assert_eq!(drained.first().unwrap().query, "q5");
        assert_eq!(t.trace_count(), 0);
    }

    #[test]
    fn handle_exports_its_registry() {
        let t = Telemetry::new();
        t.registry().counter("demo_total").set(7);
        assert!(t.render_prometheus().contains("demo_total 7"));
        assert!(t.render_json().contains("\"demo_total\": 7"));
    }
}
