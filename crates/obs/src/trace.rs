//! Per-query tracing: sampled spans for compile → lower → per-opcode
//! execution.
//!
//! The design constraint is that five different evaluation strategies —
//! memoized, eager, linear bitset, parallel, singleton-success — must emit
//! *the same span sequence* for the same plan, and the disabled path must
//! cost a single branch.  Both fall out of the same trick: strategies do
//! not emit spans at all.  They accumulate into an [`OpTrace`] — one
//! atomic cell per plan opcode — and the engine converts the cells into
//! one [`TraceSpan`] per opcode *in plan order* after the run.  Identical
//! span sequences across strategies hold by construction, and when no
//! trace is attached the hook is `Option::None`, checked once per
//! recording site.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Accumulation cells for one opcode of a plan.
#[derive(Debug, Default)]
struct OpCell {
    /// Times the opcode was entered.
    calls: AtomicU64,
    /// Total nanoseconds spent in the opcode (including callees).
    nanos: AtomicU64,
    /// Total candidate/context nodes flowing *into* the opcode.
    input: AtomicU64,
    /// Total result nodes flowing *out of* the opcode.
    output: AtomicU64,
}

/// One atomic accumulation cell per opcode of a plan.  `Sync`, so the
/// parallel strategy's workers record into the same trace concurrently.
#[derive(Debug)]
pub struct OpTrace {
    cells: Box<[OpCell]>,
}

impl OpTrace {
    /// A trace with one cell for each of the plan's `ops` opcodes.
    pub fn new(ops: usize) -> Self {
        OpTrace {
            cells: (0..ops).map(|_| OpCell::default()).collect(),
        }
    }

    /// Number of opcode cells.
    pub fn ops(&self) -> usize {
        self.cells.len()
    }

    /// Records one visit of opcode `op`: `input` candidate nodes in,
    /// `output` result nodes out, `nanos` spent.  Out-of-range ops are
    /// ignored rather than panicking — a trace sized for a different plan
    /// must not take down an evaluation.
    #[inline]
    pub fn record(&self, op: u32, input: u64, output: u64, nanos: u64) {
        if let Some(cell) = self.cells.get(op as usize) {
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.nanos.fetch_add(nanos, Ordering::Relaxed);
            cell.input.fetch_add(input, Ordering::Relaxed);
            cell.output.fetch_add(output, Ordering::Relaxed);
        }
    }

    /// The accumulated `(calls, input, output, nanos)` of opcode `op`.
    pub fn cell(&self, op: u32) -> (u64, u64, u64, u64) {
        match self.cells.get(op as usize) {
            Some(c) => (
                c.calls.load(Ordering::Relaxed),
                c.input.load(Ordering::Relaxed),
                c.output.load(Ordering::Relaxed),
                c.nanos.load(Ordering::Relaxed),
            ),
            None => (0, 0, 0, 0),
        }
    }
}

/// What a [`TraceSpan`] covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Parsing + analysis of the query source.
    Compile,
    /// Lowering the AST to the flat plan IR.
    Lower,
    /// One plan opcode's accumulated execution.
    Op,
}

impl SpanKind {
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compile => "compile",
            SpanKind::Lower => "lower",
            SpanKind::Op => "op",
        }
    }
}

/// One span of a [`QueryTrace`].
#[derive(Clone, Debug)]
pub struct TraceSpan {
    pub kind: SpanKind,
    /// Human-readable label: the phase name for compile/lower spans, the
    /// rendered opcode for op spans.
    pub label: String,
    /// Plan opcode index for [`SpanKind::Op`] spans.
    pub op: Option<u32>,
    /// The query-language fragment the opcode (or query) belongs to.
    pub fragment: &'static str,
    /// Times the opcode was entered (1 for compile/lower spans).
    pub calls: u64,
    /// Candidate/context nodes flowing in, summed over calls.
    pub candidates_in: u64,
    /// Result nodes flowing out, summed over calls.
    pub candidates_out: u64,
    /// Nanoseconds spent, summed over calls.
    pub nanos: u64,
}

impl TraceSpan {
    /// A compile- or lower-phase span.
    pub fn phase(
        kind: SpanKind,
        label: impl Into<String>,
        fragment: &'static str,
        nanos: u64,
    ) -> Self {
        TraceSpan {
            kind,
            label: label.into(),
            op: None,
            fragment,
            calls: 1,
            candidates_in: 0,
            candidates_out: 0,
            nanos,
        }
    }
}

/// A sampled trace of one query execution: compile and lower spans, then
/// one span per plan opcode in plan order.
#[derive(Clone, Debug)]
pub struct QueryTrace {
    /// The query source text.
    pub query: String,
    /// The strategy that executed it (e.g. `"ContextValueTable"`).
    pub strategy: String,
    /// Spans in order: compile, lower, then one per opcode.
    pub spans: Vec<TraceSpan>,
    /// End-to-end execution nanoseconds (excluding compile/lower).
    pub total_nanos: u64,
}

impl QueryTrace {
    /// Only the per-opcode spans, in plan order.
    pub fn op_spans(&self) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(|s| s.kind == SpanKind::Op)
    }

    /// Renders the flamegraph-shaped per-opcode profile table: one row per
    /// span with calls, candidate flow, time, and share of total.
    pub fn profile_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", self.query);
        let _ = writeln!(
            out,
            "strategy: {}  total: {:.1?}",
            self.strategy,
            Duration::from_nanos(self.total_nanos)
        );
        let _ = writeln!(
            out,
            "{:<4} {:<8} {:<34} {:<18} {:>7} {:>7} {:>7} {:>11} {:>6}",
            "op", "kind", "label", "fragment", "calls", "in", "out", "time", "share"
        );
        let total = self.total_nanos.max(1);
        for span in &self.spans {
            let share = if span.kind == SpanKind::Op {
                format!("{:.1}%", span.nanos as f64 / total as f64 * 100.0)
            } else {
                "-".to_string()
            };
            let op = span.op.map(|o| o.to_string()).unwrap_or_else(|| "-".into());
            let mut label = span.label.clone();
            if label.len() > 34 {
                label.truncate(31);
                label.push_str("...");
            }
            let _ = writeln!(
                out,
                "{:<4} {:<8} {:<34} {:<18} {:>7} {:>7} {:>7} {:>11} {:>6}",
                op,
                span.kind.name(),
                label,
                span.fragment,
                span.calls,
                span.candidates_in,
                span.candidates_out,
                format!("{:.1?}", Duration::from_nanos(span.nanos)),
                share,
            );
        }
        out
    }

    /// The trace as a JSON object (query, strategy, spans array).
    pub fn to_json(&self) -> String {
        use crate::export::json_escape;
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"query\": \"{}\", \"strategy\": \"{}\", \"total_nanos\": {}, \"spans\": [",
            json_escape(&self.query),
            json_escape(&self.strategy),
            self.total_nanos
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"kind\": \"{}\", \"label\": \"{}\", \"op\": {}, \"fragment\": \"{}\", \
                 \"calls\": {}, \"in\": {}, \"out\": {}, \"nanos\": {}}}",
                s.kind.name(),
                json_escape(&s.label),
                s.op.map(|o| o.to_string()).unwrap_or_else(|| "null".into()),
                json_escape(s.fragment),
                s.calls,
                s.candidates_in,
                s.candidates_out,
                s.nanos,
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_trace_accumulates_per_cell() {
        let t = OpTrace::new(3);
        t.record(0, 10, 5, 100);
        t.record(0, 10, 5, 100);
        t.record(2, 1, 1, 7);
        assert_eq!(t.cell(0), (2, 20, 10, 200));
        assert_eq!(t.cell(1), (0, 0, 0, 0));
        assert_eq!(t.cell(2), (1, 1, 1, 7));
        // Out-of-range records are dropped, not panics.
        t.record(99, 1, 1, 1);
        assert_eq!(t.cell(99), (0, 0, 0, 0));
    }

    #[test]
    fn op_trace_is_shareable_across_threads() {
        let t = OpTrace::new(1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.record(0, 1, 1, 1);
                    }
                });
            }
        });
        assert_eq!(t.cell(0), (4000, 4000, 4000, 4000));
    }

    fn demo_trace() -> QueryTrace {
        QueryTrace {
            query: "//a/b".into(),
            strategy: "ContextValueTable".into(),
            spans: vec![
                TraceSpan::phase(SpanKind::Compile, "parse+analyze", "Core XPath", 1000),
                TraceSpan::phase(SpanKind::Lower, "lower to PlanIr", "Core XPath", 500),
                TraceSpan {
                    kind: SpanKind::Op,
                    label: "path //a/b".into(),
                    op: Some(0),
                    fragment: "Core XPath",
                    calls: 1,
                    candidates_in: 1,
                    candidates_out: 3,
                    nanos: 4000,
                },
            ],
            total_nanos: 4000,
        }
    }

    #[test]
    fn profile_table_lists_every_span() {
        let table = demo_trace().profile_table();
        assert!(table.contains("query: //a/b"), "table:\n{table}");
        assert!(table.contains("compile"), "table:\n{table}");
        assert!(table.contains("lower"), "table:\n{table}");
        assert!(table.contains("path //a/b"), "table:\n{table}");
        assert!(table.contains("100.0%"), "table:\n{table}");
    }

    #[test]
    fn trace_json_is_structured() {
        let json = demo_trace().to_json();
        assert!(json.contains("\"query\": \"//a/b\""), "json: {json}");
        assert!(json.contains("\"kind\": \"op\""), "json: {json}");
        assert!(json.contains("\"op\": 0"), "json: {json}");
        assert!(json.contains("\"out\": 3"), "json: {json}");
    }
}
