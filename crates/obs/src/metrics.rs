//! Atomic metric instruments and the workspace registry.
//!
//! Three instrument kinds, all lock-free on the record path:
//!
//! * [`Counter`] — a monotonically increasing `u64` (plus [`Counter::set`]
//!   for publishing absolute values from a stats snapshot).
//! * [`Gauge`] — a signed value that can move both ways.
//! * [`Histogram`] — log2-bucketed value distribution with `p50/p90/p99`
//!   quantile estimation.  Values land in bucket `k` when they fall in
//!   `[2^(k-1), 2^k - 1]` (value 0 has its own bucket), so 65 buckets
//!   cover the full `u64` range with one `leading_zeros` per record and a
//!   bounded, allocation-free memory footprint.
//!
//! [`MetricsRegistry`] names instruments and hands out shared handles; the
//! exporters in [`crate::export`] walk it to render a Prometheus scrape or
//! a JSON snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: value 0, then one bucket per power of two
/// up to `2^63..u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for publishing an absolute count taken from a
    /// stats snapshot rather than accumulating live increments.
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The bucket index a value lands in: 0 for 0, else `64 - leading_zeros`
/// (so 1 → bucket 1, 2..=3 → bucket 2, 4..=7 → bucket 3, …).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket (`2^k - 1`; `u64::MAX` for the
/// last).  Quantile estimates report this bound, so they err high by at
/// most 2x — the right direction for latency gates.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A log2-bucketed histogram.  `record` is four relaxed atomic operations;
/// there is no lock and no allocation anywhere on the record path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (the workspace's latency unit).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds a snapshot's observations in — used to publish a histogram
    /// captured elsewhere (e.g. a `ServeStats` snapshot) into a registry.
    pub fn merge(&self, snap: &HistogramSnapshot) {
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state, with quantile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket holding the `ceil(q * count)`-th observation, clamped to the
    /// exact observed maximum.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A named instrument held by a [`MetricsRegistry`].
#[derive(Clone, Debug)]
pub enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The workspace metrics registry: names → shared instrument handles.
///
/// Handle lookup takes a lock; the handles themselves are lock-free, so the
/// intended pattern is to resolve a handle once and record through it.  The
/// registry iterates in name order, which makes both exporters
/// deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// When `name` is already registered as a different instrument kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first
    /// use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().unwrap();
        // Look up by `&str` first so the steady state (the instrument
        // already exists) never allocates; only a genuine first
        // registration pays for the owned key.
        if let Some(metric) = metrics.get(name) {
            return metric.clone();
        }
        let metric = make();
        metrics.insert(name.to_string(), metric.clone());
        metric
    }

    /// A name-ordered snapshot of every registered instrument.
    pub fn collect(&self) -> Vec<(String, Metric)> {
        self.metrics
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value is within its bucket's bounds.
        for v in [0u64, 1, 2, 7, 100, 4095, 1 << 40, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b), "{v} above bucket {b}");
            if b > 0 {
                assert!(
                    v > bucket_upper_bound(b - 1),
                    "{v} not above bucket {}",
                    b - 1
                );
            }
        }
    }

    #[test]
    fn histogram_quantiles_estimate_within_one_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), 500);
        // The true p50 is 500; the estimate is its bucket's upper bound.
        let p50 = s.p50();
        assert!(
            (500..=1023).contains(&p50),
            "p50 estimate {p50} outside [500, 1023]"
        );
        // p99 (true 990) and the max clamp.
        let p99 = s.p99();
        assert!(
            (990..=1000).contains(&p99),
            "p99 estimate {p99} outside [990, 1000]"
        );
        assert_eq!(s.quantile(1.0), 1000, "q=1 clamps to the exact max");
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_folds_snapshots_in() {
        let a = Histogram::new();
        a.record(10);
        a.record(100);
        let b = Histogram::new();
        b.record(1000);
        b.merge(&a.snapshot());
        let s = b.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1110);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let r = MetricsRegistry::new();
        r.counter("queries").inc();
        r.counter("queries").add(2);
        assert_eq!(r.counter("queries").get(), 3);
        r.gauge("depth").set(7);
        r.gauge("depth").sub(2);
        assert_eq!(r.gauge("depth").get(), 5);
        r.histogram("latency").record(42);
        assert_eq!(r.histogram("latency").snapshot().count, 1);
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_is_a_programming_error() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        r.gauge("x");
    }
}
