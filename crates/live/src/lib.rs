//! # xpeval-live — live documents
//!
//! A [`LiveDocument`] wraps a shared [`PreparedDocument`] snapshot and lets
//! it be edited **in place** — [`insert_subtree`](LiveDocument::insert_subtree),
//! [`remove_subtree`](LiveDocument::remove_subtree),
//! [`replace_subtree`](LiveDocument::replace_subtree),
//! [`set_attribute`](LiveDocument::set_attribute) and
//! [`set_text`](LiveDocument::set_text) — while the axis indexes (tag
//! lists, per-parent buckets, subtree intervals, position tables) are
//! maintained *incrementally* instead of being rebuilt by a full O(|D|)
//! re-preparation.  The substrate is the gap-based ordering keys of
//! `xpeval-dom` ([`xpeval_dom::KEY_STRIDE`]): inserted nodes are keyed into
//! the gap between their neighbours, and only when a gap is exhausted is
//! the smallest roomy ancestor subtree renumbered.
//!
//! Snapshots are copy-on-write: the live document hands out
//! [`Arc<PreparedDocument>`] snapshots ([`LiveDocument::snapshot`]) that
//! stay valid forever; the first edit after a snapshot was taken clones the
//! shared state once and edits the private copy.  A reader therefore never
//! observes a half-patched index — it either holds the pre-edit snapshot or
//! receives the post-edit one.
//!
//! Each edit bumps the document's **revision** counter and accumulates a
//! *dirty interval* (the preorder-key range the edit touched, see
//! [`xpeval_dom::EditOutcome`]).  The catalog layer drains that state
//! ([`LiveDocument::take_pending`]) to invalidate exactly the plan
//! artifacts whose candidates intersect the edited region, keeping every
//! other artifact — revision is the fine-grained sibling of the catalog's
//! whole-replacement *generation* counter.
//!
//! ```
//! use xpeval_live::LiveDocument;
//! use xpeval_dom::parse_xml;
//!
//! let mut live = LiveDocument::new(parse_xml("<inv><item/><item/></inv>").unwrap());
//! let before = live.snapshot();
//! let inv = live.prepared().first_child(live.prepared().root()).unwrap();
//! live.insert_subtree(inv, 2, &parse_xml("<item new=\"1\"/>").unwrap()).unwrap();
//! assert_eq!(live.revision(), 1);
//! assert_eq!(live.prepared().elements_named("item").len(), 3);
//! // The pre-edit snapshot is untouched.
//! assert_eq!(before.elements_named("item").len(), 2);
//! ```

use std::ops::Deref;
use std::sync::Arc;
use xpeval_dom::{Document, EditOutcome, MutationError, NodeId, PreparedDocument};

/// Edits accumulated on a [`LiveDocument`] since the last
/// [`take_pending`](LiveDocument::take_pending) drain: the union of the
/// individual [`EditOutcome`] dirty intervals, ready for subtree-scoped
/// cache invalidation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingEdits {
    /// Union of the half-open dirty preorder-key intervals of every edit in
    /// the batch (meaningful in both the pre- and post-batch key spaces,
    /// unless `renumbered`).
    pub dirty: (u32, u32),
    /// True if any edit renumbered the whole document — pre-batch ordering
    /// keys are then incomparable with post-batch ones and interval-scoped
    /// invalidation must degrade to dropping everything.
    pub renumbered: bool,
    /// Number of edits in the batch.
    pub edits: u64,
    /// Total nodes inserted across the batch.
    pub inserted: usize,
    /// Total arena slots detached across the batch.
    pub removed: usize,
}

impl PendingEdits {
    fn absorb(&mut self, out: &EditOutcome) {
        self.dirty = (self.dirty.0.min(out.dirty.0), self.dirty.1.max(out.dirty.1));
        self.renumbered |= out.renumbered;
        self.edits += 1;
        self.inserted += out.inserted.len();
        self.removed += out.removed;
    }

    fn from_outcome(out: &EditOutcome) -> Self {
        PendingEdits {
            dirty: out.dirty,
            renumbered: out.renumbered,
            edits: 1,
            inserted: out.inserted.len(),
            removed: out.removed,
        }
    }
}

/// A mutable, versioned view over a shared [`PreparedDocument`]: edits are
/// applied in place with incremental index maintenance, snapshots are
/// copy-on-write, and every edit is tracked by a revision counter and a
/// dirty preorder interval (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct LiveDocument {
    prepared: Arc<PreparedDocument>,
    revision: u64,
    pending: Option<PendingEdits>,
}

impl LiveDocument {
    /// Wraps a document (preparing its indexes) as revision 0.
    pub fn new(doc: impl Into<Arc<Document>>) -> Self {
        Self::from_prepared(Arc::new(PreparedDocument::new(doc)))
    }

    /// Wraps an already prepared snapshot as revision 0.  The snapshot is
    /// shared, not copied — the first edit pays one copy-on-write clone if
    /// other holders remain.
    pub fn from_prepared(prepared: Arc<PreparedDocument>) -> Self {
        Self::resume(prepared, 0)
    }

    /// Wraps a snapshot continuing at an explicit revision — how a catalog
    /// resumes editing a document it stored together with its revision
    /// counter.
    pub fn resume(prepared: Arc<PreparedDocument>, revision: u64) -> Self {
        LiveDocument {
            prepared,
            revision,
            pending: None,
        }
    }

    /// The current snapshot's indexes (read-only view).
    #[inline]
    pub fn prepared(&self) -> &PreparedDocument {
        &self.prepared
    }

    /// A shared handle to the current snapshot.  Snapshots are immutable:
    /// later edits clone-on-write and never disturb handles already given
    /// out.
    #[inline]
    pub fn snapshot(&self) -> Arc<PreparedDocument> {
        Arc::clone(&self.prepared)
    }

    /// Number of edits applied since revision 0.  Monotone; bumped by every
    /// successful edit (rejected edits leave it untouched).
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The edits accumulated since the last drain, if any — without
    /// clearing them.
    #[inline]
    pub fn pending(&self) -> Option<&PendingEdits> {
        self.pending.as_ref()
    }

    /// Drains the accumulated edit batch, returning `None` when no edit
    /// happened since the last drain.  The catalog calls this once per
    /// mutation closure to scope its artifact invalidation.
    pub fn take_pending(&mut self) -> Option<PendingEdits> {
        self.pending.take()
    }

    fn apply<F>(&mut self, edit: F) -> Result<EditOutcome, MutationError>
    where
        F: FnOnce(&mut PreparedDocument) -> Result<EditOutcome, MutationError>,
    {
        // Copy-on-write: free when this live document is the only holder
        // (the common case between snapshots), one deep clone otherwise.
        let out = edit(Arc::make_mut(&mut self.prepared))?;
        self.revision += 1;
        match &mut self.pending {
            Some(p) => p.absorb(&out),
            None => self.pending = Some(PendingEdits::from_outcome(&out)),
        }
        Ok(out)
    }

    /// Inserts the children of `fragment`'s root as children of `parent` at
    /// 0-based position `index`.  See
    /// [`PreparedDocument::insert_subtree`].
    pub fn insert_subtree(
        &mut self,
        parent: NodeId,
        index: usize,
        fragment: &Document,
    ) -> Result<EditOutcome, MutationError> {
        self.apply(|p| p.insert_subtree(parent, index, fragment))
    }

    /// Detaches `n`'s whole subtree.  See
    /// [`PreparedDocument::remove_subtree`].
    pub fn remove_subtree(&mut self, n: NodeId) -> Result<EditOutcome, MutationError> {
        self.apply(|p| p.remove_subtree(n))
    }

    /// Replaces `n`'s subtree with `fragment`'s content.  See
    /// [`PreparedDocument::replace_subtree`].
    pub fn replace_subtree(
        &mut self,
        n: NodeId,
        fragment: &Document,
    ) -> Result<EditOutcome, MutationError> {
        self.apply(|p| p.replace_subtree(n, fragment))
    }

    /// Sets (creating if absent) attribute `name` on element `el`.  See
    /// [`PreparedDocument::set_attribute`].
    pub fn set_attribute(
        &mut self,
        el: NodeId,
        name: &str,
        value: &str,
    ) -> Result<EditOutcome, MutationError> {
        self.apply(|p| p.set_attribute(el, name, value))
    }

    /// Replaces the content of text node `t`.  See
    /// [`PreparedDocument::set_text`].
    pub fn set_text(&mut self, t: NodeId, text: &str) -> Result<EditOutcome, MutationError> {
        self.apply(|p| p.set_text(t, text))
    }
}

impl Deref for LiveDocument {
    type Target = PreparedDocument;

    fn deref(&self) -> &PreparedDocument {
        &self.prepared
    }
}

impl From<Document> for LiveDocument {
    fn from(doc: Document) -> Self {
        LiveDocument::new(doc)
    }
}

impl From<PreparedDocument> for LiveDocument {
    fn from(prepared: PreparedDocument) -> Self {
        LiveDocument::from_prepared(Arc::new(prepared))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpeval_dom::parse_xml;

    fn live() -> LiveDocument {
        LiveDocument::new(parse_xml("<r><a k=\"1\"><b/></a><c>t</c></r>").unwrap())
    }

    #[test]
    fn edits_bump_revision_and_accumulate_pending() {
        let mut l = live();
        assert_eq!(l.revision(), 0);
        assert!(l.pending().is_none());
        let r = l.first_child(l.root()).unwrap();
        let a = l.children_named(r, "a")[0];
        let o1 = l.set_attribute(a, "k", "2").unwrap();
        let c = l.children_named(r, "c")[0];
        let t = l.first_child(c).unwrap();
        let o2 = l.set_text(t, "u").unwrap();
        assert_eq!(l.revision(), 2);
        let batch = l.take_pending().unwrap();
        assert_eq!(batch.edits, 2);
        assert_eq!(batch.dirty.0, o1.dirty.0.min(o2.dirty.0));
        assert_eq!(batch.dirty.1, o1.dirty.1.max(o2.dirty.1));
        assert!(!batch.renumbered);
        assert!(l.take_pending().is_none());
        assert_eq!(l.revision(), 2, "draining does not bump the revision");
    }

    #[test]
    fn rejected_edits_change_nothing() {
        let mut l = live();
        let root = l.root();
        assert!(l.remove_subtree(root).is_err());
        assert_eq!(l.revision(), 0);
        assert!(l.pending().is_none());
    }

    #[test]
    fn snapshots_are_copy_on_write() {
        let mut l = live();
        let before = l.snapshot();
        let r = l.first_child(l.root()).unwrap();
        let a = l.children_named(r, "a")[0];
        l.remove_subtree(a).unwrap();
        assert!(l.elements_named("a").is_empty());
        // The pre-edit snapshot still sees the old tree.
        assert_eq!(before.elements_named("a").len(), 1);
        assert!(!Arc::ptr_eq(&before, &l.snapshot()));
        // With no outstanding snapshot, further edits reuse the allocation.
        let after = Arc::as_ptr(&l.snapshot());
        let c = l.children_named(r, "c")[0];
        l.set_attribute(c, "x", "y").unwrap();
        assert_eq!(Arc::as_ptr(&l.snapshot()), after);
    }

    #[test]
    fn resume_continues_the_revision_sequence() {
        let mut l = live();
        let r = l.first_child(l.root()).unwrap();
        l.set_attribute(l.children_named(r, "a")[0], "k", "2")
            .unwrap();
        let snap = l.snapshot();
        let rev = l.revision();
        let mut resumed = LiveDocument::resume(snap, rev);
        assert_eq!(resumed.revision(), 1);
        let r = resumed.first_child(resumed.root()).unwrap();
        resumed
            .insert_subtree(r, 0, &parse_xml("<n/>").unwrap())
            .unwrap();
        assert_eq!(resumed.revision(), 2);
    }
}
